//! Offline shim for the subset of the `proptest` crate API this workspace
//! uses: the [`proptest!`] test macro, the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`option::of`], weighted [`prop_oneof!`], [`any`],
//! and a miniature character-class regex strategy for `&str` patterns like
//! `"[a-e]{1,3}"`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! generated input (via `Debug`) and the panic propagates. Generation is
//! deterministic per test name, so failures reproduce across runs.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives case generation and execution for one test function.
pub struct TestRunner {
    rng: StdRng,
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner whose random stream is determined by the test name,
    /// so failures reproduce deterministically.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let seed = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// The runner's random source, for strategies.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Generates and runs `config.cases` inputs through `test`.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value),
    {
        for case in 0..self.config.cases {
            let value = strategy.new_value(self);
            let repr = format!("{value:?}");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                test(value);
            }));
            if let Err(payload) = outcome {
                eprintln!("proptest: case {case} failed with input: {repr}");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type. `Debug` so failing inputs can be reported.
    type Value: fmt::Debug;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn dyn_new_value(&self, runner: &mut TestRunner) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, runner: &mut TestRunner) -> S::Value {
        self.new_value(runner)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, runner: &mut TestRunner) -> V {
        self.0.dyn_new_value(runner)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, runner: &mut TestRunner) -> S2::Value {
        let seed = self.inner.new_value(runner);
        (self.f)(seed).new_value(runner)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one unconstrained value.
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut StdRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let magnitude = (rng.gen::<f64>() * 600.0 - 300.0).exp2();
        if rng.gen::<bool>() {
            magnitude
        } else {
            -magnitude
        }
    }
}

/// Strategy for an unconstrained value of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary_value(runner.rng())
    }
}

/// `any::<T>()` — uniform over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        self.iter().map(|s| s.new_value(runner)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Weighted union of same-valued strategies; built by [`prop_oneof!`].
pub struct Union<V> {
    branches: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V: fmt::Debug> Union<V> {
    /// Builds a union from `(weight, strategy)` pairs.
    pub fn new(branches: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, runner: &mut TestRunner) -> V {
        let total: u32 = self.branches.iter().map(|(w, _)| *w).sum();
        let mut pick = runner.rng().gen_range(0..total.max(1));
        for (w, s) in &self.branches {
            if pick < *w {
                return s.new_value(runner);
            }
            pick -= w;
        }
        self.branches.last().unwrap().1.new_value(runner)
    }
}

/// A miniature regex generator: `&str` patterns made of literal characters
/// and character classes (`[a-e]`, `[abc]`), each optionally quantified by
/// `{m}`, `{m,n}`, `?`, `+`, or `*` (`+`/`*` bounded at 8 repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, runner: &mut TestRunner) -> String {
        generate_from_pattern(self, runner.rng())
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let choices: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad range in pattern {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        let count = rng.gen_range(min..max + 1);
        for _ in 0..count {
            out.push(choices[rng.gen_range(0..choices.len())]);
        }
    }
    out
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| *i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            if let Some((lo, hi)) = body.split_once(',') {
                (lo.trim().parse().unwrap(), hi.trim().parse().unwrap())
            } else {
                let n = body.trim().parse().unwrap();
                (n, n)
            }
        }
        _ => (1, 1),
    }
}

pub mod collection {
    //! `prop::collection` — sized collection strategies.

    use super::{Strategy, TestRunner};
    use rand::Rng;
    use std::ops::Range;

    /// Accepted sizes for [`vec`]: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// `Vec` strategy: `size` draws a length, `element` fills it.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into().0,
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                runner.rng().gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

pub mod option {
    //! `prop::option` — strategies for `Option<T>`.

    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Yields `Some` (75%) or `None` (25%).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Option<S::Value> {
            if runner.rng().gen_bool(0.75) {
                Some(self.inner.new_value(runner))
            } else {
                None
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@internal ($config) $($rest)*);
    };
    (@internal ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            let mut runner = $crate::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(&strategy, |($($pat,)+)| $body);
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@internal ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` inside a [`proptest!`] body (no shrinking, so it just asserts).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// `assert_ne!` inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Weighted (`w => strategy`) or uniform choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strategy))),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strategy))),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u8..4, 2usize..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn flat_map_threads_dependency(
            (len, v) in (1usize..8).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0i64..100, n))
            }),
        ) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn oneof_and_pattern(s in "[a-c]{1,3}", choice in prop_oneof![2 => Just(true), 1 => Just(false)]) {
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let _ = choice;
        }

        #[test]
        fn option_of_generates_both(x in prop::option::of(0u8..10)) {
            if let Some(v) = x {
                prop_assert!(v < 10);
            }
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut runner = crate::TestRunner::new(crate::ProptestConfig::with_cases(8), "exact");
        let strat = crate::collection::vec(0u8..4, 5usize);
        runner.run(&strat, |v| assert_eq!(v.len(), 5));
    }
}
