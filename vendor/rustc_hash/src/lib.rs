//! Offline shim for `rustc-hash`: the FxHash algorithm (multiply-xor over
//! machine words, as used in rustc) plus the `FxHashMap` / `FxHashSet`
//! aliases. Same algorithm, same API, no registry access required.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hash: fast, non-cryptographic, word-at-a-time.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));

        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i * 7919);
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn hashing_is_stable_per_process() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = Default::default();
        assert_eq!(b.hash_one("seedb"), b.hash_one("seedb"));
        assert_ne!(b.hash_one("seedb"), b.hash_one("seeda"));
    }
}
