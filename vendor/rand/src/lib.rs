//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! source-compatible replacements for the pieces of `rand 0.8` the code
//! depends on: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! in its seed, statistically solid for data generation and tests, and not
//! intended for cryptography.

use std::ops::Range;

/// Core pseudo-random source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Debiased multiply-shift (Lemire); span <= 2^64 always.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                self.start + (wide >> 64) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T` (`f64`/`f32` in `[0,1)`, full range for ints).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into full generator state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
