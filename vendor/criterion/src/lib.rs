//! Offline shim for the subset of the `criterion` crate API used by
//! `seedb-bench`. It performs *real* measurements — warmup, adaptive
//! iteration batching, multiple timed samples, mean/min/max reporting —
//! but skips criterion's statistical machinery, plots, and HTML reports.
//!
//! Supported surface: [`Criterion`] (`bench_function`, `benchmark_group`,
//! `sample_size`, `measurement_time`, `configure_from_args`),
//! [`BenchmarkGroup`] (`bench_function`, `bench_with_input`, `throughput`,
//! `finish`), [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. A positional CLI
//! argument acts as a substring filter, like real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Input-size annotation; accepted and echoed, no per-element rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("strategy", 42)` → `strategy/42`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a bare parameter (no function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

#[derive(Debug, Clone)]
struct MeasureConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sample_size: 10,
            measurement_time: Duration::from_millis(600),
            warm_up_time: Duration::from_millis(150),
        }
    }
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    config: MeasureConfig,
    filter: Option<String>,
}

impl Criterion {
    /// Reads the CLI: flags are ignored, a positional argument becomes a
    /// substring filter on benchmark ids (matching `cargo bench -- <pat>`).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // Flags cargo's bench runner or users commonly pass.
                "--bench" | "--test" | "--list" | "--exact" | "--nocapture" | "--quiet" => {}
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--profile-time" => {
                    let _ = args.next();
                }
                other if other.starts_with("--") => {}
                positional => self.filter = Some(positional.to_string()),
            }
        }
        self
    }

    /// Default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Default time budget per benchmark's measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Default warmup duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, &self.config, &self.filter, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            filter: self.filter.clone(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Criterion prints a summary on drop in the real crate; nothing to do.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: MeasureConfig,
    filter: Option<String>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Measurement-phase budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Warmup duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Records the input size of subsequent benchmarks (echoed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, &self.config, &self.filter, f);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, &self.config, &self.filter, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Accepted by `bench_function`-style methods: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The `group/…` suffix for this benchmark.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    mode: BencherMode,
}

enum BencherMode {
    Warmup { budget: Duration },
    Measure,
}

impl Bencher {
    /// Times `routine`, batching iterations per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            BencherMode::Warmup { budget } => {
                // Calibrate: grow the batch until one batch costs >= ~1/5 of
                // the per-sample budget, so samples aren't timer-noise.
                let start = Instant::now();
                let mut iters: u64 = 1;
                loop {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = t0.elapsed();
                    if elapsed * 5 >= budget || start.elapsed() >= budget * 4 {
                        break;
                    }
                    iters = iters.saturating_mul(2);
                }
                self.iters_per_sample = iters;
            }
            BencherMode::Measure => {
                let t0 = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                let elapsed = t0.elapsed();
                self.samples
                    .push(elapsed / self.iters_per_sample.max(1) as u32);
            }
        }
    }
}

fn run_benchmark<F>(id: &str, config: &MeasureConfig, filter: &Option<String>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }
    let per_sample = config.measurement_time.div_f64(config.sample_size as f64);
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        mode: BencherMode::Warmup {
            budget: per_sample.max(Duration::from_micros(100)),
        },
    };
    // Warmup + calibration pass.
    let warm_start = Instant::now();
    f(&mut bencher);
    while warm_start.elapsed() < config.warm_up_time {
        f(&mut bencher);
    }
    // Measurement passes.
    bencher.mode = BencherMode::Measure;
    for _ in 0..config.sample_size {
        f(&mut bencher);
    }
    let stats = SampleStats::from(&bencher.samples);
    println!(
        "{:<48} time: [{} {} {}]  ({} samples x {} iters)",
        id,
        format_duration(stats.min),
        format_duration(stats.mean),
        format_duration(stats.max),
        bencher.samples.len(),
        bencher.iters_per_sample,
    );
}

/// Min/mean/max over per-iteration sample durations.
#[derive(Debug, Clone, Copy)]
pub struct SampleStats {
    /// Fastest per-iteration sample.
    pub min: Duration,
    /// Mean per-iteration time across samples.
    pub mean: Duration,
    /// Slowest per-iteration sample.
    pub max: Duration,
}

impl SampleStats {
    fn from(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            let zero = Duration::ZERO;
            return SampleStats {
                min: zero,
                mean: zero,
                max: zero,
            };
        }
        let total: Duration = samples.iter().sum();
        SampleStats {
            min: *samples.iter().min().unwrap(),
            mean: total / samples.len() as u32,
            max: *samples.iter().max().unwrap(),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        c.sample_size(3).measurement_time(Duration::from_millis(30));
        c.warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke/add", |b| {
            ran = true;
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input_and_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).measurement_time(Duration::from_millis(20));
        g.warm_up_time(Duration::from_millis(2));
        g.throughput(Throughput::Elements(4));
        let data = vec![1u64, 2, 3, 4];
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let config = MeasureConfig::default();
        let filter = Some("nomatch".to_string());
        let mut ran = false;
        run_benchmark("some/bench", &config, &filter, |_b| ran = true);
        assert!(!ran);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
