//! End-to-end bit-identity of cost-based plan selection: whatever
//! execution shape the planner derives from table stats — worker count,
//! morsel size, vectorized kernels, bin-packed clusters — the
//! recommendation it produces must be byte-for-byte the one a serial
//! scalar run computes. The plan chooses *how* to execute, never *what*.
//!
//! This is the integration-level guarantee on top of the engine's
//! kernel-level equivalence proptests: it goes through the full
//! [`SeeDb::recommend`] stack (view enumeration, phased execution,
//! pruning, ranking), so a planner choice that leaked into results —
//! a lossy parallel merge, a worker-count-dependent phase boundary, a
//! dense-vs-hash index disagreement — fails here even if every kernel
//! is individually correct.

use proptest::prelude::*;
use seedb_core::{
    ExecMode, ExecutionStrategy, Knob, Predicate, Recommendation, ReferenceSpec, SeeDb, SeeDbConfig,
};
use seedb_engine::CmpOp;
use seedb_storage::{BoxedTable, ColumnDef, ColumnId, StoreKind, TableBuilder, Value};

/// One generated row: `(dim a, dim b, float measure, int measure)`;
/// `None` = NULL.
type Row = (Option<u8>, u8, Option<f64>, Option<i64>);

#[derive(Debug, Clone)]
struct Dataset {
    rows: Vec<Row>,
    partition_rows: usize,
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec(
            (
                prop::option::of(0u8..4),
                0u8..3,
                prop::option::of(-100.0f64..100.0),
                prop::option::of(-50i64..50),
            ),
            1..300,
        ),
        prop_oneof![Just(7usize), Just(64), Just(256), Just(usize::MAX)],
    )
        .prop_map(|(rows, partition_rows)| Dataset {
            rows,
            partition_rows,
        })
}

fn build(ds: &Dataset, kind: StoreKind) -> BoxedTable {
    let mut b = TableBuilder::new(vec![
        ColumnDef::dim("a"),
        ColumnDef::dim("b"),
        ColumnDef::measure("m"),
        ColumnDef::measure("n"),
    ])
    .with_partition_rows(ds.partition_rows);
    for (a, bb, m, n) in &ds.rows {
        b.push_row(&[
            a.map(|v| Value::str(format!("a{v}")))
                .unwrap_or(Value::Null),
            Value::str(format!("b{bb}")),
            m.map(Value::Float).unwrap_or(Value::Null),
            n.map(Value::Int).unwrap_or(Value::Null),
        ])
        .unwrap();
    }
    b.build(kind).unwrap()
}

/// Target predicates over the generated schema — selective, empty, and
/// whole-table shapes all occur, so the planner's estimated post-pruning
/// row volume (and therefore its worker choice) varies across cases.
fn arb_leaf() -> BoxedStrategy<Predicate> {
    prop_oneof![
        Just(Predicate::True),
        Just(Predicate::False),
        (0u32..4).prop_map(|code| Predicate::CatEq {
            col: ColumnId(0),
            code,
        }),
        (-80.0f64..80.0, 0usize..4).prop_map(|(value, op)| Predicate::NumCmp {
            col: ColumnId(2),
            op: [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][op],
            value,
        }),
        (0u32..4).prop_map(|c| Predicate::IsNull { col: ColumnId(c) }),
    ]
    .boxed()
}

fn arb_target() -> BoxedStrategy<Predicate> {
    prop_oneof![
        4 => arb_leaf(),
        1 => prop::collection::vec(arb_leaf(), 0..3).prop_map(Predicate::And),
        1 => prop::collection::vec(arb_leaf(), 0..3).prop_map(Predicate::Or),
    ]
    .boxed()
}

fn arb_reference() -> BoxedStrategy<ReferenceSpec> {
    prop_oneof![
        2 => Just(ReferenceSpec::WholeTable),
        2 => Just(ReferenceSpec::Complement),
        1 => arb_target().prop_map(ReferenceSpec::Query),
    ]
    .boxed()
}

fn arb_strategy() -> BoxedStrategy<ExecutionStrategy> {
    (0usize..ExecutionStrategy::ALL.len())
        .prop_map(|i| ExecutionStrategy::ALL[i])
        .boxed()
}

/// The projection compared across execution shapes: everything
/// result-bearing in a [`Recommendation`], with utilities compared by
/// bit pattern (not `==`, which would mask sign/NaN drift).
fn fingerprint(rec: &Recommendation) -> (Vec<(String, u64)>, Vec<u64>, usize) {
    (
        rec.views
            .iter()
            .map(|v| (format!("{:?}", v.spec), v.utility.to_bits()))
            .collect(),
        rec.all_utilities.iter().map(|u| u.to_bits()).collect(),
        rec.phases_executed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Auto-planned execution — and a spread of pinned knob shapes —
    /// must all reproduce the serial scalar oracle byte-for-byte, for
    /// every strategy, both stores, and arbitrary partition layouts.
    #[test]
    fn planned_execution_is_bit_identical(
        ds in arb_dataset(),
        target in arb_target(),
        reference in arb_reference(),
        strategy in arb_strategy(),
    ) {
        for kind in [StoreKind::Row, StoreKind::Column] {
            let table = build(&ds, kind);

            // Oracle: serial, scalar, one unsplit scan per cluster.
            let mut oracle_cfg = SeeDbConfig::for_strategy(strategy);
            oracle_cfg.engine_mode = ExecMode::Scalar;
            oracle_cfg.sharing.parallelism = Knob::Fixed(1);
            oracle_cfg.sharing.morsel_rows = Knob::Fixed(usize::MAX);
            let oracle = SeeDb::with_config(table.clone(), oracle_cfg)
                .recommend(&target, &reference)
                .unwrap();
            let want = fingerprint(&oracle);

            // Auto knobs: the planner derives workers and morsel size
            // from stats; NO_OPT's preset pins workers at 1 by design,
            // so force both knobs back to Auto explicitly.
            let mut planned_cfg = SeeDbConfig::for_strategy(strategy);
            planned_cfg.sharing.parallelism = Knob::Auto;
            planned_cfg.sharing.morsel_rows = Knob::Auto;
            let planned = SeeDb::with_config(table.clone(), planned_cfg)
                .recommend(&target, &reference)
                .unwrap();
            prop_assert_eq!(
                &fingerprint(&planned), &want,
                "auto plan diverged from oracle (strategy {:?}, {:?})",
                strategy, kind
            );

            // Pinned shapes the planner would not pick still agree.
            for (workers, morsel_rows) in [(3usize, 32usize), (8, 1024)] {
                let mut fixed_cfg = SeeDbConfig::for_strategy(strategy);
                fixed_cfg.sharing.parallelism = Knob::Fixed(workers);
                fixed_cfg.sharing.morsel_rows = Knob::Fixed(morsel_rows);
                let fixed = SeeDb::with_config(table.clone(), fixed_cfg)
                    .recommend(&target, &reference)
                    .unwrap();
                prop_assert_eq!(
                    &fingerprint(&fixed), &want,
                    "fixed ({}, {}) diverged from oracle (strategy {:?}, {:?})",
                    workers, morsel_rows, strategy, kind
                );
            }
        }
    }
}
