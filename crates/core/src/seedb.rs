//! The public SeeDB facade: table in, ranked visualizations out.

use crate::config::SeeDbConfig;
use crate::error::CoreError;
use crate::executor::Executor;
use crate::reference::ReferenceSpec;
use crate::view::{enumerate_views, ViewSpec};
use seedb_engine::{ExecStats, Predicate};
use seedb_storage::{BoxedTable, Cell, Table};
use std::time::Duration;

/// One recommended visualization: the view, its utility, and the aligned
/// target/reference distributions ready to render as a bar chart.
#[derive(Debug, Clone)]
pub struct RankedView {
    /// The aggregate view `(a, m, f)`.
    pub spec: ViewSpec,
    /// Deviation-based utility under the configured metric.
    pub utility: f64,
    /// Human-readable group labels (x-axis), in distribution order.
    pub group_labels: Vec<String>,
    /// Normalized target distribution `P[V(D_Q)]`.
    pub target_distribution: Vec<f64>,
    /// Normalized reference distribution `P[V(D_R)]`.
    pub reference_distribution: Vec<f64>,
    /// Raw (unnormalized) target aggregate values.
    pub target_values: Vec<f64>,
    /// Raw (unnormalized) reference aggregate values.
    pub reference_values: Vec<f64>,
}

/// The result of a recommendation run.
#[derive(Debug)]
pub struct Recommendation {
    /// Top-k views, highest utility first.
    pub views: Vec<RankedView>,
    /// Final utility of every enumerated view (id-indexed). For pruned
    /// views this is the estimate at pruning time.
    pub all_utilities: Vec<f64>,
    /// Engine work counters.
    pub stats: ExecStats,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Phases executed.
    pub phases_executed: usize,
    /// Whether the run stopped early (`COMB_EARLY`).
    pub early_stopped: bool,
}

/// The SeeDB recommendation engine over one table.
pub struct SeeDb {
    table: BoxedTable,
    config: SeeDbConfig,
}

impl SeeDb {
    /// Creates an engine with the default configuration (§5's COMB setup:
    /// EMD, k=10, CI pruning, 10 phases, all sharing optimizations).
    pub fn new(table: BoxedTable) -> Self {
        SeeDb {
            table,
            config: SeeDbConfig::default(),
        }
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(table: BoxedTable, config: SeeDbConfig) -> Self {
        SeeDb { table, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SeeDbConfig {
        &self.config
    }

    /// The underlying table.
    pub fn table(&self) -> &dyn Table {
        self.table.as_ref()
    }

    /// Every view the generator enumerates for this table (before pruning).
    pub fn views(&self) -> Vec<ViewSpec> {
        enumerate_views(self.table.as_ref(), &self.config.agg_functions)
    }

    /// Recommends the top-k views for target selection `target` against the
    /// given reference.
    pub fn recommend(
        &self,
        target: &Predicate,
        reference: &ReferenceSpec,
    ) -> Result<Recommendation, CoreError> {
        self.config.validate()?;
        let views = self.views();
        if self.table.schema().dimensions().is_empty() {
            return Err(CoreError::NoDimensions);
        }
        if self.table.schema().measures().is_empty() {
            return Err(CoreError::NoMeasures);
        }

        let executor = Executor::new(self.table.as_ref(), &self.config);
        let report = executor.run(&views, target, reference);

        let metric = self.config.metric;
        let all_utilities: Vec<f64> = report.states.iter().map(|s| s.utility(metric)).collect();
        let top_ids = report.top_k(self.config.k, metric);

        let ranked = top_ids
            .iter()
            .map(|&id| {
                let state = &report.states[id];
                let (t_raw, r_raw) = state.value_vectors();
                let labels = state
                    .group_keys()
                    .iter()
                    .map(|key| self.label_for(state.spec, key.code(0)))
                    .collect();
                RankedView {
                    spec: state.spec,
                    utility: all_utilities[id],
                    group_labels: labels,
                    target_distribution: seedb_metrics::normalize(&t_raw),
                    reference_distribution: seedb_metrics::normalize(&r_raw),
                    target_values: t_raw,
                    reference_values: r_raw,
                }
            })
            .collect();

        Ok(Recommendation {
            views: ranked,
            all_utilities,
            stats: report.stats,
            elapsed: report.elapsed,
            phases_executed: report.phases_executed,
            early_stopped: report.early_stopped,
        })
    }

    /// Resolves a group code of a view's dimension back to a display label.
    fn label_for(&self, spec: ViewSpec, code: u64) -> String {
        if code == u64::MAX {
            return "NULL".to_owned();
        }
        let cell = match self.table.schema().column(spec.dim).ty {
            seedb_storage::ColumnType::Categorical => Cell::Cat(code as u32),
            seedb_storage::ColumnType::Int64 => Cell::Int(code as i64),
            seedb_storage::ColumnType::Bool => Cell::Bool(code != 0),
            seedb_storage::ColumnType::Float64 => Cell::Float(f64::from_bits(code)),
        };
        self.table.cell_label(spec.dim, cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExecutionStrategy, PruningKind};
    use seedb_storage::{ColumnDef, StoreKind, TableBuilder, Value};

    /// The paper's Figure 1 scenario in miniature: capital gain deviates by
    /// sex between unmarried and married adults; age does not.
    fn census() -> BoxedTable {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("sex"),
            ColumnDef::dim("marital"),
            ColumnDef::measure("capital_gain"),
            ColumnDef::measure("age"),
        ]);
        for i in 0..200u32 {
            let sex = if i % 2 == 0 { "F" } else { "M" };
            let married = i % 4 < 2;
            let marital = if married { "married" } else { "unmarried" };
            // Married: male gain double female gain. Unmarried: equal.
            let gain = match (married, sex) {
                (true, "F") => 300.0,
                (true, _) => 650.0,
                (false, "F") => 510.0,
                (false, _) => 490.0,
            };
            let age = 40.0 + (i % 3) as f64;
            b.push_row(&[
                Value::str(sex),
                Value::str(marital),
                Value::Float(gain),
                Value::Float(age),
            ])
            .unwrap();
        }
        b.build(StoreKind::Column).unwrap()
    }

    #[test]
    fn recommends_capital_gain_over_age() {
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let seedb = SeeDb::new(table);
        let rec = seedb
            .recommend(&target, &ReferenceSpec::Complement)
            .unwrap();
        assert!(!rec.views.is_empty());
        // The top view must aggregate capital_gain, not age, by sex.
        let top = &rec.views[0];
        let desc = top.spec.describe(seedb.table());
        assert!(desc.contains("capital_gain"), "top view was {desc}");
        assert!(top.utility > 0.05);
        // Age-by-sex should score near zero.
        let age_by_sex = rec
            .views
            .iter()
            .find(|v| v.spec.describe(seedb.table()) == "AVG(age) BY sex");
        if let Some(v) = age_by_sex {
            assert!(v.utility < top.utility);
        }
    }

    #[test]
    fn distributions_are_normalized_and_labeled() {
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let seedb = SeeDb::new(table);
        let rec = seedb
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        for v in &rec.views {
            let ts: f64 = v.target_distribution.iter().sum();
            let rs: f64 = v.reference_distribution.iter().sum();
            assert!((ts - 1.0).abs() < 1e-9);
            assert!((rs - 1.0).abs() < 1e-9);
            assert_eq!(v.group_labels.len(), v.target_distribution.len());
            assert_eq!(v.target_values.len(), v.target_distribution.len());
        }
        // Labels decode through the dictionary: a view grouped by sex must
        // carry "F"/"M" labels. (The top view groups by marital — the
        // selection attribute shows maximal deviation — so search for one.)
        let by_sex = rec
            .views
            .iter()
            .find(|v| seedb.table().schema().column(v.spec.dim).name == "sex")
            .expect("a by-sex view in the top-k");
        assert!(by_sex.group_labels.contains(&"F".to_owned()));
        assert!(by_sex.group_labels.contains(&"M".to_owned()));
    }

    #[test]
    fn k_limits_returned_views() {
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let mut cfg = SeeDbConfig::default();
        cfg.k = 2;
        let seedb = SeeDb::with_config(table, cfg);
        let rec = seedb
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        assert_eq!(rec.views.len(), 2);
        // Sorted descending by utility.
        assert!(rec.views[0].utility >= rec.views[1].utility);
    }

    #[test]
    fn all_utilities_cover_every_view() {
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let seedb = SeeDb::new(table);
        let rec = seedb
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        assert_eq!(rec.all_utilities.len(), seedb.views().len());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let table = census();
        let mut cfg = SeeDbConfig::default();
        cfg.k = 0;
        let seedb = SeeDb::with_config(table, cfg);
        let err = seedb
            .recommend(&Predicate::True, &ReferenceSpec::WholeTable)
            .unwrap_err();
        assert_eq!(err, CoreError::ZeroK);
    }

    #[test]
    fn empty_target_selection_is_benign() {
        let table = census();
        let seedb = SeeDb::new(table);
        let rec = seedb
            .recommend(&Predicate::False, &ReferenceSpec::WholeTable)
            .unwrap();
        // All utilities ~0 (empty target normalizes to uniform vs uniform
        // after zero-sum handling) — no panics, k views returned.
        assert!(!rec.views.is_empty());
    }

    #[test]
    fn strategies_produce_consistent_top_view() {
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let mut tops = Vec::new();
        for strategy in ExecutionStrategy::ALL {
            let mut cfg = SeeDbConfig::for_strategy(strategy);
            cfg.k = 3;
            cfg.pruning = PruningKind::Ci;
            let seedb = SeeDb::with_config(table.clone(), cfg);
            let rec = seedb
                .recommend(&target, &ReferenceSpec::Complement)
                .unwrap();
            tops.push(rec.views[0].spec.id);
        }
        assert!(
            tops.windows(2).all(|w| w[0] == w[1]),
            "strategies disagree on the top view: {tops:?}"
        );
    }

    #[test]
    fn recommendation_is_deterministic() {
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let seedb = SeeDb::new(table);
        let a = seedb
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        let b = seedb
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        let ids_a: Vec<_> = a.views.iter().map(|v| v.spec.id).collect();
        let ids_b: Vec<_> = b.views.iter().map(|v| v.spec.id).collect();
        assert_eq!(ids_a, ids_b);
        assert_eq!(a.all_utilities, b.all_utilities);
    }
}
