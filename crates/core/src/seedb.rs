//! The public SeeDB facade: table in, ranked visualizations out.

use crate::cache::{CacheUse, CachedPartial, ViewCache};
use crate::config::{ExecutionStrategy, SeeDbConfig};
use crate::error::CoreError;
use crate::executor::{ExecutionReport, Executor};
use crate::phase::effective_phases;
use crate::reference::ReferenceSpec;
use crate::signature::{predicate_signature, reference_signature};
use crate::state::ViewState;
use crate::view::{enumerate_views, ViewSpec};
use seedb_engine::{CancelToken, ExecStats, GroupedResult, Predicate, TraceCtx};
use seedb_storage::{BoxedTable, Cell, Table};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One recommended visualization: the view, its utility, and the aligned
/// target/reference distributions ready to render as a bar chart.
#[derive(Debug, Clone)]
pub struct RankedView {
    /// The aggregate view `(a, m, f)`.
    pub spec: ViewSpec,
    /// Deviation-based utility under the configured metric.
    pub utility: f64,
    /// Human-readable group labels (x-axis), in distribution order.
    pub group_labels: Vec<String>,
    /// Normalized target distribution `P[V(D_Q)]`.
    pub target_distribution: Vec<f64>,
    /// Normalized reference distribution `P[V(D_R)]`.
    pub reference_distribution: Vec<f64>,
    /// Raw (unnormalized) target aggregate values.
    pub target_values: Vec<f64>,
    /// Raw (unnormalized) reference aggregate values.
    pub reference_values: Vec<f64>,
}

/// The result of a recommendation run.
#[derive(Debug)]
pub struct Recommendation {
    /// Top-k views, highest utility first.
    pub views: Vec<RankedView>,
    /// Final utility of every enumerated view (id-indexed). For pruned
    /// views this is the estimate at pruning time.
    pub all_utilities: Vec<f64>,
    /// Engine work counters.
    pub stats: ExecStats,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Phases executed.
    pub phases_executed: usize,
    /// Whether the run stopped early (`COMB_EARLY`).
    pub early_stopped: bool,
}

/// The SeeDB recommendation engine over one table.
pub struct SeeDb {
    table: BoxedTable,
    config: SeeDbConfig,
    trace: TraceCtx,
}

impl SeeDb {
    /// Creates an engine with the default configuration (§5's COMB setup:
    /// EMD, k=10, CI pruning, 10 phases, all sharing optimizations).
    pub fn new(table: BoxedTable) -> Self {
        SeeDb {
            table,
            config: SeeDbConfig::default(),
            trace: TraceCtx::disabled(),
        }
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(table: BoxedTable, config: SeeDbConfig) -> Self {
        SeeDb {
            table,
            config,
            trace: TraceCtx::disabled(),
        }
    }

    /// Attaches a trace context to every subsequent run: each executed
    /// phase records a `phase` span and the engine emits per-worker
    /// morsel spans into it. The default (disabled) context records
    /// nothing and costs nothing; tracing never changes results — runs
    /// stay bit-identical with it on or off.
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = trace;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SeeDbConfig {
        &self.config
    }

    /// The underlying table.
    pub fn table(&self) -> &dyn Table {
        self.table.as_ref()
    }

    /// Every view the generator enumerates for this table (before pruning).
    pub fn views(&self) -> Vec<ViewSpec> {
        enumerate_views(self.table.as_ref(), &self.config.agg_functions)
    }

    /// The physical plan [`SeeDb::recommend`] would execute under —
    /// EXPLAIN without running the query.
    pub fn plan(&self, target: &Predicate, reference: &ReferenceSpec) -> crate::plan::PhysicalPlan {
        let views = self.views();
        Executor::new(self.table.as_ref(), &self.config).plan(&views, target, reference)
    }

    /// Recommends the top-k views for target selection `target` against the
    /// given reference.
    pub fn recommend(
        &self,
        target: &Predicate,
        reference: &ReferenceSpec,
    ) -> Result<Recommendation, CoreError> {
        self.recommend_with(target, reference, CancelToken::none())
    }

    /// [`SeeDb::recommend`] under a cooperative deadline: when `cancel`
    /// expires mid-run the executor stops at the next phase/morsel
    /// boundary and this returns [`CoreError::DeadlineExceeded`] — never
    /// a partial result dressed up as a finished one.
    pub fn recommend_with(
        &self,
        target: &Predicate,
        reference: &ReferenceSpec,
        cancel: CancelToken,
    ) -> Result<Recommendation, CoreError> {
        self.check_runnable()?;
        let views = self.views();
        let mut executor = Executor::with_cancel(self.table.as_ref(), &self.config, cancel);
        executor.set_trace(self.trace.clone());
        let report = executor.run(&views, target, reference);
        if report.deadline_exceeded {
            return Err(CoreError::DeadlineExceeded);
        }
        Ok(self.build_recommendation(report))
    }

    /// [`SeeDb::recommend`] with cross-request reuse of per-view
    /// aggregates through `cache` (see [`crate::cache`]).
    ///
    /// **Exact configurations** ([`SeeDbConfig::exact_per_view`]): each
    /// view is probed under its canonical signature (target predicate ×
    /// reference × view identity — deliberately *excluding* `k` and the
    /// metric, which don't change aggregates); only the missing views are
    /// executed, and their full-table results are stored back.
    ///
    /// **Pruned configurations** (`COMB`/`COMB_EARLY` with any pruning
    /// scheme): each view is probed under a phase-partition key (the same
    /// signature plus the effective phase count). A cached entry holds
    /// the view's *per-phase* deltas over the prefix it accumulated
    /// before being pruned (or all phases, tagged
    /// [`Exact`](crate::cache::Exactness::Exact), if it survived):
    /// covered phases are **replayed** without scanning and a view that
    /// outlives its prefix **resumes** scanning at `phases_done` instead
    /// of row 0. Deltas carry no pruning decisions, so entries are
    /// reusable across runs differing in `k`, `delta`, or pruning scheme;
    /// views that end a run with full-table coverage are additionally
    /// deposited under the exact key for the pruning-free configurations
    /// to reuse.
    ///
    /// In both paths the returned recommendation is **bit-identical** to
    /// what [`SeeDb::recommend`] would produce with the same seed:
    /// exports round-trip exactly, each view's aggregates are independent
    /// of which other views execute alongside it, and replayed cumulative
    /// states reproduce every utility estimate — and therefore every
    /// pruning decision — bit for bit. (Seeding a pruned run from a bare
    /// full-table aggregate would *break* that guarantee: without the
    /// per-phase structure the pruner would see a zero-width interval
    /// from phase 1, changing decisions relative to the uncached run, so
    /// plain exact entries are deliberately invisible to pruned runs.)
    pub fn recommend_cached(
        &self,
        target: &Predicate,
        reference: &ReferenceSpec,
        cache: &dyn ViewCache,
    ) -> Result<(Recommendation, CacheUse), CoreError> {
        self.recommend_cached_with(target, reference, cache, CancelToken::none())
    }

    /// [`SeeDb::recommend_cached`] under a cooperative deadline. An
    /// expired run returns [`CoreError::DeadlineExceeded`] *before* any
    /// cache deposit happens — a cancelled run's partially scanned
    /// aggregates never poison the cache.
    pub fn recommend_cached_with(
        &self,
        target: &Predicate,
        reference: &ReferenceSpec,
        cache: &dyn ViewCache,
        cancel: CancelToken,
    ) -> Result<(Recommendation, CacheUse), CoreError> {
        self.check_runnable()?;
        if self.config.exact_per_view() {
            return self.recommend_cached_exact(target, reference, cache, cancel);
        }
        if matches!(
            self.config.strategy,
            ExecutionStrategy::Comb | ExecutionStrategy::CombEarly
        ) {
            return self.recommend_cached_phased(target, reference, cache, cancel);
        }
        Ok((
            self.recommend_with(target, reference, cancel)?,
            CacheUse::ineligible(),
        ))
    }

    /// The exact-configuration arm of [`SeeDb::recommend_cached`].
    fn recommend_cached_exact(
        &self,
        target: &Predicate,
        reference: &ReferenceSpec,
        cache: &dyn ViewCache,
        cancel: CancelToken,
    ) -> Result<(Recommendation, CacheUse), CoreError> {
        let start = Instant::now();
        let views = self.views();
        let pred_sig = predicate_signature(target);
        let ref_sig = reference_signature(reference);
        let keys: Vec<String> = views
            .iter()
            .map(|v| format!("{pred_sig}|{ref_sig}|{}", v.signature()))
            .collect();
        let mut cached: Vec<Option<Arc<GroupedResult>>> = keys
            .iter()
            .map(|k| cache.get(k).and_then(|p| p.as_exact_result().cloned()))
            .collect();
        let hits = cached.iter().filter(|c| c.is_some()).count();
        let misses = views.len() - hits;

        let mut stats = ExecStats::new();
        let mut phases_executed = 0;
        if misses > 0 {
            // Execute only the missing views. The executor indexes states
            // by view id, so the subset is re-enumerated densely; results
            // are keyed back to the original positions afterwards.
            let missing: Vec<usize> = (0..views.len()).filter(|&i| cached[i].is_none()).collect();
            let dense: Vec<ViewSpec> = missing
                .iter()
                .enumerate()
                .map(|(j, &i)| ViewSpec { id: j, ..views[i] })
                .collect();
            let mut executor = Executor::with_cancel(self.table.as_ref(), &self.config, cancel);
            executor.set_trace(self.trace.clone());
            let report = executor.run(&dense, target, reference);
            // A cancelled run deposits nothing: its states are partial
            // scans, not the full-table aggregates the exact keys promise.
            if report.deadline_exceeded {
                return Err(CoreError::DeadlineExceeded);
            }
            stats.merge(&report.stats);
            phases_executed = report.phases_executed;
            for (j, &i) in missing.iter().enumerate() {
                let result = Arc::new(report.states[j].to_combined_result());
                cache.put(&keys[i], Arc::new(CachedPartial::exact(result.clone())));
                cached[i] = Some(result);
            }
        }

        let mut states: Vec<ViewState> = views.iter().map(|v| ViewState::new(*v)).collect();
        for (state, entry) in states.iter_mut().zip(&cached) {
            state.merge_both(entry.as_ref().expect("every view filled above"), 0);
        }
        let report = ExecutionReport {
            states,
            stats,
            elapsed: start.elapsed(),
            phases_executed,
            early_stopped: false,
            deadline_exceeded: false,
        };
        let outcome = CacheUse {
            eligible: true,
            hits,
            misses,
            resumed: 0,
        };
        Ok((self.build_recommendation(report), outcome))
    }

    /// The pruned-configuration arm of [`SeeDb::recommend_cached`]:
    /// replay cached phase prefixes, resume their scans, deposit back
    /// whatever each view accumulated this time.
    fn recommend_cached_phased(
        &self,
        target: &Predicate,
        reference: &ReferenceSpec,
        cache: &dyn ViewCache,
        cancel: CancelToken,
    ) -> Result<(Recommendation, CacheUse), CoreError> {
        let views = self.views();
        let pred_sig = predicate_signature(target);
        let ref_sig = reference_signature(reference);
        let total = effective_phases(self.table.num_rows(), self.config.num_phases);
        let exact_key = |v: &ViewSpec| format!("{pred_sig}|{ref_sig}|{}", v.signature());
        let keys: Vec<String> = views
            .iter()
            .map(|v| format!("{}|ph{total}", exact_key(v)))
            .collect();
        let seeds: Vec<Option<Arc<CachedPartial>>> = keys
            .iter()
            .map(|k| {
                cache
                    .get(k)
                    .filter(|p| p.total_phases == total && !p.deltas.is_empty())
            })
            .collect();

        let mut executor = Executor::with_cancel(self.table.as_ref(), &self.config, cancel);
        executor.set_trace(self.trace.clone());
        let run = executor.run_resumable(&views, target, reference, &seeds);
        // Nothing from a cancelled run reaches the cache: the captured
        // deltas stop at an arbitrary phase and would otherwise be
        // replayed by later requests as if they were the real prefix.
        if run.report.deadline_exceeded {
            return Err(CoreError::DeadlineExceeded);
        }

        let mut outcome = CacheUse {
            eligible: true,
            ..CacheUse::default()
        };
        for (i, view) in views.iter().enumerate() {
            match (&seeds[i], run.scanned_phases[i]) {
                (Some(_), 0) => outcome.hits += 1,
                (Some(_), _) => outcome.resumed += 1,
                (None, _) => outcome.misses += 1,
            }
            // Deposit: never shrink an existing prefix — a run that
            // pruned this view earlier than the cached run did has
            // nothing new to contribute.
            let covered = run.deltas[i].len();
            let prev = seeds[i].as_ref().map_or(0, |p| p.phases_done());
            if covered > prev {
                cache.put(
                    &keys[i],
                    Arc::new(CachedPartial::prefix(run.deltas[i].clone(), total)),
                );
            }
            // A view with full-table coverage is exact: cross-deposit it
            // under the unphased key so pruning-free configurations can
            // skip its scan too.
            if covered == total && prev < total {
                let full = Arc::new(run.report.states[i].to_combined_result());
                cache.put(&exact_key(view), Arc::new(CachedPartial::exact(full)));
            }
        }
        Ok((self.build_recommendation(run.report), outcome))
    }

    /// Best-effort degraded answer assembled *purely from the cache* — no
    /// scanning, no waiting. Probes the same per-view keys the cached
    /// paths deposit under (phase-prefix entries first, plain exact
    /// entries as fallback), merges whatever deltas exist, and ranks the
    /// result. Views with no cached data stay empty (utility 0, ranked
    /// last); returns `None` when *no* view has any data.
    ///
    /// This is the serving layer's cached-partial rung on the degradation
    /// ladder: a deadline-expired request can answer with a clearly-tagged
    /// stale/partial recommendation instead of a bare timeout. The second
    /// tuple element is coverage — the fraction of `(view, phase)` slots a
    /// cached delta answered, 1.0 meaning every view replayed fully.
    pub fn degraded_from_cache(
        &self,
        target: &Predicate,
        reference: &ReferenceSpec,
        cache: &dyn ViewCache,
    ) -> Option<(Recommendation, f64)> {
        self.check_runnable().ok()?;
        let start = Instant::now();
        let views = self.views();
        let pred_sig = predicate_signature(target);
        let ref_sig = reference_signature(reference);
        let total = effective_phases(self.table.num_rows(), self.config.num_phases);
        let mut states: Vec<ViewState> = views.iter().map(|v| ViewState::new(*v)).collect();
        let mut covered_slots = 0usize;
        let mut covered_views = 0usize;
        for (i, v) in views.iter().enumerate() {
            let exact_key = format!("{pred_sig}|{ref_sig}|{}", v.signature());
            let phased_key = format!("{exact_key}|ph{total}");
            let covered = if let Some(partial) = cache
                .get(&phased_key)
                .filter(|p| p.total_phases == total && !p.deltas.is_empty())
            {
                for delta in &partial.deltas {
                    states[i].merge_both(delta, 0);
                }
                partial.phases_done().min(total)
            } else if let Some(full) = cache
                .get(&exact_key)
                .and_then(|p| p.as_exact_result().cloned())
            {
                states[i].merge_both(&full, 0);
                total
            } else {
                0
            };
            if covered > 0 {
                covered_views += 1;
            }
            covered_slots += covered;
        }
        if covered_views == 0 {
            return None;
        }
        let report = ExecutionReport {
            states,
            stats: ExecStats::new(),
            elapsed: start.elapsed(),
            phases_executed: 0,
            early_stopped: false,
            deadline_exceeded: false,
        };
        let coverage = covered_slots as f64 / (total.max(1) * views.len()) as f64;
        Some((self.build_recommendation(report), coverage))
    }

    /// Shared validation for every recommendation entry point.
    fn check_runnable(&self) -> Result<(), CoreError> {
        self.config.validate()?;
        if self.table.schema().dimensions().is_empty() {
            return Err(CoreError::NoDimensions);
        }
        if self.table.schema().measures().is_empty() {
            return Err(CoreError::NoMeasures);
        }
        Ok(())
    }

    /// Ranks an execution report and materializes the public result.
    fn build_recommendation(&self, report: ExecutionReport) -> Recommendation {
        let metric = self.config.metric;
        let all_utilities: Vec<f64> = report.states.iter().map(|s| s.utility(metric)).collect();
        let top_ids = report.top_k(self.config.k, metric);

        let ranked = top_ids
            .iter()
            .map(|&id| {
                let state = &report.states[id];
                let (t_raw, r_raw) = state.value_vectors();
                let labels = state
                    .group_keys()
                    .iter()
                    .map(|key| self.label_for(state.spec, key.code(0)))
                    .collect();
                RankedView {
                    spec: state.spec,
                    utility: all_utilities[id],
                    group_labels: labels,
                    target_distribution: seedb_metrics::normalize(&t_raw),
                    reference_distribution: seedb_metrics::normalize(&r_raw),
                    target_values: t_raw,
                    reference_values: r_raw,
                }
            })
            .collect();

        Recommendation {
            views: ranked,
            all_utilities,
            stats: report.stats,
            elapsed: report.elapsed,
            phases_executed: report.phases_executed,
            early_stopped: report.early_stopped,
        }
    }

    /// Resolves a group code of a view's dimension back to a display label.
    fn label_for(&self, spec: ViewSpec, code: u64) -> String {
        if code == u64::MAX {
            return "NULL".to_owned();
        }
        let cell = match self.table.schema().column(spec.dim).ty {
            seedb_storage::ColumnType::Categorical => Cell::Cat(code as u32),
            seedb_storage::ColumnType::Int64 => Cell::Int(code as i64),
            seedb_storage::ColumnType::Bool => Cell::Bool(code != 0),
            seedb_storage::ColumnType::Float64 => Cell::Float(f64::from_bits(code)),
        };
        self.table.cell_label(spec.dim, cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExecutionStrategy, PruningKind};
    use seedb_storage::{ColumnDef, StoreKind, TableBuilder, Value};

    /// The paper's Figure 1 scenario in miniature: capital gain deviates by
    /// sex between unmarried and married adults; age does not.
    fn census() -> BoxedTable {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("sex"),
            ColumnDef::dim("marital"),
            ColumnDef::measure("capital_gain"),
            ColumnDef::measure("age"),
        ]);
        for i in 0..200u32 {
            let sex = if i % 2 == 0 { "F" } else { "M" };
            let married = i % 4 < 2;
            let marital = if married { "married" } else { "unmarried" };
            // Married: male gain double female gain. Unmarried: equal.
            let gain = match (married, sex) {
                (true, "F") => 300.0,
                (true, _) => 650.0,
                (false, "F") => 510.0,
                (false, _) => 490.0,
            };
            let age = 40.0 + (i % 3) as f64;
            b.push_row(&[
                Value::str(sex),
                Value::str(marital),
                Value::Float(gain),
                Value::Float(age),
            ])
            .unwrap();
        }
        b.build(StoreKind::Column).unwrap()
    }

    #[test]
    fn recommends_capital_gain_over_age() {
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let seedb = SeeDb::new(table);
        let rec = seedb
            .recommend(&target, &ReferenceSpec::Complement)
            .unwrap();
        assert!(!rec.views.is_empty());
        // The top view must aggregate capital_gain, not age, by sex.
        let top = &rec.views[0];
        let desc = top.spec.describe(seedb.table());
        assert!(desc.contains("capital_gain"), "top view was {desc}");
        assert!(top.utility > 0.05);
        // Age-by-sex should score near zero.
        let age_by_sex = rec
            .views
            .iter()
            .find(|v| v.spec.describe(seedb.table()) == "AVG(age) BY sex");
        if let Some(v) = age_by_sex {
            assert!(v.utility < top.utility);
        }
    }

    #[test]
    fn distributions_are_normalized_and_labeled() {
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let seedb = SeeDb::new(table);
        let rec = seedb
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        for v in &rec.views {
            let ts: f64 = v.target_distribution.iter().sum();
            let rs: f64 = v.reference_distribution.iter().sum();
            assert!((ts - 1.0).abs() < 1e-9);
            assert!((rs - 1.0).abs() < 1e-9);
            assert_eq!(v.group_labels.len(), v.target_distribution.len());
            assert_eq!(v.target_values.len(), v.target_distribution.len());
        }
        // Labels decode through the dictionary: a view grouped by sex must
        // carry "F"/"M" labels. (The top view groups by marital — the
        // selection attribute shows maximal deviation — so search for one.)
        let by_sex = rec
            .views
            .iter()
            .find(|v| seedb.table().schema().column(v.spec.dim).name == "sex")
            .expect("a by-sex view in the top-k");
        assert!(by_sex.group_labels.contains(&"F".to_owned()));
        assert!(by_sex.group_labels.contains(&"M".to_owned()));
    }

    #[test]
    fn k_limits_returned_views() {
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let mut cfg = SeeDbConfig::default();
        cfg.k = 2;
        let seedb = SeeDb::with_config(table, cfg);
        let rec = seedb
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        assert_eq!(rec.views.len(), 2);
        // Sorted descending by utility.
        assert!(rec.views[0].utility >= rec.views[1].utility);
    }

    #[test]
    fn all_utilities_cover_every_view() {
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let seedb = SeeDb::new(table);
        let rec = seedb
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        assert_eq!(rec.all_utilities.len(), seedb.views().len());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let table = census();
        let mut cfg = SeeDbConfig::default();
        cfg.k = 0;
        let seedb = SeeDb::with_config(table, cfg);
        let err = seedb
            .recommend(&Predicate::True, &ReferenceSpec::WholeTable)
            .unwrap_err();
        assert_eq!(err, CoreError::ZeroK);
    }

    #[test]
    fn empty_target_selection_is_benign() {
        let table = census();
        let seedb = SeeDb::new(table);
        let rec = seedb
            .recommend(&Predicate::False, &ReferenceSpec::WholeTable)
            .unwrap();
        // All utilities ~0 (empty target normalizes to uniform vs uniform
        // after zero-sum handling) — no panics, k views returned.
        assert!(!rec.views.is_empty());
    }

    #[test]
    fn strategies_produce_consistent_top_view() {
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let mut tops = Vec::new();
        for strategy in ExecutionStrategy::ALL {
            let mut cfg = SeeDbConfig::for_strategy(strategy);
            cfg.k = 3;
            cfg.pruning = PruningKind::Ci;
            let seedb = SeeDb::with_config(table.clone(), cfg);
            let rec = seedb
                .recommend(&target, &ReferenceSpec::Complement)
                .unwrap();
            tops.push(rec.views[0].spec.id);
        }
        assert!(
            tops.windows(2).all(|w| w[0] == w[1]),
            "strategies disagree on the top view: {tops:?}"
        );
    }

    /// Bit-level equality of the response-visible parts of two
    /// recommendations.
    fn assert_same_recommendation(a: &Recommendation, b: &Recommendation) {
        assert_eq!(a.views.len(), b.views.len());
        for (x, y) in a.views.iter().zip(&b.views) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.utility.to_bits(), y.utility.to_bits());
            assert_eq!(x.group_labels, y.group_labels);
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&x.target_distribution), bits(&y.target_distribution));
            assert_eq!(
                bits(&x.reference_distribution),
                bits(&y.reference_distribution)
            );
            assert_eq!(bits(&x.target_values), bits(&y.target_values));
            assert_eq!(bits(&x.reference_values), bits(&y.reference_values));
        }
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.all_utilities), bits(&b.all_utilities));
    }

    #[test]
    fn cached_recommendation_is_bit_identical_to_direct() {
        use crate::cache::MemoryViewCache;
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        for strategy in [ExecutionStrategy::NoOpt, ExecutionStrategy::Sharing] {
            let cfg = SeeDbConfig::for_strategy(strategy);
            let seedb = SeeDb::with_config(table.clone(), cfg);
            let direct = seedb
                .recommend(&target, &ReferenceSpec::WholeTable)
                .unwrap();

            let cache = MemoryViewCache::new();
            // Cold: everything misses, gets computed and cached.
            let (cold, use1) = seedb
                .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
                .unwrap();
            assert!(use1.eligible);
            assert_eq!(use1.hits, 0);
            assert_eq!(use1.misses, seedb.views().len());
            assert_same_recommendation(&direct, &cold);

            // Warm: everything hits; no rows are scanned.
            let (warm, use2) = seedb
                .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
                .unwrap();
            assert!(use2.fully_cached());
            assert_eq!(warm.stats.rows_scanned, 0);
            assert_eq!(warm.stats.queries_issued, 0);
            assert_same_recommendation(&direct, &warm);
        }
    }

    #[test]
    fn cached_partials_survive_k_and_metric_changes() {
        use crate::cache::MemoryViewCache;
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let cache = MemoryViewCache::new();

        let mut cfg = SeeDbConfig::for_strategy(ExecutionStrategy::Sharing);
        let seedb = SeeDb::with_config(table.clone(), cfg.clone());
        let _ = seedb
            .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
            .unwrap();

        // A follow-up with different k and metric reuses every partial.
        cfg.k = 1;
        cfg.metric = seedb_metrics::DistanceKind::L1;
        let seedb2 = SeeDb::with_config(table.clone(), cfg.clone());
        let (rec, usage) = seedb2
            .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
            .unwrap();
        assert!(usage.fully_cached(), "{usage:?}");
        assert_same_recommendation(
            &seedb2
                .recommend(&target, &ReferenceSpec::WholeTable)
                .unwrap(),
            &rec,
        );

        // A different target misses.
        let other = Predicate::col_eq_str(table.as_ref(), "marital", "married");
        let (_, usage) = seedb2
            .recommend_cached(&other, &ReferenceSpec::WholeTable, &cache)
            .unwrap();
        assert_eq!(usage.hits, 0);
    }

    #[test]
    fn partial_overlap_executes_only_missing_views() {
        use crate::cache::MemoryViewCache;
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let cache = MemoryViewCache::new();
        // Warm the cache with AVG views only.
        let mut cfg = SeeDbConfig::for_strategy(ExecutionStrategy::Sharing);
        cfg.agg_functions = vec![seedb_engine::AggFunc::Avg];
        let seedb = SeeDb::with_config(table.clone(), cfg.clone());
        let _ = seedb
            .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
            .unwrap();
        let avg_views = seedb.views().len();

        // AVG+SUM overlaps on the AVG half.
        cfg.agg_functions = vec![seedb_engine::AggFunc::Avg, seedb_engine::AggFunc::Sum];
        let seedb2 = SeeDb::with_config(table.clone(), cfg.clone());
        let direct = seedb2
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        let (rec, usage) = seedb2
            .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
            .unwrap();
        assert_eq!(usage.hits, avg_views);
        assert_eq!(usage.misses, seedb2.views().len() - avg_views);
        assert_same_recommendation(&direct, &rec);
    }

    /// Strongly separated 6-view table (3 dims × 2 measures). The target
    /// (`d0 ∈ {g0, g1}`) puts all of its mass on the first half of `d0`'s
    /// domain while the reference spreads evenly, so the `BY d0` views
    /// score EMD ≈ 1.0 and the `d1`/`d2` views ≈ 0 — far enough apart
    /// that CI pruning discards the noise views *before* the final phase
    /// and pruned cache entries include genuine prefixes, not just
    /// full-coverage views.
    fn separated() -> BoxedTable {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("d0"),
            ColumnDef::dim("d1"),
            ColumnDef::dim("d2"),
            ColumnDef::measure("m0"),
            ColumnDef::measure("m1"),
        ]);
        for i in 0..400u32 {
            b.push_row(&[
                Value::str(format!("g{}", i % 4)),
                Value::str(format!("x{}", i % 3)),
                Value::str(format!("y{}", i % 5)),
                Value::Float(50.0),
                Value::Float((i % 11) as f64),
            ])
            .unwrap();
        }
        b.build(StoreKind::Column).unwrap()
    }

    fn separated_target(t: &dyn Table) -> Predicate {
        Predicate::Or(vec![
            Predicate::col_eq_str(t, "d0", "g0"),
            Predicate::col_eq_str(t, "d0", "g1"),
        ])
    }

    #[test]
    fn pruned_config_warm_cache_is_bit_identical_and_scan_free() {
        use crate::cache::MemoryViewCache;
        let table = separated();
        let target = separated_target(table.as_ref());
        for pruning in [PruningKind::Ci, PruningKind::Mab] {
            let mut cfg = SeeDbConfig::default(); // COMB
            cfg.pruning = pruning;
            cfg.k = 2;
            let seedb = SeeDb::with_config(table.clone(), cfg);
            let direct = seedb
                .recommend(&target, &ReferenceSpec::WholeTable)
                .unwrap();

            let cache = MemoryViewCache::new();
            let (cold, use1) = seedb
                .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
                .unwrap();
            assert!(use1.eligible);
            assert_eq!(use1.misses, seedb.views().len());
            assert_same_recommendation(&direct, &cold);
            assert!(!cache.is_empty(), "pruned runs must deposit partials");

            // Warm repeat with the identical config: every phase replays,
            // no row is scanned, and the result is still bit-identical.
            let (warm, use2) = seedb
                .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
                .unwrap();
            assert!(use2.fully_cached(), "{use2:?}");
            assert_eq!(warm.stats.rows_scanned, 0);
            assert_eq!(warm.stats.queries_issued, 0);
            assert_same_recommendation(&direct, &warm);
            assert_eq!(warm.phases_executed, direct.phases_executed);
            assert_eq!(warm.early_stopped, direct.early_stopped);
        }
    }

    #[test]
    fn pruned_cache_deposits_prefixes_for_pruned_views() {
        use crate::cache::{Exactness, MemoryViewCache};
        use crate::signature::{predicate_signature, reference_signature};
        let table = separated();
        let target = separated_target(table.as_ref());
        let mut cfg = SeeDbConfig::default();
        cfg.k = 1; // aggressive: noise views get discarded pre-final-phase
        let seedb = SeeDb::with_config(table.clone(), cfg.clone());
        let cache = MemoryViewCache::new();
        let _ = seedb
            .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
            .unwrap();

        let pred_sig = predicate_signature(&target);
        let ref_sig = reference_signature(&ReferenceSpec::WholeTable);
        let total = crate::phase::effective_phases(seedb.table().num_rows(), cfg.num_phases);
        let mut exact = 0;
        let mut prefix = 0;
        for v in seedb.views() {
            let key = format!("{pred_sig}|{ref_sig}|{}|ph{total}", v.signature());
            let entry = cache.get(&key).expect("every view deposits an entry");
            match entry.exactness() {
                Exactness::Exact => exact += 1,
                Exactness::Prefix {
                    phases_done,
                    total_phases,
                } => {
                    assert!(phases_done > 0 && phases_done < total_phases);
                    assert_eq!(total_phases, total);
                    prefix += 1;
                }
            }
        }
        assert!(exact >= 1, "the surviving view covers every phase");
        assert!(
            prefix >= 1,
            "pruned views must keep their prefix work instead of discarding it"
        );
    }

    #[test]
    fn pruned_cache_resumes_truncated_prefixes_bit_identically() {
        use crate::cache::{CachedPartial, MemoryViewCache};
        use crate::signature::{predicate_signature, reference_signature};
        let table = separated();
        let target = separated_target(table.as_ref());
        let cfg = SeeDbConfig::default(); // COMB + CI
        let seedb = SeeDb::with_config(table.clone(), cfg.clone());
        let direct = seedb
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();

        let cache = MemoryViewCache::new();
        let (cold, _) = seedb
            .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
            .unwrap();
        assert_same_recommendation(&direct, &cold);

        // Truncate every cached entry to its first 4 phases: the warm run
        // must replay those and resume scanning at phase 4, not row 0.
        let pred_sig = predicate_signature(&target);
        let ref_sig = reference_signature(&ReferenceSpec::WholeTable);
        let total = crate::phase::effective_phases(seedb.table().num_rows(), cfg.num_phases);
        for v in seedb.views() {
            let key = format!("{pred_sig}|{ref_sig}|{}|ph{total}", v.signature());
            let entry = cache.get(&key).expect("deposited by the cold run");
            let cut: Vec<_> = entry.deltas.iter().take(4).cloned().collect();
            cache.put(&key, Arc::new(CachedPartial::prefix(cut, total)));
        }

        let (resumed, usage) = seedb
            .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
            .unwrap();
        assert!(usage.resumed >= 1, "{usage:?}");
        assert_eq!(usage.misses, 0);
        assert_same_recommendation(&direct, &resumed);
        assert!(
            resumed.stats.rows_scanned < cold.stats.rows_scanned,
            "resume must scan strictly less than a cold run: {} vs {}",
            resumed.stats.rows_scanned,
            cold.stats.rows_scanned
        );
        // And the deposits are healed back to full coverage: a second
        // warm run replays everything.
        let (warm, usage) = seedb
            .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
            .unwrap();
        assert!(usage.fully_cached(), "{usage:?}");
        assert_same_recommendation(&direct, &warm);
    }

    #[test]
    fn pruned_cache_is_reusable_across_k_and_pruning_scheme() {
        use crate::cache::MemoryViewCache;
        let table = separated();
        let target = separated_target(table.as_ref());
        let cache = MemoryViewCache::new();

        // Warm the cache with k=1 + CI (prunes hard, leaves prefixes).
        let mut cfg = SeeDbConfig::default();
        cfg.k = 1;
        let seedb = SeeDb::with_config(table.clone(), cfg.clone());
        let _ = seedb
            .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
            .unwrap();

        // A follow-up with different k and a different pruning scheme
        // reuses the same phase-partition entries: replay what's covered,
        // resume what isn't, and stay bit-identical to an uncached run.
        for (k, pruning) in [(3, PruningKind::Ci), (2, PruningKind::Mab)] {
            let mut cfg2 = SeeDbConfig::default();
            cfg2.k = k;
            cfg2.pruning = pruning;
            let seedb2 = SeeDb::with_config(table.clone(), cfg2);
            let direct = seedb2
                .recommend(&target, &ReferenceSpec::WholeTable)
                .unwrap();
            let (rec, usage) = seedb2
                .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
                .unwrap();
            assert!(usage.eligible);
            assert_eq!(usage.misses, 0, "{usage:?}");
            assert_same_recommendation(&direct, &rec);
        }
    }

    #[test]
    fn pruned_survivors_feed_the_exact_cache() {
        use crate::cache::MemoryViewCache;
        let table = separated();
        let target = separated_target(table.as_ref());
        let cache = MemoryViewCache::new();

        // A pruned run whose survivors cover the full table…
        let mut cfg = SeeDbConfig::default();
        cfg.k = 2;
        let seedb = SeeDb::with_config(table.clone(), cfg);
        let _ = seedb
            .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
            .unwrap();

        // …lets a pruning-free SHARING run skip those views' scans.
        let sharing = SeeDb::with_config(
            table.clone(),
            SeeDbConfig::for_strategy(ExecutionStrategy::Sharing),
        );
        let direct = sharing
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        let (rec, usage) = sharing
            .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
            .unwrap();
        assert!(usage.hits >= 1, "{usage:?}");
        assert_same_recommendation(&direct, &rec);
    }

    #[test]
    fn pathological_emd_view_exceeding_two_is_handled() {
        // EMD over many bins can exceed 2: all target mass lands in the
        // last group while the complement reference's mass sits in the
        // first, giving EMD = bins − 1. Such a utility violates the
        // Hoeffding–Serfling bound's [0, 1] precondition unless the CI
        // pruner clamps it (see `pruning::ci`); this run must neither
        // misrank nor destabilize pruning.
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("flag"),
            ColumnDef::dim("d"),
            ColumnDef::measure("m"),
            ColumnDef::measure("noise"),
        ]);
        for i in 0..160u32 {
            let group = i % 8;
            b.push_row(&[
                Value::str(if group == 7 { "yes" } else { "no" }),
                Value::str(format!("a{group}")),
                Value::Float(if group == 0 || group == 7 { 100.0 } else { 0.0 }),
                Value::Float((i % 3) as f64),
            ])
            .unwrap();
        }
        let table = b.build(StoreKind::Column).unwrap();
        let target = Predicate::col_eq_str(table.as_ref(), "flag", "yes");
        let mut cfg = SeeDbConfig::default(); // COMB + CI
        cfg.k = 2;
        let seedb = SeeDb::with_config(table, cfg.clone());
        let rec = seedb
            .recommend(&target, &ReferenceSpec::Complement)
            .unwrap();

        let top = &rec.views[0];
        assert!(
            top.utility > 2.0,
            "test premise: a pathological EMD view beyond the rescaling \
             constant (got {})",
            top.utility
        );
        assert!(top.utility.is_finite());
        assert_eq!(
            seedb.table().schema().column(top.spec.dim).name,
            "d",
            "the pathological view must still rank first"
        );
        // The same table under NO_PRU agrees on the winner.
        cfg.pruning = PruningKind::None;
        let seedb2 = SeeDb::with_config(seedb.table.clone(), cfg);
        let exact = seedb2
            .recommend(&target, &ReferenceSpec::Complement)
            .unwrap();
        assert_eq!(exact.views[0].spec, top.spec);
    }

    #[test]
    fn expired_deadline_errors_and_deposits_nothing() {
        use crate::cache::MemoryViewCache;
        let table = separated();
        let target = separated_target(table.as_ref());
        let expired = CancelToken::after(Duration::ZERO);

        // Direct run.
        let seedb = SeeDb::new(table.clone());
        let err = seedb
            .recommend_with(&target, &ReferenceSpec::WholeTable, expired)
            .unwrap_err();
        assert_eq!(err, CoreError::DeadlineExceeded);

        // Cached paths: the cache must stay empty across both arms.
        for strategy in [ExecutionStrategy::Sharing, ExecutionStrategy::Comb] {
            let cfg = SeeDbConfig::for_strategy(strategy);
            let seedb = SeeDb::with_config(table.clone(), cfg);
            let cache = MemoryViewCache::new();
            let err = seedb
                .recommend_cached_with(&target, &ReferenceSpec::WholeTable, &cache, expired)
                .unwrap_err();
            assert_eq!(err, CoreError::DeadlineExceeded, "{strategy:?}");
            assert!(
                cache.is_empty(),
                "{strategy:?}: a cancelled run must not poison the cache"
            );
        }
    }

    #[test]
    fn generous_deadline_is_bit_identical_to_no_deadline() {
        let table = separated();
        let target = separated_target(table.as_ref());
        let seedb = SeeDb::new(table);
        let plain = seedb
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        let generous = seedb
            .recommend_with(
                &target,
                &ReferenceSpec::WholeTable,
                CancelToken::after(Duration::from_secs(3600)),
            )
            .unwrap();
        assert_same_recommendation(&plain, &generous);
    }

    #[test]
    fn degraded_from_cache_serves_cached_views_and_reports_coverage() {
        use crate::cache::MemoryViewCache;
        let table = separated();
        let target = separated_target(table.as_ref());
        let seedb = SeeDb::new(table.clone()); // COMB + CI default
        let cache = MemoryViewCache::new();

        // Cold cache: nothing to degrade to.
        assert!(seedb
            .degraded_from_cache(&target, &ReferenceSpec::WholeTable, &cache)
            .is_none());

        // Warm the cache, then degrade: full coverage reproduces the
        // direct recommendation's top view without any scan.
        let (direct, _) = seedb
            .recommend_cached(&target, &ReferenceSpec::WholeTable, &cache)
            .unwrap();
        let (degraded, coverage) = seedb
            .degraded_from_cache(&target, &ReferenceSpec::WholeTable, &cache)
            .expect("warm cache must yield a degraded answer");
        assert!(coverage > 0.0 && coverage <= 1.0, "coverage {coverage}");
        assert_eq!(
            degraded.stats.rows_scanned, 0,
            "degraded answers never scan"
        );
        assert_eq!(degraded.views[0].spec, direct.views[0].spec);

        // A different target still has nothing.
        let other = Predicate::col_eq_str(table.as_ref(), "d0", "g3");
        assert!(seedb
            .degraded_from_cache(&other, &ReferenceSpec::WholeTable, &cache)
            .is_none());
    }

    #[test]
    fn recommendation_is_deterministic() {
        let table = census();
        let target = Predicate::col_eq_str(table.as_ref(), "marital", "unmarried");
        let seedb = SeeDb::new(table);
        let a = seedb
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        let b = seedb
            .recommend(&target, &ReferenceSpec::WholeTable)
            .unwrap();
        let ids_a: Vec<_> = a.views.iter().map(|v| v.spec.id).collect();
        let ids_b: Vec<_> = b.views.iter().map(|v| v.spec.id).collect();
        assert_eq!(ids_a, ids_b);
        assert_eq!(a.all_utilities, b.all_utilities);
    }
}
