//! Aggregate views and the view generator.
//!
//! §2: a visualization is an *aggregate view* `V = (a, m, f)`. The view
//! generator enumerates `A × M × F` from table metadata, exactly as the
//! SeeDB middleware queries DBMS metadata (§3). Each view can render itself
//! as the paper's target/reference/combined SQL view queries.

use seedb_engine::AggFunc;
use seedb_storage::{ColumnId, Table};
use std::fmt;

/// Dense identifier of a view within one enumeration.
pub type ViewId = usize;

/// One aggregate view `(a, m, f)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewSpec {
    /// Position in the enumeration (stable within a run).
    pub id: ViewId,
    /// Group-by dimension attribute `a`.
    pub dim: ColumnId,
    /// Measure attribute `m`.
    pub measure: ColumnId,
    /// Aggregate function `f`.
    pub func: AggFunc,
}

impl ViewSpec {
    /// Human-readable description against a table, e.g.
    /// `AVG(capital_gain) BY sex`.
    pub fn describe(&self, table: &dyn Table) -> String {
        let schema = table.schema();
        format!(
            "{}({}) BY {}",
            self.func,
            schema.column(self.measure).name,
            schema.column(self.dim).name
        )
    }

    /// The target view query as SQL (§2's `Q_T`), for a WHERE fragment
    /// `target_where` (pass `"TRUE"` for the whole table).
    pub fn target_sql(&self, table: &dyn Table, table_name: &str, target_where: &str) -> String {
        let schema = table.schema();
        let a = &schema.column(self.dim).name;
        let m = &schema.column(self.measure).name;
        format!(
            "SELECT {a}, {}({m}) FROM {table_name} WHERE {target_where} GROUP BY {a}",
            self.func
        )
    }

    /// The reference view query (§2's `Q_R`).
    pub fn reference_sql(
        &self,
        table: &dyn Table,
        table_name: &str,
        reference_where: &str,
    ) -> String {
        self.target_sql(table, table_name, reference_where)
    }
}

impl fmt::Display for ViewSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "V{}({}, {}, {})",
            self.id, self.dim, self.measure, self.func
        )
    }
}

/// Enumerates every view `(a, m, f)` for the table's declared dimensions
/// and measures and the configured aggregate functions.
///
/// Enumeration order is deterministic: functions outermost, then dimensions,
/// then measures — so view ids are stable across runs and across storage
/// layouts.
pub fn enumerate_views(table: &dyn Table, funcs: &[AggFunc]) -> Vec<ViewSpec> {
    let schema = table.schema();
    let dims = schema.dimensions();
    let measures = schema.measures();
    let mut views = Vec::with_capacity(dims.len() * measures.len() * funcs.len());
    let mut id = 0;
    for &func in funcs {
        for &dim in &dims {
            for &measure in &measures {
                views.push(ViewSpec {
                    id,
                    dim,
                    measure,
                    func,
                });
                id += 1;
            }
        }
    }
    views
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedb_storage::{BoxedTable, ColumnDef, StoreKind, TableBuilder, Value};

    fn table() -> BoxedTable {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("sex"),
            ColumnDef::dim("race"),
            ColumnDef::measure("gain"),
            ColumnDef::measure("hours"),
        ]);
        b.push_row(&[
            Value::str("F"),
            Value::str("A"),
            Value::Float(1.0),
            Value::Float(2.0),
        ])
        .unwrap();
        b.build(StoreKind::Column).unwrap()
    }

    #[test]
    fn enumeration_covers_cross_product() {
        let t = table();
        let views = enumerate_views(t.as_ref(), &[AggFunc::Avg]);
        assert_eq!(views.len(), 4); // 2 dims × 2 measures × 1 func
        let views = enumerate_views(t.as_ref(), &[AggFunc::Avg, AggFunc::Sum, AggFunc::Count]);
        assert_eq!(views.len(), 12);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let t = table();
        let views = enumerate_views(t.as_ref(), &[AggFunc::Avg, AggFunc::Count]);
        for (i, v) in views.iter().enumerate() {
            assert_eq!(v.id, i);
        }
        // First block is all-AVG, second all-COUNT.
        assert!(views[..4].iter().all(|v| v.func == AggFunc::Avg));
        assert!(views[4..].iter().all(|v| v.func == AggFunc::Count));
    }

    #[test]
    fn paper_view_count_formula() {
        // Table 1 reports |views| = |A| × |M| with a single aggregate:
        // BANK 11×7=77. Emulate with an 11-dim, 7-measure schema.
        let mut defs = Vec::new();
        for i in 0..11 {
            defs.push(ColumnDef::dim(format!("d{i}")));
        }
        for i in 0..7 {
            defs.push(ColumnDef::measure(format!("m{i}")));
        }
        let mut b = TableBuilder::new(defs);
        let mut row = Vec::new();
        for _ in 0..11 {
            row.push(Value::str("x"));
        }
        for _ in 0..7 {
            row.push(Value::Float(0.0));
        }
        b.push_row(&row).unwrap();
        let t = b.build(StoreKind::Column).unwrap();
        assert_eq!(enumerate_views(t.as_ref(), &[AggFunc::Avg]).len(), 77);
    }

    #[test]
    fn describe_and_sql_render() {
        let t = table();
        let views = enumerate_views(t.as_ref(), &[AggFunc::Avg]);
        let v = &views[0];
        assert_eq!(v.describe(t.as_ref()), "AVG(gain) BY sex");
        let sql = v.target_sql(t.as_ref(), "census", "marital = 'single'");
        assert_eq!(
            sql,
            "SELECT sex, AVG(gain) FROM census WHERE marital = 'single' GROUP BY sex"
        );
        let rsql = v.reference_sql(t.as_ref(), "census", "TRUE");
        assert!(rsql.contains("WHERE TRUE"));
    }

    #[test]
    fn generated_sql_parses_back() {
        let t = table();
        let views = enumerate_views(t.as_ref(), &[AggFunc::Avg, AggFunc::Sum]);
        for v in &views {
            let sql = v.target_sql(t.as_ref(), "t", "TRUE");
            let parsed = seedb_sql::parse_query(&sql)
                .unwrap_or_else(|e| panic!("generated SQL failed to parse: {sql}: {e}"));
            assert_eq!(parsed.group_by.len(), 1);
        }
    }
}
