//! Result-quality metrics from §5.4.
//!
//! * **accuracy** — `|{ν_T} ∩ {ν_S}| / k`: the fraction of the true top-k
//!   present in SeeDB's returned top-k.
//! * **utility distance** — difference between the average true utility of
//!   the true top-k and the average true utility of the returned set; near
//!   zero means the returned views are essentially as good even when
//!   accuracy is imperfect (the paper's Δk discussion).

use rustc_hash::FxHashSet;

/// Fraction of `true_top` ids present in `returned` (both length-k sets; if
/// lengths differ the shorter defines k).
pub fn accuracy_at_k(true_top: &[usize], returned: &[usize]) -> f64 {
    let k = true_top.len().min(returned.len());
    if k == 0 {
        return 1.0;
    }
    let truth: FxHashSet<usize> = true_top[..k].iter().copied().collect();
    let hits = returned[..k].iter().filter(|id| truth.contains(id)).count();
    hits as f64 / k as f64
}

/// Utility distance: `mean(U(true top-k)) − mean(U(returned))`, both
/// evaluated under the *true* utilities `utility_of[view_id]`.
pub fn utility_distance(true_top: &[usize], returned: &[usize], utility_of: &[f64]) -> f64 {
    let mean = |ids: &[usize]| -> f64 {
        if ids.is_empty() {
            return 0.0;
        }
        ids.iter().map(|&id| utility_of[id]).sum::<f64>() / ids.len() as f64
    };
    mean(true_top) - mean(returned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recovery() {
        assert_eq!(accuracy_at_k(&[3, 1, 2], &[1, 2, 3]), 1.0);
        assert_eq!(utility_distance(&[0, 1], &[1, 0], &[0.9, 0.8, 0.1]), 0.0);
    }

    #[test]
    fn partial_overlap() {
        assert!((accuracy_at_k(&[0, 1, 2, 3], &[0, 1, 7, 8]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(accuracy_at_k(&[0, 1], &[2, 3]), 0.0);
    }

    #[test]
    fn utility_distance_reflects_quality_gap() {
        let utilities = [0.9, 0.85, 0.2, 0.1];
        // True top-2 = {0,1}; returned {0,2}: distance = mean(0.9,0.85)-mean(0.9,0.2)
        let d = utility_distance(&[0, 1], &[0, 2], &utilities);
        assert!((d - (0.875 - 0.55)).abs() < 1e-12);
        // Swapping a near-tie view barely moves the distance (paper's point
        // about small Δk: low accuracy can still mean high quality).
        let utilities = [0.9, 0.851, 0.85, 0.1];
        let d = utility_distance(&[0, 1], &[0, 2], &utilities);
        assert!(d < 0.001);
    }

    #[test]
    fn empty_inputs_are_benign() {
        assert_eq!(accuracy_at_k(&[], &[]), 1.0);
        assert_eq!(utility_distance(&[], &[], &[]), 0.0);
    }

    #[test]
    fn mismatched_lengths_use_shorter_k() {
        assert_eq!(accuracy_at_k(&[0, 1, 2], &[0]), 1.0);
        assert_eq!(accuracy_at_k(&[0], &[1, 0]), 0.0);
    }
}
