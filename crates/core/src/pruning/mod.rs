//! Pruning schemes (§4.2): after every phase, decide which views to
//! discard (never in the top-k with high probability) and which to accept
//! (certainly in the top-k).

pub mod ci;
pub mod mab;
pub mod none;
pub mod random;

use crate::config::PruningKind;

/// A view's running utility estimate as seen by a pruner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewEstimate {
    /// The view's id.
    pub view_id: usize,
    /// Running mean of the per-phase utility estimates.
    pub mean: f64,
    /// Number of phase estimates contributing to the mean.
    pub samples: usize,
}

/// A pruner's decision at the end of a phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneDecision {
    /// Views to discard (no longer processed in later phases).
    pub discard: Vec<usize>,
    /// Views to accept into the top-k (stop participating in pruning but
    /// keep accumulating for display).
    pub accept: Vec<usize>,
}

/// Per-phase pruning interface.
///
/// `estimates` holds only the *live, unaccepted* views; `accepted_so_far`
/// tells the pruner how many top-k slots are already taken; `phase` is
/// 1-based; `total_phases` is the configured `n`.
pub trait Pruner: Send {
    /// Inspects the running estimates and returns which views to discard
    /// and/or accept.
    fn decide(
        &mut self,
        estimates: &[ViewEstimate],
        accepted_so_far: usize,
        k: usize,
        phase: usize,
        total_phases: usize,
    ) -> PruneDecision;

    /// The scheme's paper label (for reports).
    fn label(&self) -> &'static str;
}

/// Instantiates the pruner for a [`PruningKind`].
pub fn make_pruner(kind: PruningKind, delta: f64, seed: u64) -> Box<dyn Pruner> {
    match kind {
        PruningKind::Ci => Box::new(ci::CiPruner::new(delta)),
        PruningKind::Mab => Box::new(mab::MabPruner::new()),
        PruningKind::None => Box::new(none::NoPruner),
        PruningKind::Random => Box::new(random::RandomPruner::new(seed)),
    }
}

#[cfg(test)]
pub(crate) fn estimates_from(means: &[f64], samples: usize) -> Vec<ViewEstimate> {
    means
        .iter()
        .enumerate()
        .map(|(i, &m)| ViewEstimate {
            view_id: i,
            mean: m,
            samples,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_returns_matching_labels() {
        for kind in PruningKind::ALL {
            let p = make_pruner(kind, 0.05, 1);
            assert_eq!(p.label(), kind.label());
        }
    }
}
