//! The `NO_PRU` baseline: process everything, discard nothing (§5.4).
//!
//! Provides the latency/accuracy upper bound and the utility-distance lower
//! bound against which CI and MAB are compared.

use super::{PruneDecision, Pruner, ViewEstimate};

/// Never prunes.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPruner;

impl Pruner for NoPruner {
    fn decide(
        &mut self,
        _estimates: &[ViewEstimate],
        _accepted_so_far: usize,
        _k: usize,
        _phase: usize,
        _total_phases: usize,
    ) -> PruneDecision {
        PruneDecision::default()
    }

    fn label(&self) -> &'static str {
        "NO_PRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::estimates_from;

    #[test]
    fn never_discards_or_accepts() {
        let mut p = NoPruner;
        for phase in 1..=10 {
            let d = p.decide(&estimates_from(&[0.9, 0.1, 0.0], 3), 0, 1, phase, 10);
            assert_eq!(d, PruneDecision::default());
        }
    }
}
