//! Confidence-interval pruning (§4.2, Theorem 4.1).
//!
//! After phase `m` of `N`, each view has `m` utility estimates
//! `Y₁, …, Y_m` (utility computed on the cumulative data after each
//! phase). The Hoeffding–Serfling inequality for sampling *without
//! replacement* gives a running confidence interval around their mean that
//! contains the true utility with probability ≥ 1 − δ.
//!
//! We use the Serfling-style half-width
//!
//! ```text
//! ε(m, N, δ) = sqrt( (1 − (m−1)/N) · ln(2/δ) / (2m) )
//! ```
//!
//! where the factor `1 − (m−1)/N` is the finite-population correction that
//! drives the interval to zero as the scan approaches the full dataset —
//! the property the paper's Theorem 4.1 provides. Utilities are distances
//! between probability distributions; every supported metric is bounded by
//! 2, so estimates are rescaled into `[0, 1]` by that constant before the
//! bound applies.
//!
//! **Pruning rule** (paper, §4.2): *"If the upper bound of the utility of
//! view Vi is less than the lower bound of the utility of k or more views,
//! then Vi is discarded."* Symmetrically, a view whose lower bound beats
//! the upper bound of all but fewer-than-k views is *accepted* — this is
//! what lets `COMB_EARLY` stop before the final phase.
//!
//! The bound treats per-phase utility estimates as values in `[0, 1]`.
//! Every supported L1-family metric on normalized distributions is ≤ 2,
//! so estimates are rescaled into `[0, 1]` by that constant — **and then
//! clamped**, because EMD over many bins can exceed 2 for pathological
//! mass transport (all target mass in the last bin, all reference mass in
//! the first gives EMD = bins − 1), which would silently violate the
//! bound's `[0, 1]` precondition. Clamping keeps such estimates inside
//! the bound's domain at the cost of not distinguishing utilities beyond
//! 2 from one another — conservative, never unsound. As the paper notes
//! (§4.2, "Consistent Distance Functions"), the guarantees do not carry
//! over exactly anyway; what matters — and what §5.4 measures — is that
//! pruning with these intervals is accurate in practice.

use super::{PruneDecision, Pruner, ViewEstimate};

/// Every supported metric on normalized distributions is bounded by this
/// constant — except EMD over many bins, which [`scale01`] clamps.
const UTILITY_SCALE: f64 = 2.0;

/// Maps a raw utility estimate into the Hoeffding–Serfling bound's
/// `[0, 1]` domain: rescale by [`UTILITY_SCALE`], then clamp. NaN passes
/// through: comparisons against it are false, so a NaN-utility view
/// never dominates nor is dominated, and the accept branch explicitly
/// skips it — it stays undecided. (Unreachable through the normal
/// pipeline — `normalize` yields finite distributions — but poisoned
/// measure data must not be "certainly top-k".)
fn scale01(u: f64) -> f64 {
    (u / UTILITY_SCALE).clamp(0.0, 1.0)
}

/// Hoeffding–Serfling confidence-interval pruner.
#[derive(Debug, Clone)]
pub struct CiPruner {
    delta: f64,
}

impl CiPruner {
    /// Creates a CI pruner with confidence parameter `delta`.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        CiPruner { delta }
    }

    /// Interval half-width after `m` of `n` phases.
    pub fn half_width(&self, m: usize, n: usize) -> f64 {
        if m == 0 {
            return f64::INFINITY;
        }
        if m >= n {
            // Entire dataset consumed: the estimate is exact.
            return 0.0;
        }
        let m_f = m as f64;
        let n_f = n as f64;
        let correction = 1.0 - (m_f - 1.0) / n_f;
        ((correction * (2.0 / self.delta).ln()) / (2.0 * m_f)).sqrt()
    }
}

impl Pruner for CiPruner {
    fn decide(
        &mut self,
        estimates: &[ViewEstimate],
        accepted_so_far: usize,
        k: usize,
        phase: usize,
        total_phases: usize,
    ) -> PruneDecision {
        let mut decision = PruneDecision::default();
        let slots = k.saturating_sub(accepted_so_far);
        if estimates.is_empty() || slots == 0 {
            // Top-k already filled: everything left is discardable.
            decision.discard = estimates.iter().map(|e| e.view_id).collect();
            return decision;
        }
        let eps = self.half_width(phase, total_phases);
        let lower = |e: &ViewEstimate| scale01(e.mean) - eps;
        let upper = |e: &ViewEstimate| scale01(e.mean) + eps;

        for v in estimates {
            // Count live views whose lower bound exceeds v's upper bound.
            let dominated_by = estimates
                .iter()
                .filter(|o| o.view_id != v.view_id && lower(o) > upper(v))
                .count();
            if dominated_by >= slots {
                decision.discard.push(v.view_id);
                continue;
            }
            // Accept: v's lower bound beats the upper bound of all but
            // fewer than `slots` views — v is certainly in the top-k. A
            // NaN mean makes every comparison above false, which would
            // read as "dominates everything"; such a view is never
            // certain, so it stays undecided instead.
            let not_dominated = estimates
                .iter()
                .filter(|o| o.view_id != v.view_id && upper(o) >= lower(v))
                .count();
            if not_dominated < slots && !v.mean.is_nan() {
                decision.accept.push(v.view_id);
            }
        }
        // Never accept more than the remaining slots (ties could otherwise
        // overfill); prefer higher means.
        if decision.accept.len() > slots {
            let mut by_mean: Vec<&ViewEstimate> = estimates
                .iter()
                .filter(|e| decision.accept.contains(&e.view_id))
                .collect();
            by_mean.sort_by(|a, b| b.mean.partial_cmp(&a.mean).unwrap());
            decision.accept = by_mean.into_iter().take(slots).map(|e| e.view_id).collect();
        }
        decision
    }

    fn label(&self) -> &'static str {
        "CI"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::estimates_from;

    #[test]
    fn half_width_shrinks_with_phases_and_hits_zero() {
        let p = CiPruner::new(0.05);
        let n = 10;
        let widths: Vec<f64> = (1..=n).map(|m| p.half_width(m, n)).collect();
        for w in widths.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "widths must be non-increasing: {widths:?}"
            );
        }
        assert_eq!(widths[n - 1], 0.0, "full scan gives exact estimate");
        assert_eq!(p.half_width(0, n), f64::INFINITY);
    }

    #[test]
    fn smaller_delta_gives_wider_intervals() {
        let tight = CiPruner::new(0.2);
        let loose = CiPruner::new(0.01);
        assert!(loose.half_width(3, 10) > tight.half_width(3, 10));
    }

    #[test]
    fn clearly_dominated_views_are_discarded() {
        let mut p = CiPruner::new(0.05);
        // One view far below k=2 others, near the end of the scan (tight
        // CI). Means are raw utilities in [0, 2]; the pruner rescales.
        let means = [1.8, 1.6, 0.05];
        let d = p.decide(&estimates_from(&means, 9), 0, 2, 9, 10);
        assert!(d.discard.contains(&2), "{d:?}");
        assert!(!d.discard.contains(&0));
        assert!(!d.discard.contains(&1));
    }

    #[test]
    fn oversized_emd_estimates_clamp_into_the_bound() {
        // EMD over many bins can exceed the rescaling constant 2 (all
        // target mass in the last bin vs all reference mass in the first
        // over B bins gives EMD = B − 1). Unclamped, a mean of 100 would
        // put its lower bound at 49.8 and instantly discard everything
        // else; clamped, both oversized means saturate at 1.0 and neither
        // can dominate the other.
        let mut p = CiPruner::new(0.05);
        let means = [100.0, 4.0];
        let d = p.decide(&estimates_from(&means, 9), 0, 1, 9, 10);
        assert!(d.discard.is_empty(), "{d:?}");
        // Against a genuinely low view the clamped estimate still prunes.
        let means = [100.0, 0.01];
        let d = p.decide(&estimates_from(&means, 9), 0, 1, 9, 10);
        assert_eq!(d.discard, vec![1], "{d:?}");
    }

    #[test]
    fn nan_means_stay_undecided() {
        // A NaN mean defeats every bound comparison; it must be neither
        // accepted ("certainly top-k") nor discarded.
        let mut p = CiPruner::new(0.05);
        let estimates = vec![
            ViewEstimate {
                view_id: 0,
                mean: f64::NAN,
                samples: 9,
            },
            ViewEstimate {
                view_id: 1,
                mean: 0.4,
                samples: 9,
            },
        ];
        let d = p.decide(&estimates, 0, 1, 9, 10);
        assert!(!d.accept.contains(&0), "{d:?}");
        assert!(!d.discard.contains(&0), "{d:?}");
    }

    #[test]
    fn scale01_maps_into_unit_interval() {
        assert_eq!(scale01(0.0), 0.0);
        assert_eq!(scale01(1.0), 0.5);
        assert_eq!(scale01(2.0), 1.0);
        assert_eq!(scale01(7.5), 1.0, "oversized EMD clamps");
        assert_eq!(scale01(-0.5), 0.0, "rounding noise clamps at zero");
        assert!(scale01(f64::NAN).is_nan());
    }

    #[test]
    fn wide_intervals_early_prevent_pruning() {
        let mut p = CiPruner::new(0.05);
        let means = [0.9, 0.8, 0.05];
        // Phase 1 of 100: intervals are huge, nothing should be decided.
        let d = p.decide(&estimates_from(&means, 1), 0, 2, 1, 100);
        assert!(d.discard.is_empty(), "{d:?}");
        assert!(d.accept.is_empty(), "{d:?}");
    }

    #[test]
    fn dominant_view_is_accepted() {
        let mut p = CiPruner::new(0.05);
        // k=1 and view 0 towers above the rest late in the scan.
        let means = [0.95, 0.1, 0.12, 0.08];
        let d = p.decide(&estimates_from(&means, 9), 0, 1, 9, 10);
        assert_eq!(d.accept, vec![0]);
    }

    #[test]
    fn accepts_capped_at_remaining_slots() {
        let mut p = CiPruner::new(0.05);
        // Three views tower over the fourth but only 2 slots remain.
        let means = [0.9, 0.89, 0.88, 0.01];
        let d = p.decide(&estimates_from(&means, 9), 0, 2, 9, 10);
        assert!(d.accept.len() <= 2, "{d:?}");
    }

    #[test]
    fn no_slots_left_discards_remaining() {
        let mut p = CiPruner::new(0.05);
        let means = [0.5, 0.4];
        let d = p.decide(&estimates_from(&means, 5), 3, 3, 5, 10);
        assert_eq!(d.discard.len(), 2);
    }

    #[test]
    fn ties_never_discard_within_interval() {
        let mut p = CiPruner::new(0.05);
        // All means equal: no view dominates another.
        let means = [0.5; 6];
        let d = p.decide(&estimates_from(&means, 5), 0, 2, 5, 10);
        assert!(d.discard.is_empty());
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_panics() {
        CiPruner::new(0.0);
    }

    /// Empirical coverage: the running interval brackets the true mean with
    /// frequency ≥ 1 − δ under without-replacement sampling.
    #[test]
    fn empirical_coverage_of_running_interval() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 20usize; // phases
        let delta = 0.1;
        let p = CiPruner::new(delta);
        let mut violations = 0;
        let trials = 400;
        for _ in 0..trials {
            // Population of n per-phase estimates in [0,1].
            let mut pop: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64).fract()).collect();
            pop.shuffle(&mut rng);
            let true_mean: f64 = pop.iter().sum::<f64>() / n as f64;
            let mut running_sum = 0.0;
            let mut violated = false;
            for m in 1..=n {
                running_sum += pop[m - 1];
                let mean_m = running_sum / m as f64;
                let eps = p.half_width(m, n);
                if (mean_m - true_mean).abs() > eps + 1e-12 {
                    violated = true;
                    break;
                }
            }
            if violated {
                violations += 1;
            }
        }
        let rate = violations as f64 / trials as f64;
        assert!(
            rate <= delta + 0.05,
            "violation rate {rate} exceeds delta {delta}"
        );
    }
}
