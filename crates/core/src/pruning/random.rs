//! The `RANDOM` baseline (§5.4): returns a random set of k views.
//!
//! *"This strategy gives a lowerbound on accuracy and upperbound on utility
//! distance: for any technique to be useful, it must do significantly
//! better than RANDOM."* Implemented as a pruner that, at the end of the
//! first phase, accepts k views uniformly at random and discards the rest —
//! so it also consumes almost no scan work.

use super::{PruneDecision, Pruner, ViewEstimate};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Accepts k random views at the first opportunity.
#[derive(Debug)]
pub struct RandomPruner {
    rng: StdRng,
}

impl RandomPruner {
    /// Creates the pruner with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomPruner {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Pruner for RandomPruner {
    fn decide(
        &mut self,
        estimates: &[ViewEstimate],
        accepted_so_far: usize,
        k: usize,
        _phase: usize,
        _total_phases: usize,
    ) -> PruneDecision {
        let mut decision = PruneDecision::default();
        let slots = k.saturating_sub(accepted_so_far);
        let mut ids: Vec<usize> = estimates.iter().map(|e| e.view_id).collect();
        ids.shuffle(&mut self.rng);
        decision.accept = ids.iter().take(slots).copied().collect();
        decision.discard = ids.iter().skip(slots).copied().collect();
        decision
    }

    fn label(&self) -> &'static str {
        "RANDOM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::estimates_from;

    #[test]
    fn decides_everything_in_one_shot() {
        let mut p = RandomPruner::new(1);
        let d = p.decide(&estimates_from(&[0.1; 10], 1), 0, 3, 1, 10);
        assert_eq!(d.accept.len(), 3);
        assert_eq!(d.discard.len(), 7);
        // Partition: no overlap, full coverage.
        let mut all: Vec<usize> = d.accept.iter().chain(&d.discard).copied().collect();
        all.sort();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut p1 = RandomPruner::new(42);
        let mut p2 = RandomPruner::new(42);
        let ests = estimates_from(&[0.5; 8], 1);
        assert_eq!(p1.decide(&ests, 0, 2, 1, 10), p2.decide(&ests, 0, 2, 1, 10));
    }

    #[test]
    fn different_seeds_differ_eventually() {
        let ests = estimates_from(&[0.5; 20], 1);
        let a = RandomPruner::new(1).decide(&ests, 0, 5, 1, 10);
        let b = RandomPruner::new(2).decide(&ests, 0, 5, 1, 10);
        assert_ne!(a.accept, b.accept);
    }

    #[test]
    fn respects_remaining_slots() {
        let mut p = RandomPruner::new(7);
        let d = p.decide(&estimates_from(&[0.5; 6], 1), 4, 5, 1, 10);
        assert_eq!(d.accept.len(), 1);
        assert_eq!(d.discard.len(), 5);
    }

    #[test]
    fn ignores_utility_means() {
        // Selection frequency of the best view should be ~ k/n, not 1.
        let ests = estimates_from(&[1.0, 0.0, 0.0, 0.0], 1);
        let mut hits = 0;
        for seed in 0..200 {
            let d = RandomPruner::new(seed).decide(&ests, 0, 1, 1, 10);
            if d.accept == vec![0] {
                hits += 1;
            }
        }
        // Expect ≈ 50 of 200; allow generous slack.
        assert!(
            (20..=90).contains(&hits),
            "best view accepted {hits}/200 times"
        );
    }
}
