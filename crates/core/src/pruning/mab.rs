//! Multi-armed-bandit pruning (§4.2): the Successive Accepts and Rejects
//! strategy adapted from Bubeck et al., "Multiple identifications in
//! multi-armed bandits" (the paper's [5]).
//!
//! At the end of every phase, live views are ranked by their running
//! utility means. Two gaps are computed:
//!
//! * `Δ₁` — highest mean minus the `(k+1)`-st highest mean,
//! * `Δ_n` — the `k`-th highest mean minus the lowest mean.
//!
//! If `Δ₁ > Δ_n`, the top view is **accepted** into the top-k (it stops
//! participating in pruning); otherwise the bottom view is **rejected**.
//! One arm is decided per phase, which is why MAB prunes more slowly — but
//! more cautiously — than CI (§5.4's CI-vs-MAB discussion).

use super::{PruneDecision, Pruner, ViewEstimate};

/// Successive-accepts-and-rejects pruner.
#[derive(Debug, Clone, Default)]
pub struct MabPruner;

impl MabPruner {
    /// Creates the MAB pruner.
    pub fn new() -> Self {
        MabPruner
    }
}

impl Pruner for MabPruner {
    fn decide(
        &mut self,
        estimates: &[ViewEstimate],
        accepted_so_far: usize,
        k: usize,
        _phase: usize,
        _total_phases: usize,
    ) -> PruneDecision {
        let mut decision = PruneDecision::default();
        let slots = k.saturating_sub(accepted_so_far);
        if slots == 0 {
            decision.discard = estimates.iter().map(|e| e.view_id).collect();
            return decision;
        }
        // If no more views than slots remain, everything left is top-k.
        if estimates.len() <= slots {
            return decision;
        }

        let mut ranked: Vec<&ViewEstimate> = estimates.iter().collect();
        ranked.sort_by(|a, b| b.mean.partial_cmp(&a.mean).unwrap());

        // Δ₁: best vs the first view that would *not* fit in the remaining
        // slots; Δ_n: the last fitting view vs the worst.
        let delta_1 = ranked[0].mean - ranked[slots].mean;
        let delta_n = ranked[slots - 1].mean - ranked[ranked.len() - 1].mean;

        if delta_1 > delta_n {
            decision.accept.push(ranked[0].view_id);
        } else {
            decision.discard.push(ranked[ranked.len() - 1].view_id);
        }
        decision
    }

    fn label(&self) -> &'static str {
        "MAB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::estimates_from;

    #[test]
    fn accepts_top_when_top_gap_dominates() {
        let mut p = MabPruner::new();
        // k=2: the top view's gap to the first non-fitting view (Δ₁ =
        // 0.9−0.3) exceeds the bottom gap (Δn = 0.85−0.28), so SAR accepts.
        let means = [0.9, 0.85, 0.30, 0.28];
        let d = p.decide(&estimates_from(&means, 3), 0, 2, 3, 10);
        assert_eq!(d.accept, vec![0]);
        assert!(d.discard.is_empty());
    }

    #[test]
    fn k_equals_one_only_rejects() {
        // With k=1, Δn = mean₁ − mean_last ≥ Δ₁ = mean₁ − mean₂ always, so
        // successive-rejects behaviour emerges: the bottom arm is discarded
        // each round (the classic best-arm identification algorithm).
        let mut p = MabPruner::new();
        let means = [0.9, 0.30, 0.29, 0.28];
        let d = p.decide(&estimates_from(&means, 3), 0, 1, 3, 10);
        assert!(d.accept.is_empty());
        assert_eq!(d.discard, vec![3]);
    }

    #[test]
    fn rejects_bottom_when_bottom_gap_dominates() {
        let mut p = MabPruner::new();
        // k=1: top views clustered, bottom far below.
        let means = [0.50, 0.49, 0.48, 0.05];
        let d = p.decide(&estimates_from(&means, 3), 0, 1, 3, 10);
        assert_eq!(d.discard, vec![3]);
        assert!(d.accept.is_empty());
    }

    #[test]
    fn decides_exactly_one_arm_per_phase() {
        let mut p = MabPruner::new();
        let means = [0.9, 0.7, 0.5, 0.3, 0.1];
        let d = p.decide(&estimates_from(&means, 4), 0, 2, 4, 10);
        assert_eq!(d.accept.len() + d.discard.len(), 1);
    }

    #[test]
    fn no_decision_when_views_fit_in_slots() {
        let mut p = MabPruner::new();
        let means = [0.9, 0.1];
        let d = p.decide(&estimates_from(&means, 4), 0, 5, 4, 10);
        assert!(d.accept.is_empty() && d.discard.is_empty());
    }

    #[test]
    fn accepted_slots_shrink_k() {
        let mut p = MabPruner::new();
        // k=3 with 2 already accepted => 1 effective slot, so SAR is in its
        // k=1 regime: it rejects the bottom arm rather than accepting.
        let means = [0.9, 0.2, 0.19];
        let d = p.decide(&estimates_from(&means, 4), 2, 3, 4, 10);
        assert!(d.accept.is_empty());
        assert_eq!(d.discard, vec![2]);
    }

    #[test]
    fn all_slots_taken_discards_rest() {
        let mut p = MabPruner::new();
        let means = [0.9, 0.8];
        let d = p.decide(&estimates_from(&means, 4), 3, 3, 4, 10);
        assert_eq!(d.discard.len(), 2);
    }

    #[test]
    fn simulated_run_identifies_true_top_k() {
        // Drive the pruner phase by phase on noiseless means; it must
        // eventually isolate the true top-2 of five views.
        let true_means = [0.8, 0.7, 0.3, 0.2, 0.1];
        let k = 2;
        let mut alive: Vec<usize> = (0..5).collect();
        let mut accepted: Vec<usize> = Vec::new();
        let mut p = MabPruner::new();
        for phase in 1..=10 {
            let ests: Vec<ViewEstimate> = alive
                .iter()
                .map(|&i| ViewEstimate {
                    view_id: i,
                    mean: true_means[i],
                    samples: phase,
                })
                .collect();
            let d = p.decide(&ests, accepted.len(), k, phase, 10);
            for a in d.accept {
                accepted.push(a);
                alive.retain(|&v| v != a);
            }
            for r in d.discard {
                alive.retain(|&v| v != r);
            }
            if accepted.len() == k || accepted.len() + alive.len() == k {
                break;
            }
        }
        let mut final_set: Vec<usize> = accepted;
        final_set.extend(alive);
        final_set.sort();
        assert_eq!(final_set, vec![0, 1]);
    }
}
