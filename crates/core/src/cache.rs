//! Cross-request reuse hook: a cache of per-view aggregates, exact or
//! phase-prefix.
//!
//! SeeDB's intra-query sharing (§4.1) reuses scans *within* one
//! recommendation run; a serving layer wants the cross-request twin of
//! that idea — when an analyst re-issues an overlapping query (same
//! target, different `k` or metric; or a repeat of the same query), the
//! per-view aggregates are already known and the scan can be skipped
//! entirely.
//!
//! [`ViewCache`] is the hook the engine calls through:
//! [`SeeDb::recommend_cached`](crate::SeeDb::recommend_cached) probes it
//! per view with a canonical key (see [`crate::signature`]) and fills it
//! with [`CachedPartial`]s. Two kinds of entry live in the same key
//! space, distinguished by their key *and* their [`Exactness`] tag:
//!
//! * **Exact** entries hold one full-table combined result per view —
//!   what the pruning-free configurations deposit and consume.
//! * **Prefix** entries hold one combined result *per executed phase* of
//!   an `N`-phase partition (keys carry a `|phN` suffix). A pruned run
//!   deposits whatever prefix each view accumulated before being
//!   discarded — the work is kept, not thrown away — and a later pruned
//!   run *replays* those phases without scanning, resuming the scan at
//!   `phases_done` instead of row 0. Because the deltas are raw
//!   aggregates (no pruning decisions baked in), the same entry is
//!   reusable across runs that differ in `k`, `delta`, or pruning
//!   scheme: the consumer re-derives its own decisions phase by phase,
//!   and a view that outlives its cached prefix just resumes scanning. A
//!   view whose prefix covers all `N` phases is tagged [`Exactness::Exact`]
//!   — its scans are skipped entirely and the pruner's interval collapses
//!   to zero width by the final phase.
//!
//! The trait is deliberately tiny so serving layers can back it with any
//! eviction policy (the `seedb-server` crate uses a memory-budgeted
//! LRU); [`MemoryViewCache`] is an unbounded reference implementation
//! for tests and embedding.

use seedb_engine::GroupedResult;
use seedb_util::PLock;
use std::collections::HashMap;
use std::sync::Arc;

/// How much of a view's full-table aggregate a [`CachedPartial`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exactness {
    /// The entry covers the whole table: merging every delta yields the
    /// exact full-table combined result.
    Exact,
    /// The entry covers the first `phases_done` of `total_phases`
    /// contiguous phases — a resumable prefix.
    Prefix {
        /// Phases covered (the resume point for a consumer).
        phases_done: usize,
        /// The partition granularity the deltas were computed under.
        total_phases: usize,
    },
}

/// A cached per-view aggregate: per-phase combined (target + reference)
/// results over a contiguous phase prefix.
///
/// `deltas[j]` is the view's aggregate over phase `j`'s rows alone;
/// merging `deltas[0..=j]` into a fresh
/// [`ViewState`](crate::state::ViewState) reproduces the cumulative
/// state after phase `j` bit-for-bit (accumulator merges are exact).
/// Unphased exact entries are the degenerate single-delta case with
/// `total_phases == 1`.
#[derive(Debug, Clone)]
pub struct CachedPartial {
    /// Per-phase combined results; `deltas.len()` phases are covered.
    pub deltas: Vec<Arc<GroupedResult>>,
    /// The phase-partition granularity (effective non-empty phases).
    pub total_phases: usize,
}

impl CachedPartial {
    /// An exact full-table entry (single delta, one-phase partition).
    pub fn exact(result: Arc<GroupedResult>) -> Self {
        CachedPartial {
            deltas: vec![result],
            total_phases: 1,
        }
    }

    /// A phase-prefix entry over an `N = total_phases` partition.
    pub fn prefix(deltas: Vec<Arc<GroupedResult>>, total_phases: usize) -> Self {
        debug_assert!(deltas.len() <= total_phases);
        CachedPartial {
            deltas,
            total_phases,
        }
    }

    /// Phases covered by this entry.
    pub fn phases_done(&self) -> usize {
        self.deltas.len()
    }

    /// The entry's exactness tag.
    pub fn exactness(&self) -> Exactness {
        if self.is_exact() {
            Exactness::Exact
        } else {
            Exactness::Prefix {
                phases_done: self.phases_done(),
                total_phases: self.total_phases,
            }
        }
    }

    /// Whether the entry covers the whole table.
    pub fn is_exact(&self) -> bool {
        !self.deltas.is_empty() && self.deltas.len() == self.total_phases
    }

    /// The full-table combined result, when this entry is a single-delta
    /// exact entry (the shape the pruning-free path stores and loads).
    pub fn as_exact_result(&self) -> Option<&Arc<GroupedResult>> {
        if self.is_exact() && self.deltas.len() == 1 {
            Some(&self.deltas[0])
        } else {
            None
        }
    }
}

/// A store of per-view [`CachedPartial`]s keyed by canonical signature
/// strings.
///
/// Implementations must return values bit-identical to what was `put`
/// (share the `Arc`, don't re-derive) — the cached-recommendation path
/// relies on exact round-trips for its bit-identity guarantee.
pub trait ViewCache: Sync {
    /// Looks up the partial cached under `key`, if any.
    fn get(&self, key: &str) -> Option<Arc<CachedPartial>>;
    /// Stores `value` under `key`.
    fn put(&self, key: &str, value: Arc<CachedPartial>);
}

/// How a cached recommendation run used the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheUse {
    /// Whether the configuration was eligible for per-view reuse at all.
    /// Ineligible (bypassed) runs execute exactly like
    /// [`SeeDb::recommend`](crate::SeeDb::recommend).
    pub eligible: bool,
    /// Views answered entirely from the cache (no scan).
    pub hits: usize,
    /// Views computed from scratch (and then cached).
    pub misses: usize,
    /// Views that replayed a cached phase prefix and resumed scanning at
    /// `phases_done` instead of row 0 (pruned configurations only).
    pub resumed: usize,
}

impl CacheUse {
    /// A run that bypassed the cache entirely.
    pub fn ineligible() -> Self {
        CacheUse::default()
    }

    /// True when every view came from the cache (the request touched no
    /// table data at all).
    pub fn fully_cached(&self) -> bool {
        self.eligible && self.misses == 0 && self.resumed == 0 && self.hits > 0
    }
}

/// Unbounded thread-safe in-memory [`ViewCache`] — the reference
/// implementation for tests and simple embeddings.
pub struct MemoryViewCache {
    map: PLock<HashMap<String, Arc<CachedPartial>>>,
}

impl Default for MemoryViewCache {
    fn default() -> Self {
        MemoryViewCache {
            map: PLock::new("core.view_cache", HashMap::new()),
        }
    }
}

impl MemoryViewCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ViewCache for MemoryViewCache {
    fn get(&self, key: &str) -> Option<Arc<CachedPartial>> {
        self.map.lock().get(key).cloned()
    }

    fn put(&self, key: &str, value: Arc<CachedPartial>) {
        self.map.lock().insert(key.to_owned(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedb_engine::AggSpec;

    fn result() -> Arc<GroupedResult> {
        Arc::new(GroupedResult {
            group_by: vec![seedb_storage::ColumnId(0)],
            aggregates: vec![AggSpec::new(
                seedb_engine::AggFunc::Avg,
                seedb_storage::ColumnId(1),
            )],
            groups: Vec::new(),
        })
    }

    #[test]
    fn memory_cache_round_trips_shared_arcs() {
        let cache = MemoryViewCache::new();
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
        let v = Arc::new(CachedPartial::exact(result()));
        cache.put("a", v.clone());
        let got = cache.get("a").expect("present");
        assert!(Arc::ptr_eq(&v, &got), "must share, not copy");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn exactness_tags_follow_coverage() {
        let exact = CachedPartial::exact(result());
        assert!(exact.is_exact());
        assert_eq!(exact.exactness(), Exactness::Exact);
        assert!(exact.as_exact_result().is_some());
        assert_eq!(exact.phases_done(), 1);

        let prefix = CachedPartial::prefix(vec![result(), result()], 5);
        assert!(!prefix.is_exact());
        assert_eq!(
            prefix.exactness(),
            Exactness::Prefix {
                phases_done: 2,
                total_phases: 5
            }
        );
        assert!(prefix.as_exact_result().is_none());

        // A prefix covering every phase is exact, but multi-delta exact
        // entries are not the single-result shape the unphased path loads.
        let full = CachedPartial::prefix(vec![result(), result()], 2);
        assert!(full.is_exact());
        assert_eq!(full.exactness(), Exactness::Exact);
        assert!(full.as_exact_result().is_none());
    }

    #[test]
    fn cache_use_flags() {
        assert!(!CacheUse::ineligible().eligible);
        let full = CacheUse {
            eligible: true,
            hits: 3,
            misses: 0,
            resumed: 0,
        };
        assert!(full.fully_cached());
        let partial = CacheUse {
            eligible: true,
            hits: 3,
            misses: 1,
            resumed: 0,
        };
        assert!(!partial.fully_cached());
        let resumed = CacheUse {
            eligible: true,
            hits: 3,
            misses: 0,
            resumed: 1,
        };
        assert!(!resumed.fully_cached(), "a resumed view still scanned");
    }
}
