//! Cross-request reuse hook: a cache of exact per-view aggregates.
//!
//! SeeDB's intra-query sharing (§4.1) reuses scans *within* one
//! recommendation run; a serving layer wants the cross-request twin of
//! that idea — when an analyst re-issues an overlapping query (same
//! target, different `k` or metric; or a repeat of the same query), the
//! per-view aggregates are already known and the scan can be skipped
//! entirely.
//!
//! [`ViewCache`] is the hook the engine calls through:
//! [`SeeDb::recommend_cached`](crate::SeeDb::recommend_cached) probes it
//! per view with a canonical key (see [`crate::signature`]) and fills it
//! with exact full-table combined results. The trait is deliberately
//! tiny so serving layers can back it with any eviction policy (the
//! `seedb-server` crate uses a memory-budgeted LRU); [`MemoryViewCache`]
//! is an unbounded reference implementation for tests and embedding.

use seedb_engine::GroupedResult;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A store of exact full-table per-view combined (target + reference)
/// aggregation results, keyed by canonical signature strings.
///
/// Implementations must return values bit-identical to what was `put`
/// (share the `Arc`, don't re-derive) — the cached-recommendation path
/// relies on exact round-trips for its bit-identity guarantee.
pub trait ViewCache: Sync {
    /// Looks up the result cached under `key`, if any.
    fn get(&self, key: &str) -> Option<Arc<GroupedResult>>;
    /// Stores `value` under `key`.
    fn put(&self, key: &str, value: Arc<GroupedResult>);
}

/// How a cached recommendation run used the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheUse {
    /// Whether the configuration was eligible for per-view reuse at all
    /// (see [`crate::SeeDbConfig::exact_per_view`]). Ineligible runs
    /// execute exactly like [`SeeDb::recommend`](crate::SeeDb::recommend).
    pub eligible: bool,
    /// Views answered from the cache (no scan).
    pub hits: usize,
    /// Views computed by executing queries (and then cached).
    pub misses: usize,
}

impl CacheUse {
    /// A run that bypassed the cache entirely.
    pub fn ineligible() -> Self {
        CacheUse::default()
    }

    /// True when every view came from the cache (the request touched no
    /// table data at all).
    pub fn fully_cached(&self) -> bool {
        self.eligible && self.misses == 0 && self.hits > 0
    }
}

/// Unbounded thread-safe in-memory [`ViewCache`] — the reference
/// implementation for tests and simple embeddings.
#[derive(Default)]
pub struct MemoryViewCache {
    map: Mutex<HashMap<String, Arc<GroupedResult>>>,
}

impl MemoryViewCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ViewCache for MemoryViewCache {
    fn get(&self, key: &str) -> Option<Arc<GroupedResult>> {
        self.map
            .lock()
            .expect("cache lock poisoned")
            .get(key)
            .cloned()
    }

    fn put(&self, key: &str, value: Arc<GroupedResult>) {
        self.map
            .lock()
            .expect("cache lock poisoned")
            .insert(key.to_owned(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedb_engine::AggSpec;

    fn result() -> Arc<GroupedResult> {
        Arc::new(GroupedResult {
            group_by: vec![seedb_storage::ColumnId(0)],
            aggregates: vec![AggSpec::new(
                seedb_engine::AggFunc::Avg,
                seedb_storage::ColumnId(1),
            )],
            groups: Vec::new(),
        })
    }

    #[test]
    fn memory_cache_round_trips_shared_arcs() {
        let cache = MemoryViewCache::new();
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
        let v = result();
        cache.put("a", v.clone());
        let got = cache.get("a").expect("present");
        assert!(Arc::ptr_eq(&v, &got), "must share, not copy");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_use_flags() {
        assert!(!CacheUse::ineligible().eligible);
        let full = CacheUse {
            eligible: true,
            hits: 3,
            misses: 0,
        };
        assert!(full.fully_cached());
        let partial = CacheUse {
            eligible: true,
            hits: 3,
            misses: 1,
        };
        assert!(!partial.fully_cached());
    }
}
