//! Canonical result signatures for cross-request caching.
//!
//! A serving layer in front of the engine wants to reuse work across
//! requests: two requests that are guaranteed to produce the same
//! [`Recommendation`](crate::Recommendation) (or the same per-view
//! aggregates) should map to the same cache key, and requests that can
//! differ must never collide. The functions here define that key space:
//!
//! * [`predicate_signature`] — a canonical rendering of a
//!   [`Predicate`]: commutative children of `AND`/`OR` are flattened,
//!   sorted and deduplicated, `IN` code lists are sorted, and float
//!   comparisons render their exact bit pattern. Equivalent spellings
//!   like `a = 1 AND b = 2` vs `b = 2 AND a = 1` normalize to one key.
//! * [`reference_signature`] — the same for a [`ReferenceSpec`].
//! * [`ViewSpec::signature`] — identifies a view `(a, m, f)` independent
//!   of its enumeration id. Per-view cache keys compose
//!   `predicate|reference|view`; pruned runs append a `|phN` suffix (the
//!   effective phase count, [`crate::phase::effective_phases`]) because
//!   their phase-prefix entries are only replayable under the same
//!   partition granularity (see [`crate::cache`]).
//! * [`SeeDbConfig::result_signature`] — exactly the configuration knobs
//!   that can change the *content* of a recommendation. Knobs that are
//!   bit-identical by engine contract (`engine_mode`, every sharing knob,
//!   `parallelism`, `morsel_rows`) are deliberately excluded so requests
//!   differing only in execution shape share cache entries.
//!
//! Signatures are conservative: semantically equal inputs *may* still get
//! different signatures (costing only a cache miss), but inputs that can
//! produce different results always get different signatures.

use crate::config::{ExecutionStrategy, PruningKind, SeeDbConfig};
use crate::reference::ReferenceSpec;
use crate::view::ViewSpec;
use seedb_engine::Predicate;

/// Canonical signature of a predicate (see module docs).
pub fn predicate_signature(p: &Predicate) -> String {
    render(&canonicalize(p))
}

/// Canonical identity of a built-in (seeded synthetic) dataset instance:
/// name, row count, and generator seed. Two instances with the same
/// signature hold identical rows, so serving-layer caches may share
/// entries across them.
pub fn instance_signature(name: &str, rows: usize, seed: u64) -> String {
    format!("{name}@{rows}#s{seed}")
}

/// Canonical identity of an *ingested* dataset instance: name, row count,
/// and a fingerprint of the raw bytes it was loaded from. The fingerprint
/// keys the content (not a generator), so re-ingesting different data
/// under the same name can never alias a stale cache entry; the `#f`
/// namespace keeps ingested instances disjoint from seeded ones.
pub fn ingested_instance_signature(name: &str, rows: usize, fingerprint: u64) -> String {
    format!("{name}@{rows}#f{fingerprint:016x}")
}

/// Canonical signature of a reference specification.
pub fn reference_signature(r: &ReferenceSpec) -> String {
    match r {
        ReferenceSpec::WholeTable => "whole".to_owned(),
        ReferenceSpec::Complement => "compl".to_owned(),
        ReferenceSpec::Query(q) => format!("query:{}", predicate_signature(q)),
    }
}

/// Structurally canonical form: `AND`/`OR` flattened, sorted by rendered
/// child, deduplicated, singletons collapsed; `IN` code lists sorted.
fn canonicalize(p: &Predicate) -> Predicate {
    match p {
        Predicate::And(parts) => rebuild_commutative(parts, true),
        Predicate::Or(parts) => rebuild_commutative(parts, false),
        Predicate::Not(inner) => Predicate::Not(Box::new(canonicalize(inner))),
        Predicate::CatIn { col, codes } => {
            let mut codes = codes.clone();
            codes.sort_unstable();
            codes.dedup();
            Predicate::CatIn { col: *col, codes }
        }
        other => other.clone(),
    }
}

/// Flattens same-kind children, canonicalizes each, sorts by rendering,
/// dedups, and collapses the degenerate arities (`AND []` selects
/// everything, `OR []` nothing).
fn rebuild_commutative(parts: &[Predicate], is_and: bool) -> Predicate {
    let mut flat = Vec::new();
    for part in parts {
        let c = canonicalize(part);
        match (is_and, c) {
            (true, Predicate::And(inner)) => flat.extend(inner),
            (false, Predicate::Or(inner)) => flat.extend(inner),
            (_, other) => flat.push(other),
        }
    }
    let mut rendered: Vec<(String, Predicate)> =
        flat.into_iter().map(|c| (render(&c), c)).collect();
    rendered.sort_by(|a, b| a.0.cmp(&b.0));
    rendered.dedup_by(|a, b| a.0 == b.0);
    let mut children: Vec<Predicate> = rendered.into_iter().map(|(_, c)| c).collect();
    match children.len() {
        0 => {
            if is_and {
                Predicate::True
            } else {
                Predicate::False
            }
        }
        1 => children.swap_remove(0),
        _ => {
            if is_and {
                Predicate::And(children)
            } else {
                Predicate::Or(children)
            }
        }
    }
}

/// Renders a canonical predicate to its signature string. Float values
/// render as exact bit patterns so `0.1 + 0.2` and `0.3` never alias.
fn render(p: &Predicate) -> String {
    match p {
        Predicate::True => "T".to_owned(),
        Predicate::False => "F".to_owned(),
        Predicate::CatEq { col, code } => format!("ce:{}:{}", col.0, code),
        Predicate::CatIn { col, codes } => {
            let list: Vec<String> = codes.iter().map(|c| c.to_string()).collect();
            format!("ci:{}:[{}]", col.0, list.join(","))
        }
        Predicate::BoolEq { col, value } => format!("be:{}:{}", col.0, value),
        Predicate::NumCmp { col, op, value } => {
            format!("nc:{}:{}:{:016x}", col.0, op.sql(), value.to_bits())
        }
        Predicate::IsNull { col } => format!("nul:{}", col.0),
        Predicate::And(parts) => {
            let list: Vec<String> = parts.iter().map(render).collect();
            format!("and({})", list.join("&"))
        }
        Predicate::Or(parts) => {
            let list: Vec<String> = parts.iter().map(render).collect();
            format!("or({})", list.join("|"))
        }
        Predicate::Not(inner) => format!("not({})", render(inner)),
    }
}

impl ViewSpec {
    /// Identity of the view independent of its enumeration position:
    /// dimension column, measure column, aggregate function.
    pub fn signature(&self) -> String {
        format!("v:{}:{}:{}", self.dim.0, self.measure.0, self.func)
    }
}

impl SeeDbConfig {
    /// Canonical signature of every knob that can change the *content* of
    /// a [`Recommendation`](crate::Recommendation) (ranked views, their
    /// utilities, distributions).
    ///
    /// Included: `k`, `metric`, `agg_functions` (order matters — it fixes
    /// view ids), `strategy`, and — only for the pruning strategies, where
    /// they actually influence results — `pruning`, `num_phases`, `delta`,
    /// and (for `RANDOM` pruning) `seed`. Excluded: `engine_mode` and all
    /// of `sharing`, which are bit-identical by engine contract, so
    /// requests differing only in execution shape share one signature.
    pub fn result_signature(&self) -> String {
        let funcs: Vec<&str> = self.agg_functions.iter().map(|f| f.name()).collect();
        let mut sig = format!(
            "k{}|{}|f[{}]|{}",
            self.k,
            self.metric.name(),
            funcs.join(","),
            self.strategy.label(),
        );
        if matches!(
            self.strategy,
            ExecutionStrategy::Comb | ExecutionStrategy::CombEarly
        ) {
            sig.push_str(&format!(
                "|{}|p{}|d{:016x}",
                self.pruning.label(),
                self.num_phases,
                self.delta.to_bits()
            ));
            if self.pruning == PruningKind::Random {
                sig.push_str(&format!("|s{}", self.seed));
            }
        }
        sig
    }

    /// Whether a run under this configuration computes **exact full-table
    /// results for every view** — the precondition for caching per-view
    /// aggregates and reusing them across requests bit-identically.
    ///
    /// True for the pruning-free configurations: `NO_OPT`, `SHARING`, and
    /// `COMB` with `NO_PRU` (phased accumulation is exact, so running all
    /// phases with no discards equals a single full scan bit-for-bit).
    /// False whenever pruning can leave a view with partial data, and for
    /// `COMB_EARLY`, which may stop before scanning everything.
    pub fn exact_per_view(&self) -> bool {
        match self.strategy {
            ExecutionStrategy::NoOpt | ExecutionStrategy::Sharing => true,
            ExecutionStrategy::Comb => self.pruning == PruningKind::None,
            ExecutionStrategy::CombEarly => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedb_engine::{CmpOp, Predicate as P};
    use seedb_storage::ColumnId;

    fn num(col: u32, value: f64) -> P {
        P::NumCmp {
            col: ColumnId(col),
            op: CmpOp::Eq,
            value,
        }
    }

    #[test]
    fn commutative_spellings_share_a_signature() {
        let a = P::And(vec![num(0, 1.0), num(1, 2.0)]);
        let b = P::And(vec![num(1, 2.0), num(0, 1.0)]);
        assert_eq!(predicate_signature(&a), predicate_signature(&b));
        // Nested same-kind conjunctions flatten.
        let c = P::And(vec![P::And(vec![num(0, 1.0)]), num(1, 2.0)]);
        assert_eq!(predicate_signature(&a), predicate_signature(&c));
        // Duplicate conjuncts collapse.
        let d = P::And(vec![num(0, 1.0), num(0, 1.0), num(1, 2.0)]);
        assert_eq!(predicate_signature(&a), predicate_signature(&d));
    }

    #[test]
    fn different_predicates_do_not_collide() {
        let preds = [
            P::True,
            P::False,
            num(0, 1.0),
            num(0, 2.0),
            num(1, 1.0),
            P::NumCmp {
                col: ColumnId(0),
                op: CmpOp::Lt,
                value: 1.0,
            },
            P::CatEq {
                col: ColumnId(0),
                code: 1,
            },
            P::CatIn {
                col: ColumnId(0),
                codes: vec![1, 2],
            },
            P::BoolEq {
                col: ColumnId(0),
                value: true,
            },
            P::IsNull { col: ColumnId(0) },
            P::Not(Box::new(num(0, 1.0))),
            P::And(vec![num(0, 1.0), num(1, 2.0)]),
            P::Or(vec![num(0, 1.0), num(1, 2.0)]),
        ];
        let sigs: Vec<String> = preds.iter().map(predicate_signature).collect();
        let mut unique = sigs.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), sigs.len(), "collision in {sigs:?}");
    }

    #[test]
    fn and_or_arity_edge_cases() {
        assert_eq!(predicate_signature(&P::And(vec![])), "T");
        assert_eq!(predicate_signature(&P::Or(vec![])), "F");
        assert_eq!(
            predicate_signature(&P::Or(vec![num(0, 1.0)])),
            predicate_signature(&num(0, 1.0))
        );
    }

    #[test]
    fn float_bits_distinguish_close_values() {
        let a = num(0, 0.1 + 0.2);
        let b = num(0, 0.3);
        assert_ne!(predicate_signature(&a), predicate_signature(&b));
    }

    #[test]
    fn in_list_order_is_canonical() {
        let a = P::CatIn {
            col: ColumnId(2),
            codes: vec![3, 1, 2, 1],
        };
        let b = P::CatIn {
            col: ColumnId(2),
            codes: vec![1, 2, 3],
        };
        assert_eq!(predicate_signature(&a), predicate_signature(&b));
    }

    #[test]
    fn instance_signatures_never_alias_across_namespaces() {
        assert_eq!(instance_signature("census", 1000, 42), "census@1000#s42");
        assert_eq!(
            ingested_instance_signature("census", 1000, 0xABCD),
            "census@1000#f000000000000abcd"
        );
        // Same name and rows, seeded vs ingested: distinct key spaces.
        assert_ne!(
            instance_signature("d", 10, 7),
            ingested_instance_signature("d", 10, 7)
        );
        // Different content under the same name re-keys the instance.
        assert_ne!(
            ingested_instance_signature("d", 10, 1),
            ingested_instance_signature("d", 10, 2)
        );
    }

    #[test]
    fn reference_signatures_distinguish_kinds() {
        let q = ReferenceSpec::Query(num(0, 1.0));
        let sigs = [
            reference_signature(&ReferenceSpec::WholeTable),
            reference_signature(&ReferenceSpec::Complement),
            reference_signature(&q),
        ];
        assert_ne!(sigs[0], sigs[1]);
        assert_ne!(sigs[1], sigs[2]);
        assert_ne!(sigs[0], sigs[2]);
    }

    #[test]
    fn config_signature_tracks_result_affecting_knobs_only() {
        let base = SeeDbConfig::for_strategy(ExecutionStrategy::Sharing);
        let mut same = base.clone();
        same.engine_mode = seedb_engine::ExecMode::Scalar;
        same.sharing.parallelism = crate::Knob::Fixed(7);
        same.sharing.morsel_rows = crate::Knob::Fixed(13);
        assert_eq!(base.result_signature(), same.result_signature());
        // Pruning knobs are irrelevant for SHARING…
        let mut pruning_changed = base.clone();
        pruning_changed.pruning = PruningKind::Mab;
        pruning_changed.num_phases = 3;
        assert_eq!(base.result_signature(), pruning_changed.result_signature());
        // …but k / metric / strategy always matter.
        let mut k_changed = base.clone();
        k_changed.k = 3;
        assert_ne!(base.result_signature(), k_changed.result_signature());
        let mut metric_changed = base.clone();
        metric_changed.metric = seedb_metrics::DistanceKind::L1;
        assert_ne!(base.result_signature(), metric_changed.result_signature());
        // And for COMB they do matter.
        let comb = SeeDbConfig::for_strategy(ExecutionStrategy::Comb);
        let mut delta_changed = comb.clone();
        delta_changed.delta = 0.01;
        assert_ne!(comb.result_signature(), delta_changed.result_signature());
        let mut phases_changed = comb.clone();
        phases_changed.num_phases = 4;
        assert_ne!(comb.result_signature(), phases_changed.result_signature());
        // Probabilistic results never cross-contaminate deterministic
        // ones: the pruning kind is part of the response signature.
        let mut pruning_kind_changed = comb.clone();
        pruning_kind_changed.pruning = PruningKind::None;
        assert_ne!(
            comb.result_signature(),
            pruning_kind_changed.result_signature()
        );
        let mut mab = comb.clone();
        mab.pruning = PruningKind::Mab;
        assert_ne!(comb.result_signature(), mab.result_signature());
    }

    #[test]
    fn exact_per_view_matches_pruning_semantics() {
        assert!(SeeDbConfig::for_strategy(ExecutionStrategy::NoOpt).exact_per_view());
        assert!(SeeDbConfig::for_strategy(ExecutionStrategy::Sharing).exact_per_view());
        let mut comb = SeeDbConfig::for_strategy(ExecutionStrategy::Comb);
        assert!(!comb.exact_per_view()); // default pruning is CI
        comb.pruning = PruningKind::None;
        assert!(comb.exact_per_view());
        let mut early = SeeDbConfig::for_strategy(ExecutionStrategy::CombEarly);
        early.pruning = PruningKind::None;
        assert!(!early.exact_per_view());
    }

    #[test]
    fn view_signature_ignores_enumeration_id() {
        use seedb_engine::AggFunc;
        let a = ViewSpec {
            id: 0,
            dim: ColumnId(1),
            measure: ColumnId(2),
            func: AggFunc::Avg,
        };
        let b = ViewSpec { id: 9, ..a };
        assert_eq!(a.signature(), b.signature());
        let c = ViewSpec {
            func: AggFunc::Sum,
            ..a
        };
        assert_ne!(a.signature(), c.signature());
    }
}
