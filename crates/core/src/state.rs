//! Per-view accumulated state across phases.
//!
//! The phased framework executes *shared* queries per phase and folds each
//! phase's partial results into one [`ViewState`] per view. The state holds
//! mergeable accumulators per group and side (target/reference), so
//! utilities can be (re-)estimated after every phase — the quantity the
//! pruning schemes consume.

use crate::view::ViewSpec;
use seedb_engine::{Accumulator, AggSpec, GroupEntry, GroupKey, GroupedResult};
use seedb_metrics::{normalize, DistanceKind};
use std::collections::BTreeMap;

/// Which side of the deviation comparison a partial result feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The target view (over `D_Q`).
    Target,
    /// The reference view (over `D_R`).
    Reference,
}

/// Target/reference accumulator pair for one group.
#[derive(Debug, Clone, Default)]
struct SidePair {
    target: Accumulator,
    reference: Accumulator,
}

/// Accumulated state of one view across phases.
#[derive(Debug, Clone)]
pub struct ViewState {
    /// The view this state belongs to.
    pub spec: ViewSpec,
    /// Per-group accumulators, keyed (and ordered) by group key.
    groups: BTreeMap<GroupKey, SidePair>,
    /// Still under consideration (not pruned)?
    pub alive: bool,
    /// Accepted into the top-k (MAB accept / CI early-accept)?
    pub accepted: bool,
    /// Per-phase utility estimates (cumulative-data estimate after each
    /// phase) — the `Y_i` sequence the CI pruner bounds.
    pub estimates: Vec<f64>,
    /// Phase index (0-based) at which the view was pruned, if any.
    pub pruned_at_phase: Option<usize>,
}

impl ViewState {
    /// Fresh state for `spec`.
    pub fn new(spec: ViewSpec) -> Self {
        ViewState {
            spec,
            groups: BTreeMap::new(),
            alive: true,
            accepted: false,
            estimates: Vec::new(),
            pruned_at_phase: None,
        }
    }

    /// Folds a combined (target+reference) result into this view.
    /// `agg_idx` selects this view's aggregate within the shared result.
    pub fn merge_both(&mut self, result: &GroupedResult, agg_idx: usize) {
        for entry in &result.groups {
            let pair = self.groups.entry(entry.key.clone()).or_default();
            pair.target.merge(&entry.target[agg_idx]);
            pair.reference.merge(&entry.reference[agg_idx]);
        }
    }

    /// Folds a single-sided result (from a separate target-only or
    /// reference-only query, as the unoptimized baseline issues) into the
    /// given side. The source values are read from the result's *target*
    /// accumulators, because a `TargetOnly` split accumulates there.
    pub fn merge_into_side(&mut self, result: &GroupedResult, agg_idx: usize, side: Side) {
        for entry in &result.groups {
            let pair = self.groups.entry(entry.key.clone()).or_default();
            match side {
                Side::Target => pair.target.merge(&entry.target[agg_idx]),
                Side::Reference => pair.reference.merge(&entry.target[agg_idx]),
            }
        }
    }

    /// Exports the accumulated state as a combined (target + reference)
    /// [`GroupedResult`] for this view's single dimension and aggregate —
    /// the shape [`ViewState::merge_both`] re-imports losslessly.
    /// Accumulator merges are exact, so `export → merge_both` into a fresh
    /// state reproduces this state's value vectors bit-for-bit; this is
    /// what makes per-view results safe to cache across requests.
    pub fn to_combined_result(&self) -> GroupedResult {
        GroupedResult {
            group_by: vec![self.spec.dim],
            aggregates: vec![AggSpec::new(self.spec.func, self.spec.measure)],
            groups: self
                .groups
                .iter()
                .map(|(key, pair)| GroupEntry {
                    key: key.clone(),
                    target: vec![pair.target.clone()],
                    reference: vec![pair.reference.clone()],
                })
                .collect(),
        }
    }

    /// Number of groups observed so far.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Aligned raw value vectors `(target, reference)` over the union of
    /// observed groups, in key order.
    pub fn value_vectors(&self) -> (Vec<f64>, Vec<f64>) {
        let func = self.spec.func;
        let mut t = Vec::with_capacity(self.groups.len());
        let mut r = Vec::with_capacity(self.groups.len());
        for pair in self.groups.values() {
            t.push(pair.target.finish(func).unwrap_or(0.0));
            r.push(pair.reference.finish(func).unwrap_or(0.0));
        }
        (t, r)
    }

    /// Group keys in the same order as [`ViewState::value_vectors`].
    pub fn group_keys(&self) -> Vec<GroupKey> {
        self.groups.keys().cloned().collect()
    }

    /// Current deviation-based utility under `metric`: distance between the
    /// normalized target and reference distributions. A view with no groups
    /// yet has utility 0.
    pub fn utility(&self, metric: DistanceKind) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        let (t, r) = self.value_vectors();
        metric.compute(&normalize(&t), &normalize(&r))
    }

    /// Records the post-phase utility estimate (feeds the pruners).
    pub fn record_estimate(&mut self, metric: DistanceKind) -> f64 {
        let u = self.utility(metric);
        self.estimates.push(u);
        u
    }

    /// Mean of the recorded per-phase estimates (the running mean the
    /// Hoeffding–Serfling interval brackets). Falls back to the current
    /// utility if no estimate has been recorded.
    pub fn estimate_mean(&self) -> f64 {
        if self.estimates.is_empty() {
            0.0
        } else {
            self.estimates.iter().sum::<f64>() / self.estimates.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedb_engine::{
        execute_combined, AggFunc, AggSpec, CombinedQuery, ExecStats, Predicate, SplitSpec,
    };
    use seedb_storage::{BoxedTable, ColumnDef, ColumnId, StoreKind, TableBuilder, Value};

    fn spec() -> ViewSpec {
        ViewSpec {
            id: 0,
            dim: ColumnId(0),
            measure: ColumnId(1),
            func: AggFunc::Avg,
        }
    }

    fn table() -> BoxedTable {
        let mut b = TableBuilder::new(vec![ColumnDef::dim("d"), ColumnDef::measure("m")]);
        for (d, m) in [("a", 10.0), ("a", 20.0), ("b", 30.0), ("b", 50.0)] {
            b.push_row(&[Value::str(d), Value::Float(m)]).unwrap();
        }
        b.build(StoreKind::Column).unwrap()
    }

    fn run(split: SplitSpec) -> GroupedResult {
        execute_combined(
            table().as_ref(),
            &CombinedQuery::single(ColumnId(0), AggSpec::new(AggFunc::Avg, ColumnId(1)), split),
            &mut ExecStats::new(),
        )
    }

    #[test]
    fn merge_both_accumulates_target_and_reference() {
        let t = table();
        let pred = Predicate::col_eq_str(t.as_ref(), "d", "a");
        let result = run(SplitSpec::TargetVsAll(pred));
        let mut state = ViewState::new(spec());
        state.merge_both(&result, 0);
        let (tv, rv) = state.value_vectors();
        assert_eq!(tv, vec![15.0, 0.0]); // target only has "a" rows
        assert_eq!(rv, vec![15.0, 40.0]); // reference = everything
    }

    #[test]
    fn merge_into_side_routes_single_sided_results() {
        let t = table();
        let target_pred = Predicate::col_eq_str(t.as_ref(), "d", "a");
        let t_result = run(SplitSpec::TargetOnly(target_pred.clone()));
        let r_result = run(SplitSpec::TargetOnly(Predicate::True));
        let mut state = ViewState::new(spec());
        state.merge_into_side(&t_result, 0, Side::Target);
        state.merge_into_side(&r_result, 0, Side::Reference);

        // Must equal the combined-split execution.
        let mut combined = ViewState::new(spec());
        combined.merge_both(&run(SplitSpec::TargetVsAll(target_pred)), 0);
        assert_eq!(state.value_vectors(), combined.value_vectors());
    }

    #[test]
    fn utility_zero_when_target_equals_reference() {
        let result = run(SplitSpec::TargetVsAll(Predicate::True));
        let mut state = ViewState::new(spec());
        state.merge_both(&result, 0);
        assert!(state.utility(DistanceKind::Emd).abs() < 1e-12);
    }

    #[test]
    fn utility_positive_on_deviation() {
        let t = table();
        let pred = Predicate::col_eq_str(t.as_ref(), "d", "a");
        let result = run(SplitSpec::TargetVsAll(pred));
        let mut state = ViewState::new(spec());
        state.merge_both(&result, 0);
        assert!(state.utility(DistanceKind::Emd) > 0.1);
    }

    #[test]
    fn empty_state_has_zero_utility() {
        let state = ViewState::new(spec());
        assert_eq!(state.utility(DistanceKind::Emd), 0.0);
        assert_eq!(state.estimate_mean(), 0.0);
        assert_eq!(state.num_groups(), 0);
    }

    #[test]
    fn estimates_accumulate_and_average() {
        let t = table();
        let pred = Predicate::col_eq_str(t.as_ref(), "d", "a");
        let result = run(SplitSpec::TargetVsAll(pred));
        let mut state = ViewState::new(spec());
        state.merge_both(&result, 0);
        let u1 = state.record_estimate(DistanceKind::Emd);
        let u2 = state.record_estimate(DistanceKind::Emd);
        assert_eq!(u1, u2);
        assert_eq!(state.estimates.len(), 2);
        assert!((state.estimate_mean() - u1).abs() < 1e-12);
    }

    #[test]
    fn export_reimport_round_trips_bit_for_bit() {
        let t = table();
        let pred = Predicate::col_eq_str(t.as_ref(), "d", "a");
        let result = run(SplitSpec::TargetVsAll(pred));
        let mut state = ViewState::new(spec());
        state.merge_both(&result, 0);

        let exported = state.to_combined_result();
        assert_eq!(exported.group_by, vec![ColumnId(0)]);
        assert_eq!(exported.aggregates.len(), 1);

        let mut reimported = ViewState::new(spec());
        reimported.merge_both(&exported, 0);
        assert_eq!(state.value_vectors(), reimported.value_vectors());
        assert_eq!(state.group_keys(), reimported.group_keys());
        assert_eq!(
            state.utility(DistanceKind::Emd).to_bits(),
            reimported.utility(DistanceKind::Emd).to_bits()
        );
    }

    #[test]
    fn group_keys_align_with_vectors() {
        let result = run(SplitSpec::TargetVsAll(Predicate::True));
        let mut state = ViewState::new(spec());
        state.merge_both(&result, 0);
        assert_eq!(state.group_keys().len(), state.value_vectors().0.len());
    }
}
