//! Cost-based physical planning.
//!
//! A [`PhysicalPlan`] is derived once per run, *before* the worker pool is
//! created, from three inputs:
//!
//! 1. **Table statistics** ([`seedb_storage::TableStats`]) — exact row and
//!    distinct counts, zone-map summaries, dictionary sizes.
//! 2. **The query's contribution predicate** — the planner asks the zone
//!    maps which partitions can contribute rows
//!    ([`seedb_engine::estimate_scan`]) and sizes parallelism to the
//!    *post-pruning* row volume, not the raw table.
//! 3. **The configuration's knob overrides** — a
//!    [`Knob::Fixed`](crate::config::Knob) pins a shape dimension; `Auto`
//!    defers to the cost model in `seedb_engine::cost`.
//!
//! The invariant the whole suite leans on: a plan changes **how** we
//! execute — worker count, morsel size, group-index layout, cluster
//! packing — never **what** we compute. Every plannable shape is
//! bit-identical to the scalar serial oracle (accumulators merge exactly),
//! so the planner can be wrong about *cost* without ever being wrong about
//! *results*.

use crate::config::{GroupingPolicy, SeeDbConfig};
use crate::reference::ReferenceSpec;
use crate::view::ViewSpec;
use seedb_engine::{
    binpack, choose_morsel_rows, choose_workers, contribution_predicate, estimate_scan,
    group_index_for, CombinedQuery, ExecMode, GroupIndexKind, Predicate, ScanShape,
};
use seedb_storage::{ColumnId, Table};

/// The execution shape chosen for one run. See the module docs for how it
/// is derived; see [`PhysicalPlan::explain_json`] for the EXPLAIN wire
/// rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalPlan {
    /// Pool workers executing `(cluster, morsel)` work items; 1 = serial
    /// (no pool threads spawned at all).
    pub workers: usize,
    /// Whether `workers` came from the cost model (`true`) or a
    /// `Knob::Fixed` override (`false`).
    pub workers_auto: bool,
    /// Rows per morsel; `usize::MAX` = one morsel per surviving partition.
    pub morsel_rows: usize,
    /// Whether `morsel_rows` came from the cost model.
    pub morsel_auto: bool,
    /// How the engine walks the table (copied from the config — the scalar
    /// oracle is never planner-selected away).
    pub mode: ExecMode,
    /// Group-index kind for the widest planned cluster (the cost-dominant
    /// one). Scalar mode always aggregates through the hash path.
    pub index: GroupIndexKind,
    /// The planned phase-1 dimension clusters (every view alive). Later
    /// phases re-cluster over surviving views only, but phase 1 is the
    /// shape EXPLAIN reports and the one that dominates cost.
    pub clusters: Vec<Vec<ColumnId>>,
    /// Whether any planned cluster packs more than one dimension.
    pub packed: bool,
    /// Estimated rows the contribution predicate can touch (an upper
    /// bound: the row total of every partition the zone maps cannot rule
    /// out).
    pub estimated_rows: usize,
    /// Total storage partitions.
    pub partitions_total: usize,
    /// Partitions the zone maps prove irrelevant for this query.
    pub partitions_prunable: usize,
}

impl PhysicalPlan {
    /// Derives the plan for `config` over `table`, for a run answering
    /// `views` with the given target/reference selection.
    pub fn derive(
        table: &dyn Table,
        config: &SeeDbConfig,
        views: &[ViewSpec],
        target: &Predicate,
        reference: &ReferenceSpec,
    ) -> PhysicalPlan {
        // Post-pruning volume estimate: which partitions can contribute a
        // row to either side of the deviation computation?
        let probe = CombinedQuery {
            group_by: Vec::new(),
            aggregates: Vec::new(),
            filter: None,
            split: reference.to_split(target.clone()),
        };
        let contribution = contribution_predicate(&probe);
        let estimate = estimate_scan(table, &contribution);

        let sharing = &config.sharing;
        let host = seedb_engine::parallel::default_parallelism();
        let workers = sharing
            .parallelism
            .resolve(choose_workers(estimate.rows, host));
        let morsel_rows = sharing
            .morsel_rows
            .resolve(choose_morsel_rows(estimate.rows, workers));

        // Phase-1 clustering: unique dims in first-seen order, then the
        // same bin-packing decision `build_clusters` makes (exact
        // distinct-count products under the memory budget).
        let mut dims: Vec<ColumnId> = Vec::new();
        for v in views {
            if !dims.contains(&v.dim) {
                dims.push(v.dim);
            }
        }
        let clusters: Vec<Vec<ColumnId>> =
            if sharing.combine_aggregates && sharing.combine_group_bys && dims.len() > 1 {
                match sharing.grouping_policy {
                    GroupingPolicy::BinPack => {
                        let budget = sharing.effective_budget(table.kind());
                        binpack::first_fit(table, &dims, budget).bins
                    }
                    GroupingPolicy::MaxGb(n) => {
                        dims.chunks(n.max(1)).map(|chunk| chunk.to_vec()).collect()
                    }
                }
            } else {
                dims.iter().map(|&d| vec![d]).collect()
            };
        let packed = clusters.iter().any(|bin| bin.len() > 1);

        // Index kind for the widest cluster — the engine makes the same
        // call per cluster (`group_index_for`), so EXPLAIN cannot disagree
        // with execution. The scalar oracle always uses the hash path.
        let index = if config.engine_mode == ExecMode::Scalar {
            GroupIndexKind::Hash
        } else {
            clusters
                .iter()
                .max_by_key(|bin| bin.len())
                .map(|bin| group_index_for(table, bin))
                .unwrap_or(GroupIndexKind::Hash)
        };

        PhysicalPlan {
            workers,
            workers_auto: sharing.parallelism.fixed_value().is_none(),
            morsel_rows,
            morsel_auto: sharing.morsel_rows.fixed_value().is_none(),
            mode: config.engine_mode,
            index,
            clusters,
            packed,
            estimated_rows: estimate.rows,
            partitions_total: estimate.partitions_total,
            partitions_prunable: estimate.partitions_prunable,
        }
    }

    /// The engine-facing slice of the plan.
    pub fn scan_shape(&self) -> ScanShape {
        ScanShape::new(self.mode, self.morsel_rows)
    }

    /// `morsel_rows` rendered for humans/JSON (`usize::MAX` means "one
    /// morsel per surviving partition").
    fn morsel_label(&self) -> String {
        if self.morsel_rows == usize::MAX {
            "whole".to_owned()
        } else {
            self.morsel_rows.to_string()
        }
    }

    fn source(auto: bool) -> &'static str {
        if auto {
            "auto"
        } else {
            "fixed"
        }
    }

    /// One-line summary recorded into
    /// [`ExecStats::plan_summary`](seedb_engine::ExecStats).
    pub fn summary(&self) -> String {
        format!(
            "workers={}({}) morsel_rows={}({}) mode={} index={} clusters={}{} est_rows={} partitions={}/{} prunable",
            self.workers,
            Self::source(self.workers_auto),
            self.morsel_label(),
            Self::source(self.morsel_auto),
            self.mode.label(),
            self.index.label(),
            self.clusters.len(),
            if self.packed { " packed" } else { "" },
            self.estimated_rows,
            self.partitions_prunable,
            self.partitions_total,
        )
    }

    /// Compact JSON object for the `"explain": true` response envelope.
    pub fn explain_json(&self) -> String {
        format!(
            concat!(
                "{{\"workers\":{},\"workers_source\":\"{}\",",
                "\"morsel_rows\":\"{}\",\"morsel_source\":\"{}\",",
                "\"mode\":\"{}\",\"index\":\"{}\",",
                "\"clusters\":{},\"packed\":{},",
                "\"estimated_rows\":{},",
                "\"partitions_total\":{},\"partitions_prunable\":{}}}"
            ),
            self.workers,
            Self::source(self.workers_auto),
            self.morsel_label(),
            Self::source(self.morsel_auto),
            self.mode.label(),
            self.index.label(),
            self.clusters.len(),
            self.packed,
            self.estimated_rows,
            self.partitions_total,
            self.partitions_prunable,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExecutionStrategy, Knob};
    use crate::view::enumerate_views;
    use seedb_storage::{ColumnDef, StoreKind, TableBuilder, Value};

    fn table_with_partitions(rows: usize, partition_rows: usize) -> seedb_storage::BoxedTable {
        let mut b = TableBuilder::new(vec![ColumnDef::dim("d"), ColumnDef::measure("m")])
            .with_partition_rows(partition_rows);
        for i in 0..rows {
            b.push_row(&[Value::str(format!("g{}", i % 3)), Value::Float(i as f64)])
                .unwrap();
        }
        b.build(StoreKind::Column).unwrap()
    }

    #[test]
    fn fixed_knobs_override_the_cost_model() {
        let table = table_with_partitions(100, 25);
        let mut cfg = SeeDbConfig::default();
        cfg.sharing.parallelism = Knob::Fixed(3);
        cfg.sharing.morsel_rows = Knob::Fixed(7);
        let views = enumerate_views(table.as_ref(), &cfg.agg_functions);
        let plan = PhysicalPlan::derive(
            table.as_ref(),
            &cfg,
            &views,
            &Predicate::True,
            &ReferenceSpec::WholeTable,
        );
        assert_eq!(plan.workers, 3);
        assert!(!plan.workers_auto);
        assert_eq!(plan.morsel_rows, 7);
        assert!(!plan.morsel_auto);
        assert_eq!(plan.scan_shape().morsel_rows, 7);
    }

    #[test]
    fn auto_plan_is_serial_on_small_tables() {
        // 100 rows is far below PARALLEL_ROWS_MIN: the planner must not
        // spin up a pool regardless of host cores, and a serial run scans
        // whole partitions (morsel splitting buys nothing).
        let table = table_with_partitions(100, 25);
        let cfg = SeeDbConfig::default();
        let views = enumerate_views(table.as_ref(), &cfg.agg_functions);
        let plan = PhysicalPlan::derive(
            table.as_ref(),
            &cfg,
            &views,
            &Predicate::True,
            &ReferenceSpec::WholeTable,
        );
        assert_eq!(plan.workers, 1);
        assert!(plan.workers_auto);
        assert_eq!(plan.morsel_rows, usize::MAX);
        assert_eq!(plan.partitions_total, 4);
        assert_eq!(plan.estimated_rows, 100);
    }

    #[test]
    fn plan_counts_prunable_partitions_for_selective_targets() {
        // Partitions carry m ranges [0,25), [25,50), [50,75), [75,100).
        // A complement reference keeps the contribution predicate True for
        // the whole-table reference, so restrict via TargetVsQuery.
        let table = table_with_partitions(100, 25);
        let cfg = SeeDbConfig::default();
        let views = enumerate_views(table.as_ref(), &cfg.agg_functions);
        let col = table.schema().column_id("m").unwrap();
        let lo = Predicate::NumCmp {
            col,
            op: seedb_engine::CmpOp::Lt,
            value: 10.0,
        };
        let plan = PhysicalPlan::derive(
            table.as_ref(),
            &cfg,
            &views,
            &lo,
            &ReferenceSpec::Query(lo.clone()),
        );
        assert_eq!(plan.partitions_total, 4);
        assert_eq!(plan.partitions_prunable, 3);
        assert_eq!(plan.estimated_rows, 25);
    }

    #[test]
    fn plan_reports_cluster_packing_and_index_kind() {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("a"),
            ColumnDef::dim("b"),
            ColumnDef::measure("m"),
        ]);
        for i in 0..60usize {
            b.push_row(&[
                Value::str(format!("a{}", i % 4)),
                Value::str(format!("b{}", i % 5)),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        let table = b.build(StoreKind::Column).unwrap();
        let mut cfg = SeeDbConfig::default();
        cfg.sharing.memory_budget = Some(1_000_000);
        let views = enumerate_views(table.as_ref(), &cfg.agg_functions);
        let plan = PhysicalPlan::derive(
            table.as_ref(),
            &cfg,
            &views,
            &Predicate::True,
            &ReferenceSpec::WholeTable,
        );
        // Both dims fit one bin (4 × 5 « budget) and the composite domain
        // 5 × 6 = 30 is dense-indexable.
        assert_eq!(plan.clusters.len(), 1);
        assert!(plan.packed);
        assert_eq!(plan.index, GroupIndexKind::DenseComposite);

        // The scalar oracle never uses a dense index.
        cfg.engine_mode = ExecMode::Scalar;
        let scalar = PhysicalPlan::derive(
            table.as_ref(),
            &cfg,
            &views,
            &Predicate::True,
            &ReferenceSpec::WholeTable,
        );
        assert_eq!(scalar.index, GroupIndexKind::Hash);

        // NO_OPT never packs.
        let noopt_cfg = SeeDbConfig::for_strategy(ExecutionStrategy::NoOpt);
        let noopt = PhysicalPlan::derive(
            table.as_ref(),
            &noopt_cfg,
            &views,
            &Predicate::True,
            &ReferenceSpec::WholeTable,
        );
        assert_eq!(noopt.clusters.len(), 2);
        assert!(!noopt.packed);
        assert_eq!(noopt.workers, 1);
    }

    #[test]
    fn summary_and_json_render_the_choices() {
        let table = table_with_partitions(100, 25);
        let mut cfg = SeeDbConfig::default();
        cfg.sharing.parallelism = Knob::Fixed(2);
        let views = enumerate_views(table.as_ref(), &cfg.agg_functions);
        let plan = PhysicalPlan::derive(
            table.as_ref(),
            &cfg,
            &views,
            &Predicate::True,
            &ReferenceSpec::WholeTable,
        );
        let summary = plan.summary();
        assert!(summary.contains("workers=2(fixed)"), "{summary}");
        assert!(summary.contains("mode=VECTORIZED"), "{summary}");
        let json = plan.explain_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"workers\":2"), "{json}");
        assert!(json.contains("\"workers_source\":\"fixed\""), "{json}");
        assert!(json.contains("\"morsel_source\":\"auto\""), "{json}");
        assert!(json.contains("\"partitions_total\":4"), "{json}");
    }

    #[test]
    fn derivation_is_deterministic() {
        let table = table_with_partitions(100, 25);
        let cfg = SeeDbConfig::default();
        let views = enumerate_views(table.as_ref(), &cfg.agg_functions);
        let derive = || {
            PhysicalPlan::derive(
                table.as_ref(),
                &cfg,
                &views,
                &Predicate::True,
                &ReferenceSpec::WholeTable,
            )
        };
        assert_eq!(derive(), derive());
    }
}
