//! Error type for SeeDB recommendation runs.

use std::fmt;

/// Errors surfaced by the recommendation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The table declares no dimension attributes, so no view can be built.
    NoDimensions,
    /// The table declares no measure attributes.
    NoMeasures,
    /// The configuration requested zero aggregate functions.
    NoAggregateFunctions,
    /// `k` was zero.
    ZeroK,
    /// `num_phases` was zero.
    ZeroPhases,
    /// δ outside (0, 1).
    BadDelta(String),
    /// The run's deadline expired before it finished; no usable result
    /// was produced and nothing was cached.
    DeadlineExceeded,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoDimensions => {
                write!(f, "table has no dimension attributes; nothing to group by")
            }
            CoreError::NoMeasures => {
                write!(f, "table has no measure attributes; nothing to aggregate")
            }
            CoreError::NoAggregateFunctions => {
                write!(f, "config.agg_functions is empty")
            }
            CoreError::ZeroK => write!(f, "k must be at least 1"),
            CoreError::ZeroPhases => write!(f, "num_phases must be at least 1"),
            CoreError::BadDelta(d) => write!(f, "delta must be in (0, 1), got {d}"),
            CoreError::DeadlineExceeded => {
                write!(f, "deadline exceeded before the recommendation finished")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        assert!(CoreError::NoDimensions.to_string().contains("dimension"));
        assert!(CoreError::NoMeasures.to_string().contains("measure"));
        assert!(CoreError::ZeroK.to_string().contains("k"));
        assert!(CoreError::BadDelta("2".into()).to_string().contains("2"));
    }
}
