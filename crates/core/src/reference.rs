//! Reference dataset specification.
//!
//! §2: *"The reference dataset `D_R` may be defined as the entire underlying
//! dataset (D), the complement of `D_Q` (D − D_Q) or data selected by any
//! arbitrary query Q′."* The analyst may choose; `D_R = D` is the default.

use seedb_engine::{Predicate, SplitSpec};

/// How the reference dataset `D_R` is derived from the table.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ReferenceSpec {
    /// `D_R = D` — the entire table (paper default).
    #[default]
    WholeTable,
    /// `D_R = D − D_Q` — everything outside the target.
    Complement,
    /// `D_R = D_{Q'}` — an arbitrary selection.
    Query(Predicate),
}

impl ReferenceSpec {
    /// Builds the engine split for a combined (single-scan) execution of
    /// target and reference.
    pub fn to_split(&self, target: Predicate) -> SplitSpec {
        match self {
            ReferenceSpec::WholeTable => SplitSpec::TargetVsAll(target),
            ReferenceSpec::Complement => SplitSpec::TargetVsComplement(target),
            ReferenceSpec::Query(q) => SplitSpec::TargetVsQuery {
                target,
                reference: q.clone(),
            },
        }
    }

    /// The reference-side predicate for *separate* (unshared) execution, as
    /// the unoptimized baseline issues it.
    pub fn reference_predicate(&self, target: &Predicate) -> Predicate {
        match self {
            ReferenceSpec::WholeTable => Predicate::True,
            ReferenceSpec::Complement => target.clone().negate(),
            ReferenceSpec::Query(q) => q.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedb_engine::CmpOp;
    use seedb_storage::ColumnId;

    fn target() -> Predicate {
        Predicate::NumCmp {
            col: ColumnId(0),
            op: CmpOp::Gt,
            value: 1.0,
        }
    }

    #[test]
    fn default_is_whole_table() {
        assert_eq!(ReferenceSpec::default(), ReferenceSpec::WholeTable);
    }

    #[test]
    fn split_construction() {
        assert!(matches!(
            ReferenceSpec::WholeTable.to_split(target()),
            SplitSpec::TargetVsAll(_)
        ));
        assert!(matches!(
            ReferenceSpec::Complement.to_split(target()),
            SplitSpec::TargetVsComplement(_)
        ));
        assert!(matches!(
            ReferenceSpec::Query(Predicate::True).to_split(target()),
            SplitSpec::TargetVsQuery { .. }
        ));
    }

    #[test]
    fn separate_reference_predicates() {
        assert_eq!(
            ReferenceSpec::WholeTable.reference_predicate(&target()),
            Predicate::True
        );
        assert_eq!(
            ReferenceSpec::Complement.reference_predicate(&target()),
            target().negate()
        );
        let q = Predicate::IsNull { col: ColumnId(1) };
        assert_eq!(
            ReferenceSpec::Query(q.clone()).reference_predicate(&target()),
            q
        );
    }
}
