//! # seedb-core
//!
//! The SeeDB visualization recommendation engine (Vartak et al., VLDB 2015).
//!
//! Given a table, a target selection `Q` (a [`Predicate`]) and a reference
//! specification, SeeDB enumerates every aggregate view `(a, m, f)` —
//! group-by dimension `a`, measure `m`, aggregate `f` — computes each view
//! over the target data `D_Q` and the reference data `D_R`, and ranks views
//! by the distance between the two normalized result distributions
//! (deviation-based utility, §2). The top-k views are returned as
//! recommendations.
//!
//! The execution engine applies two orthogonal optimization families:
//!
//! * **Sharing** (§4.1): combine aggregates, combine group-bys under a
//!   memory budget (bin packing), combine target+reference into one scan,
//!   and execute query clusters in parallel.
//! * **Pruning** (§4.2): phased execution with confidence-interval
//!   ([`pruning::ci`]) or multi-armed-bandit ([`pruning::mab`]) elimination
//!   of low-utility views after every phase.
//!
//! [`ExecutionStrategy`] selects the paper's evaluated configurations:
//! `NO_OPT`, `SHARING`, `COMB`, `COMB_EARLY`.
//!
//! ```
//! use seedb_core::{ReferenceSpec, SeeDb, SeeDbConfig};
//! use seedb_engine::Predicate;
//! use seedb_storage::{ColumnDef, StoreKind, TableBuilder, Value};
//!
//! let mut b = TableBuilder::new(vec![
//!     ColumnDef::dim("sex"),
//!     ColumnDef::dim("marital"),
//!     ColumnDef::measure("capital_gain"),
//! ]);
//! for (s, m, g) in [("F", "single", 510.0), ("M", "single", 480.0),
//!                   ("F", "married", 310.0), ("M", "married", 690.0)] {
//!     b.push_row(&[Value::str(s), Value::str(m), Value::Float(g)]).unwrap();
//! }
//! let table = b.build(StoreKind::Column).unwrap();
//!
//! let seedb = SeeDb::new(table.clone());
//! let target = Predicate::col_eq_str(table.as_ref(), "marital", "single");
//! let rec = seedb.recommend(&target, &ReferenceSpec::WholeTable).unwrap();
//! assert!(!rec.views.is_empty());
//! ```

pub mod cache;
pub mod config;
pub mod error;
pub mod executor;
pub mod phase;
pub mod plan;
pub mod pruning;
pub mod quality;
pub mod reference;
pub mod seedb;
pub mod signature;
pub mod state;
pub mod view;

pub use cache::{CacheUse, CachedPartial, Exactness, MemoryViewCache, ViewCache};
pub use config::{
    ExecutionStrategy, GroupingPolicy, Knob, PruningKind, SeeDbConfig, SharingConfig,
};
pub use error::CoreError;
pub use executor::{ExecutionReport, Executor, ResumableRun};
pub use phase::{effective_phases, phase_ranges};
pub use plan::PhysicalPlan;
pub use quality::{accuracy_at_k, utility_distance};
pub use reference::ReferenceSpec;
pub use seedb::{RankedView, Recommendation, SeeDb};
pub use signature::{
    ingested_instance_signature, instance_signature, predicate_signature, reference_signature,
};
pub use view::{ViewId, ViewSpec};

// Re-exported for downstream convenience: the types callers need to drive
// the engine without importing every crate.
pub use seedb_engine::{AggFunc, CancelToken, ExecMode, Predicate};
pub use seedb_metrics::DistanceKind;
