//! The phased execution framework (§3) with sharing (§4.1) and pruning
//! (§4.2) combined.
//!
//! Every strategy is a configuration of one loop:
//!
//! 1. Partition the table into `n` phases ([`crate::phase::phase_ranges`]).
//! 2. Per phase, build **query clusters** from the views still alive:
//!    group views by dimension (combine-aggregates), optionally bin-pack
//!    dimensions into multi-GROUP-BY clusters under the memory budget
//!    (combine-group-bys), and execute clusters in parallel, each as a
//!    single target+reference scan (combine-target-reference) or as two
//!    separate queries.
//! 3. Fold each cluster's partial results into per-view
//!    [`ViewState`]s, re-estimate utilities, and let the pruner discard or
//!    accept views.
//! 4. `COMB_EARLY` stops as soon as top-k membership is decided.
//!
//! `NO_OPT` bypasses the loop: two serial full-table queries per view,
//! exactly the paper's basic execution engine (2·f·a·m queries).

use crate::cache::CachedPartial;
use crate::config::{ExecutionStrategy, PruningKind, SeeDbConfig};
use crate::phase::phase_ranges;
use crate::plan::PhysicalPlan;
use crate::pruning::{make_pruner, ViewEstimate};
use crate::reference::ReferenceSpec;
use crate::state::{Side, ViewState};
use crate::view::{ViewId, ViewSpec};
use seedb_engine::{
    binpack, execute_morsels_traced, rollup, with_pool, AggSpec, CancelToken, CombinedQuery,
    ExecStats, GroupedResult, Pool, Predicate, SplitSpec, TraceCtx,
};
use seedb_storage::{ColumnId, Table};
use std::borrow::Cow;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of an execution: final per-view states plus run metadata.
#[derive(Debug)]
pub struct ExecutionReport {
    /// One state per enumerated view (indexed by `ViewSpec::id`).
    pub states: Vec<ViewState>,
    /// Work counters.
    pub stats: ExecStats,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Non-empty phases actually executed (< the effective phase count
    /// when early-stopped). Empty tail ranges from `phases > rows` are
    /// never executed and never counted.
    pub phases_executed: usize,
    /// Whether `COMB_EARLY` stopped before the final phase.
    pub early_stopped: bool,
    /// Whether the run's [`CancelToken`] expired mid-run. When set, the
    /// states cover only the phases completed before expiry (a possibly
    /// empty prefix) and the final phase's partial scan was discarded —
    /// callers must not rank, render, or cache them as a finished answer.
    pub deadline_exceeded: bool,
}

/// A phased run's report plus the resumability byproducts
/// [`Executor::run_resumable`] captures for the cross-request cache.
#[derive(Debug)]
pub struct ResumableRun {
    /// The execution report (identical to what [`Executor::run`] yields).
    pub report: ExecutionReport,
    /// Per-view, per-phase combined deltas, covering exactly the phases
    /// each view participated in (view-id indexed). Replayed phases share
    /// the seed's `Arc`s; freshly scanned phases own new results.
    pub deltas: Vec<Vec<Arc<GroupedResult>>>,
    /// Per-view count of phases answered by scanning (vs seed replay).
    pub scanned_phases: Vec<usize>,
    /// The effective (non-empty) phase count of the partition — the
    /// granularity cached prefixes must match to be replayable.
    pub total_phases: usize,
}

impl ExecutionReport {
    /// Ids of the top-k views, ranked purely by final utility estimate,
    /// descending. Ties break in favour of accepted views (the pruner
    /// confirmed those), then by view id for determinism. NaN utilities
    /// (e.g. from NaN measure data) rank below every finite utility instead
    /// of panicking the sort.
    ///
    /// If pruning discarded so aggressively that fewer than `k` views are
    /// still live or accepted, the tail is backfilled with pruned views
    /// ranked by their last-known utility, so callers always get
    /// `min(k, total views)` results.
    pub fn top_k(&self, k: usize, metric: seedb_metrics::DistanceKind) -> Vec<ViewId> {
        // NaN ⇒ −∞ so that total_cmp ranks unusable views last, not first.
        let rank = |u: f64| if u.is_nan() { f64::NEG_INFINITY } else { u };
        let order = |a: &(ViewId, f64, bool), b: &(ViewId, f64, bool)| {
            rank(b.1)
                .total_cmp(&rank(a.1))
                .then(b.2.cmp(&a.2))
                .then(a.0.cmp(&b.0))
        };

        let mut candidates: Vec<(ViewId, f64, bool)> = self
            .states
            .iter()
            .filter(|s| s.alive || s.accepted)
            .map(|s| (s.spec.id, s.utility(metric), s.accepted))
            .collect();
        candidates.sort_by(order);
        let mut top: Vec<ViewId> = candidates
            .into_iter()
            .take(k)
            .map(|(id, _, _)| id)
            .collect();

        if top.len() < k {
            let mut pruned: Vec<(ViewId, f64, bool)> = self
                .states
                .iter()
                .filter(|s| !s.alive && !s.accepted)
                .map(|s| (s.spec.id, s.utility(metric), false))
                .collect();
            pruned.sort_by(order);
            top.extend(pruned.into_iter().take(k - top.len()).map(|(id, _, _)| id));
        }
        top
    }
}

/// One shared query cluster: a set of views answered by a single combined
/// query.
struct Cluster {
    group_by: Vec<ColumnId>,
    aggregates: Vec<AggSpec>,
    /// `(view id, aggregate index within this cluster, dim position within
    /// group_by)` for each member view.
    members: Vec<(ViewId, usize, usize)>,
}

/// Strategy-driven executor over one table.
pub struct Executor<'a> {
    table: &'a dyn Table,
    config: &'a SeeDbConfig,
    cancel: CancelToken,
    trace: TraceCtx,
}

impl<'a> Executor<'a> {
    /// Creates an executor for `table` under `config`, with no deadline.
    pub fn new(table: &'a dyn Table, config: &'a SeeDbConfig) -> Self {
        Executor {
            table,
            config,
            cancel: CancelToken::none(),
            trace: TraceCtx::disabled(),
        }
    }

    /// Creates an executor whose run is cooperatively cancelled when
    /// `cancel` expires: the token is checked at phase boundaries (and,
    /// inside the engine, before each morsel), and an expired run reports
    /// [`ExecutionReport::deadline_exceeded`] instead of running on.
    pub fn with_cancel(table: &'a dyn Table, config: &'a SeeDbConfig, cancel: CancelToken) -> Self {
        Executor {
            table,
            config,
            cancel,
            trace: TraceCtx::disabled(),
        }
    }

    /// Attaches a trace context: each executed phase then records a
    /// `phase` span (the exact interval pushed into
    /// `ExecStats::phase_times_us`), and the engine emits per-worker
    /// morsel spans. A disabled context records nothing.
    pub fn set_trace(&mut self, trace: TraceCtx) {
        self.trace = trace;
    }

    /// Derives the physical plan this executor would run under — the same
    /// derivation [`Executor::run`] performs, exposed for EXPLAIN.
    pub fn plan(
        &self,
        views: &[ViewSpec],
        target: &Predicate,
        reference: &ReferenceSpec,
    ) -> PhysicalPlan {
        PhysicalPlan::derive(self.table, self.config, views, target, reference)
    }

    /// Runs the configured strategy over `views`.
    ///
    /// A [`PhysicalPlan`] is derived first (stats-driven worker count,
    /// morsel size, and index choice, with `Knob::Fixed` overrides
    /// honored), then a single scoped worker pool ([`with_pool`]) lives for
    /// the whole run: every phase's `(cluster, morsel)` work items execute
    /// on the same workers instead of spawning fresh threads per phase.
    pub fn run(
        &self,
        views: &[ViewSpec],
        target: &Predicate,
        reference: &ReferenceSpec,
    ) -> ExecutionReport {
        let plan = self.plan(views, target, reference);
        with_pool(plan.workers, |pool| match self.config.strategy {
            ExecutionStrategy::NoOpt => self.run_no_opt(pool, &plan, views, target, reference),
            ExecutionStrategy::Sharing => {
                self.run_phased(
                    pool,
                    &plan,
                    views,
                    target,
                    reference,
                    1,
                    PruningKind::None,
                    false,
                    None,
                )
                .report
            }
            ExecutionStrategy::Comb => {
                self.run_phased(
                    pool,
                    &plan,
                    views,
                    target,
                    reference,
                    self.config.num_phases,
                    self.config.pruning,
                    false,
                    None,
                )
                .report
            }
            ExecutionStrategy::CombEarly => {
                self.run_phased(
                    pool,
                    &plan,
                    views,
                    target,
                    reference,
                    self.config.num_phases,
                    self.config.pruning,
                    true,
                    None,
                )
                .report
            }
        })
    }

    /// [`Executor::run`] for the phased strategies, with cross-request
    /// resume support: `seeds[i]` (when present, and when its
    /// `total_phases` matches this run's effective partition) replays view
    /// `i`'s cached phase prefix without scanning and resumes the scan at
    /// `phases_done`; every view's per-phase deltas are captured for
    /// depositing back into the cache.
    ///
    /// The report is **bit-identical** to [`Executor::run`] on the same
    /// inputs: replayed deltas merge exactly, so cumulative states — and
    /// therefore utility estimates and pruning decisions — reproduce the
    /// unseeded run's bits phase by phase.
    ///
    /// Only meaningful for `SHARING`/`COMB`/`COMB_EARLY`; a `NO_OPT`
    /// configuration runs unseeded and captures nothing.
    pub fn run_resumable(
        &self,
        views: &[ViewSpec],
        target: &Predicate,
        reference: &ReferenceSpec,
        seeds: &[Option<Arc<CachedPartial>>],
    ) -> ResumableRun {
        debug_assert_eq!(seeds.len(), views.len());
        let plan = self.plan(views, target, reference);
        with_pool(plan.workers, |pool| match self.config.strategy {
            ExecutionStrategy::NoOpt => ResumableRun {
                report: self.run_no_opt(pool, &plan, views, target, reference),
                deltas: vec![Vec::new(); views.len()],
                scanned_phases: vec![1; views.len()],
                total_phases: 1,
            },
            ExecutionStrategy::Sharing => self.run_phased(
                pool,
                &plan,
                views,
                target,
                reference,
                1,
                PruningKind::None,
                false,
                Some(seeds),
            ),
            ExecutionStrategy::Comb => self.run_phased(
                pool,
                &plan,
                views,
                target,
                reference,
                self.config.num_phases,
                self.config.pruning,
                false,
                Some(seeds),
            ),
            ExecutionStrategy::CombEarly => self.run_phased(
                pool,
                &plan,
                views,
                target,
                reference,
                self.config.num_phases,
                self.config.pruning,
                true,
                Some(seeds),
            ),
        })
    }

    /// The basic execution engine: two full-table queries per view (still
    /// 2·a·m queries — only the scan of each query is morsel-parallel).
    fn run_no_opt(
        &self,
        pool: &Pool<'_>,
        plan: &PhysicalPlan,
        views: &[ViewSpec],
        target: &Predicate,
        reference: &ReferenceSpec,
    ) -> ExecutionReport {
        let start = Instant::now();
        let mut stats = ExecStats::new();
        stats.plan_summary = plan.summary();
        let ref_pred = reference.reference_predicate(target);
        let mut states: Vec<ViewState> = views.iter().map(|v| ViewState::new(*v)).collect();

        let queries: Vec<CombinedQuery> = views
            .iter()
            .flat_map(|spec| {
                let agg = AggSpec::new(spec.func, spec.measure);
                [
                    CombinedQuery::single(spec.dim, agg, SplitSpec::TargetOnly(target.clone())),
                    CombinedQuery::single(spec.dim, agg, SplitSpec::TargetOnly(ref_pred.clone())),
                ]
            })
            .collect();
        let results = execute_morsels_traced(
            pool,
            self.table,
            &queries,
            0..self.table.num_rows(),
            plan.scan_shape(),
            &self.cancel,
            &self.trace,
        );
        for (state, pair) in states.iter_mut().zip(results.chunks_exact(2)) {
            let [(t_result, t_stats), (r_result, r_stats)] = pair else {
                unreachable!("two queries per view");
            };
            stats.merge(t_stats);
            stats.merge(r_stats);
            state.merge_into_side(t_result, 0, Side::Target);
            state.merge_into_side(r_result, 0, Side::Reference);
        }

        // NO_OPT is a single phase; its one timing slot is the whole scan.
        stats
            .phase_times_us
            .push(start.elapsed().as_micros() as u64);
        self.trace.record(
            "phase",
            0,
            start,
            start.elapsed(),
            vec![("phase", "0".to_string())],
        );
        ExecutionReport {
            states,
            stats,
            elapsed: start.elapsed(),
            phases_executed: 1,
            early_stopped: false,
            deadline_exceeded: self.cancel.is_expired(),
        }
    }

    /// The phased shared executor described in the module docs.
    ///
    /// `seeds` (when provided) switches on resume mode: a view whose seed
    /// covers phase `j` *replays* the cached delta instead of scanning,
    /// and every view's per-phase deltas are captured for the cache.
    /// Empty tail ranges (`phases > rows`) are skipped entirely so they
    /// never advance the pruner's sample count `m`.
    #[allow(clippy::too_many_arguments)] // strategy knobs + the shared pool
    fn run_phased(
        &self,
        pool: &Pool<'_>,
        plan: &PhysicalPlan,
        views: &[ViewSpec],
        target: &Predicate,
        reference: &ReferenceSpec,
        phases: usize,
        pruning: PruningKind,
        early: bool,
        seeds: Option<&[Option<Arc<CachedPartial>>]>,
    ) -> ResumableRun {
        let start = Instant::now();
        let mut stats = ExecStats::new();
        stats.plan_summary = plan.summary();
        let mut states: Vec<ViewState> = views.iter().map(|v| ViewState::new(*v)).collect();
        let mut pruner = make_pruner(pruning, self.config.delta, self.config.seed);
        // Only non-empty ranges are phases: an empty range would advance
        // the pruner's sample count m — tightening the Hoeffding–Serfling
        // interval — without contributing a single row of evidence.
        let ranges: Vec<std::ops::Range<usize>> = phase_ranges(self.table.num_rows(), phases)
            .into_iter()
            .filter(|r| !r.is_empty())
            .collect();
        let total_phases = ranges.len();
        let k = self.config.k;
        let metric = self.config.metric;
        let ref_pred = reference.reference_predicate(target);

        let capture = seeds.is_some();
        // A seed is replayable only when it was computed under the same
        // partition granularity; anything else is ignored (cache miss).
        let usable_seed = |i: usize| -> Option<&Arc<CachedPartial>> {
            seeds
                .and_then(|s| s[i].as_ref())
                .filter(|p| p.total_phases == total_phases && !p.deltas.is_empty())
        };
        let resume_phase: Vec<usize> = (0..views.len())
            .map(|i| usable_seed(i).map_or(0, |p| p.phases_done()))
            .collect();
        let mut captured: Vec<Vec<Arc<GroupedResult>>> = vec![Vec::new(); views.len()];
        let mut scanned_phases: Vec<usize> = vec![0; views.len()];

        let mut phases_executed = 0;
        let mut early_stopped = false;
        let mut deadline_exceeded = false;

        for (phase_idx, range) in ranges.iter().enumerate() {
            if self.cancel.is_expired() {
                deadline_exceeded = true;
                break;
            }
            let phase_start = Instant::now();
            // Replay cached deltas for participating views whose seed
            // covers this phase; they need no scan.
            for (i, state) in states.iter_mut().enumerate() {
                if !(state.alive || state.accepted) || phase_idx >= resume_phase[i] {
                    continue;
                }
                let delta =
                    usable_seed(i).expect("resume_phase implies a seed").deltas[phase_idx].clone();
                state.merge_both(&delta, 0);
                if capture {
                    captured[i].push(delta);
                }
            }

            // Scan for the participating views this phase's seed does not
            // cover (all of them, in an unseeded run).
            let scanning: Vec<ViewSpec> = states
                .iter()
                .enumerate()
                .filter(|(i, s)| (s.alive || s.accepted) && phase_idx >= resume_phase[*i])
                .map(|(_, s)| s.spec)
                .collect();
            let any_participating = states.iter().any(|s| s.alive || s.accepted);
            if !any_participating {
                break;
            }
            let live: Vec<&ViewSpec> = scanning.iter().collect();
            let clusters = self.build_clusters(&live);

            // Execute this phase's clusters: every cluster query is split
            // into morsels and all `(cluster, morsel)` work items share the
            // run-wide worker pool, so even a single bin-packed all-sharing
            // cluster uses every worker.
            let sharing = &self.config.sharing;
            let combine_tr = sharing.combine_target_reference;
            let queries_per_cluster = if combine_tr { 1 } else { 2 };
            let queries: Vec<CombinedQuery> = clusters
                .iter()
                .flat_map(|cluster| {
                    let query = |split: SplitSpec| CombinedQuery {
                        group_by: cluster.group_by.clone(),
                        aggregates: cluster.aggregates.clone(),
                        filter: None,
                        split,
                    };
                    if combine_tr {
                        vec![query(reference.to_split(target.clone()))]
                    } else {
                        vec![
                            query(SplitSpec::TargetOnly(target.clone())),
                            query(SplitSpec::TargetOnly(ref_pred.clone())),
                        ]
                    }
                })
                .collect();
            let results = execute_morsels_traced(
                pool,
                self.table,
                &queries,
                range.clone(),
                plan.scan_shape(),
                &self.cancel,
                &self.trace,
            );
            // A deadline that expired during the scan makes this phase's
            // results garbage (workers skipped an arbitrary suffix of the
            // morsels): discard them and stop with the completed-phase
            // prefix. The already-merged states stay a valid prefix.
            if self.cancel.is_expired() {
                deadline_exceeded = true;
                break;
            }

            // Per-view single-phase delta states, captured for the cache.
            let mut delta_states: Vec<Option<ViewState>> = vec![None; views.len()];

            // Fold results into view states, rolling up multi-GB clusters.
            for (cluster, cluster_results) in clusters
                .iter()
                .zip(results.chunks_exact(queries_per_cluster))
            {
                let mut outs = Vec::with_capacity(queries_per_cluster);
                for (result, local_stats) in cluster_results {
                    stats.merge(local_stats);
                    outs.push(result);
                }
                for (dim_pos, out_pair) in roll_cluster(cluster, &outs) {
                    for &(view_id, agg_idx, member_dim_pos) in &cluster.members {
                        if member_dim_pos != dim_pos {
                            continue;
                        }
                        let state = &mut states[view_id];
                        let delta = if capture {
                            Some(
                                delta_states[view_id]
                                    .get_or_insert_with(|| ViewState::new(views[view_id])),
                            )
                        } else {
                            None
                        };
                        match &out_pair {
                            RolledPair::Combined(r) => {
                                state.merge_both(r, agg_idx);
                                if let Some(d) = delta {
                                    d.merge_both(r, agg_idx);
                                }
                            }
                            RolledPair::Separate(t, rf) => {
                                state.merge_into_side(t, agg_idx, Side::Target);
                                state.merge_into_side(rf, agg_idx, Side::Reference);
                                if let Some(d) = delta {
                                    d.merge_into_side(t, agg_idx, Side::Target);
                                    d.merge_into_side(rf, agg_idx, Side::Reference);
                                }
                            }
                        }
                    }
                }
            }

            // Every scanned view covered one more phase — even a view
            // whose groups were absent from this range must occupy the
            // phase slot, or replay indices would shift.
            for spec in &scanning {
                scanned_phases[spec.id] += 1;
                if capture {
                    let delta = delta_states[spec.id]
                        .take()
                        .unwrap_or_else(|| ViewState::new(*spec));
                    captured[spec.id].push(Arc::new(delta.to_combined_result()));
                }
            }

            phases_executed = phase_idx + 1;
            stats
                .phase_times_us
                .push(phase_start.elapsed().as_micros() as u64);
            self.trace.record(
                "phase",
                0,
                phase_start,
                phase_start.elapsed(),
                vec![("phase", phase_idx.to_string())],
            );

            // Utility estimates for live, unaccepted views.
            let mut estimates = Vec::new();
            for state in &mut states {
                if state.alive && !state.accepted {
                    let _ = state.record_estimate(metric);
                    estimates.push(ViewEstimate {
                        view_id: state.spec.id,
                        mean: state.estimate_mean(),
                        samples: state.estimates.len(),
                    });
                }
            }
            let accepted_so_far = states.iter().filter(|s| s.accepted).count();
            let decision = pruner.decide(
                &estimates,
                accepted_so_far,
                k,
                phases_executed,
                total_phases,
            );
            for id in decision.discard {
                let s = &mut states[id];
                s.alive = false;
                s.pruned_at_phase = Some(phase_idx);
            }
            for id in decision.accept {
                states[id].accepted = true;
            }

            if early {
                let accepted = states.iter().filter(|s| s.accepted).count();
                let undecided = states.iter().filter(|s| s.alive && !s.accepted).count();
                if accepted >= k || accepted + undecided <= k {
                    early_stopped = phases_executed < total_phases;
                    break;
                }
            }
        }

        ResumableRun {
            report: ExecutionReport {
                states,
                stats,
                elapsed: start.elapsed(),
                phases_executed,
                early_stopped,
                deadline_exceeded,
            },
            deltas: captured,
            scanned_phases,
            total_phases,
        }
    }

    /// Builds this phase's query clusters from the live views, applying the
    /// combine-aggregates, nagg-cap, and combine-group-bys knobs.
    fn build_clusters(&self, live: &[&ViewSpec]) -> Vec<Cluster> {
        let sharing = &self.config.sharing;

        if !sharing.combine_aggregates {
            // One cluster per view: the unshared (but possibly parallel and
            // split-combined) shape.
            return live
                .iter()
                .map(|v| Cluster {
                    group_by: vec![v.dim],
                    aggregates: vec![AggSpec::new(v.func, v.measure)],
                    members: vec![(v.id, 0, 0)],
                })
                .collect();
        }

        // Group views by dimension, preserving first-seen dim order.
        let mut dims: Vec<ColumnId> = Vec::new();
        let mut per_dim: Vec<Vec<&ViewSpec>> = Vec::new();
        for v in live {
            match dims.iter().position(|&d| d == v.dim) {
                Some(i) => per_dim[i].push(v),
                None => {
                    dims.push(v.dim);
                    per_dim.push(vec![v]);
                }
            }
        }

        // Optionally combine dimensions into shared multi-GB clusters.
        let bins: Vec<Vec<ColumnId>> = if sharing.combine_group_bys && dims.len() > 1 {
            match sharing.grouping_policy {
                crate::config::GroupingPolicy::BinPack => {
                    let budget = sharing.effective_budget(self.table.kind());
                    binpack::first_fit(self.table, &dims, budget).bins
                }
                crate::config::GroupingPolicy::MaxGb(n) => {
                    dims.chunks(n.max(1)).map(|chunk| chunk.to_vec()).collect()
                }
            }
        } else {
            dims.iter().map(|&d| vec![d]).collect()
        };

        let nagg_cap = sharing
            .max_aggregates_per_query
            .unwrap_or(usize::MAX)
            .max(1);
        let mut clusters = Vec::new();
        for bin in bins {
            // Views of every dim in this bin share one (chunked) cluster.
            let mut pending: Vec<(ViewId, AggSpec, usize)> = Vec::new();
            for (dim_pos, dim) in bin.iter().enumerate() {
                let dim_idx = dims.iter().position(|d| d == dim).unwrap();
                for v in &per_dim[dim_idx] {
                    pending.push((v.id, AggSpec::new(v.func, v.measure), dim_pos));
                }
            }
            for chunk in pending.chunks(nagg_cap) {
                let mut aggregates = Vec::with_capacity(chunk.len());
                let mut members = Vec::with_capacity(chunk.len());
                for (view_id, agg, dim_pos) in chunk {
                    members.push((*view_id, aggregates.len(), *dim_pos));
                    aggregates.push(*agg);
                }
                clusters.push(Cluster {
                    group_by: bin.clone(),
                    aggregates,
                    members,
                });
            }
        }
        clusters
    }
}

/// A cluster's results rolled up to one of its dimensions. Single-dim
/// clusters borrow the executed result as-is (no copy); only multi-GB
/// clusters own freshly rolled-up results.
enum RolledPair<'a> {
    /// Single combined target+reference result.
    Combined(Cow<'a, GroupedResult>),
    /// Separate target and reference results.
    Separate(Cow<'a, GroupedResult>, Cow<'a, GroupedResult>),
}

/// Rolls a cluster's raw outputs up to every dimension position present in
/// its member list, returning `(dim_pos, rolled results)` pairs.
fn roll_cluster<'a>(cluster: &Cluster, outs: &[&'a GroupedResult]) -> Vec<(usize, RolledPair<'a>)> {
    let mut dim_positions: Vec<usize> = cluster.members.iter().map(|m| m.2).collect();
    dim_positions.sort_unstable();
    dim_positions.dedup();

    dim_positions
        .into_iter()
        .map(|dim_pos| {
            let roll = |r: &'a GroupedResult| -> Cow<'a, GroupedResult> {
                if cluster.group_by.len() > 1 {
                    Cow::Owned(rollup(r, dim_pos))
                } else {
                    Cow::Borrowed(r)
                }
            };
            let pair = match outs {
                [single] => RolledPair::Combined(roll(single)),
                [t, r] => RolledPair::Separate(roll(t), roll(r)),
                _ => unreachable!("clusters produce one or two results"),
            };
            (dim_pos, pair)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Knob, SharingConfig};
    use crate::view::enumerate_views;
    use seedb_engine::AggFunc;
    use seedb_metrics::DistanceKind;
    use seedb_storage::{BoxedTable, ColumnDef, StoreKind, TableBuilder, Value};

    /// 3 dims × 2 measures, with dim "d0" strongly deviating for the target.
    fn test_table(kind: StoreKind) -> BoxedTable {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("d0"),
            ColumnDef::dim("d1"),
            ColumnDef::dim("d2"),
            ColumnDef::measure("m0"),
            ColumnDef::measure("m1"),
        ]);
        for i in 0..400u32 {
            let in_target = i % 4 == 0;
            // d0 correlates with target membership; d1/d2 are noise.
            let d0 = if in_target {
                format!("g{}", i % 2)
            } else {
                format!("g{}", 2 + i % 2)
            };
            let d1 = format!("x{}", i % 3);
            let d2 = format!("y{}", i % 5);
            let m0 = if in_target {
                100.0 + (i % 7) as f64
            } else {
                10.0 + (i % 7) as f64
            };
            let m1 = (i % 11) as f64;
            b.push_row(&[
                Value::str(d0),
                Value::str(d1),
                Value::str(d2),
                Value::Float(m0),
                Value::Float(m1),
            ])
            .unwrap();
        }
        b.build(kind).unwrap()
    }

    fn target(t: &dyn Table) -> Predicate {
        // Target = rows whose m0 >= 100 (the planted quarter).
        Predicate::NumCmp {
            col: t.schema().column_id("m0").unwrap(),
            op: seedb_engine::CmpOp::Ge,
            value: 100.0,
        }
    }

    fn run_with(
        strategy: ExecutionStrategy,
        sharing: SharingConfig,
        pruning: PruningKind,
        kind: StoreKind,
    ) -> (ExecutionReport, SeeDbConfig, BoxedTable) {
        let table = test_table(kind);
        let mut cfg = SeeDbConfig::default();
        cfg.strategy = strategy;
        cfg.sharing = sharing;
        cfg.pruning = pruning;
        cfg.k = 3;
        cfg.num_phases = 5;
        let views = enumerate_views(table.as_ref(), &cfg.agg_functions);
        let exec = Executor::new(table.as_ref(), &cfg);
        let report = exec.run(&views, &target(table.as_ref()), &ReferenceSpec::WholeTable);
        (report, cfg, table)
    }

    fn utilities(report: &ExecutionReport) -> Vec<f64> {
        report
            .states
            .iter()
            .map(|s| s.utility(DistanceKind::Emd))
            .collect()
    }

    #[test]
    fn no_opt_issues_two_queries_per_view() {
        let (report, _, table) = run_with(
            ExecutionStrategy::NoOpt,
            SharingConfig::none(),
            PruningKind::None,
            StoreKind::Column,
        );
        let n_views = enumerate_views(table.as_ref(), &[AggFunc::Avg]).len();
        assert_eq!(n_views, 6); // 3 dims × 2 measures
        assert_eq!(report.stats.queries_issued, 2 * n_views as u64);
        assert_eq!(report.stats.rows_scanned, (2 * n_views * 400) as u64);
    }

    #[test]
    fn sharing_reduces_queries_and_scanned_rows() {
        let (no_opt, ..) = run_with(
            ExecutionStrategy::NoOpt,
            SharingConfig::none(),
            PruningKind::None,
            StoreKind::Column,
        );
        let (shared, ..) = run_with(
            ExecutionStrategy::Sharing,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                combine_group_bys: false,
                ..Default::default()
            },
            PruningKind::None,
            StoreKind::Column,
        );
        // One combined query per dimension instead of 2 per view.
        assert_eq!(shared.stats.queries_issued, 3);
        assert!(shared.stats.queries_issued < no_opt.stats.queries_issued);
        assert!(shared.stats.rows_scanned < no_opt.stats.rows_scanned);
    }

    #[test]
    fn all_strategies_agree_on_utilities_without_pruning() {
        let (no_opt, ..) = run_with(
            ExecutionStrategy::NoOpt,
            SharingConfig::none(),
            PruningKind::None,
            StoreKind::Column,
        );
        for combine_gb in [false, true] {
            for parallelism in [1, 4] {
                let (shared, ..) = run_with(
                    ExecutionStrategy::Sharing,
                    SharingConfig {
                        parallelism: Knob::Fixed(parallelism),
                        combine_group_bys: combine_gb,
                        memory_budget: Some(10_000),
                        ..Default::default()
                    },
                    PruningKind::None,
                    StoreKind::Column,
                );
                let a = utilities(&no_opt);
                let b = utilities(&shared);
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    assert!(
                        (x - y).abs() < 1e-9,
                        "view {i}: NO_OPT {x} vs SHARING(gb={combine_gb},par={parallelism}) {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn separate_target_reference_execution_matches_combined() {
        let (combined, ..) = run_with(
            ExecutionStrategy::Sharing,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                ..Default::default()
            },
            PruningKind::None,
            StoreKind::Column,
        );
        let (separate, ..) = run_with(
            ExecutionStrategy::Sharing,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                combine_target_reference: false,
                ..Default::default()
            },
            PruningKind::None,
            StoreKind::Column,
        );
        let a = utilities(&combined);
        let b = utilities(&separate);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
        // Separate execution pays twice the queries.
        assert_eq!(
            separate.stats.queries_issued,
            2 * combined.stats.queries_issued
        );
    }

    #[test]
    fn comb_with_no_pruning_matches_sharing() {
        let (sharing, ..) = run_with(
            ExecutionStrategy::Sharing,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                ..Default::default()
            },
            PruningKind::None,
            StoreKind::Column,
        );
        let (comb, ..) = run_with(
            ExecutionStrategy::Comb,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                ..Default::default()
            },
            PruningKind::None,
            StoreKind::Column,
        );
        let a = utilities(&sharing);
        let b = utilities(&comb);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
        assert_eq!(comb.phases_executed, 5);
    }

    #[test]
    fn ci_pruning_reduces_work_and_keeps_quality() {
        let (no_pru, cfg, _) = run_with(
            ExecutionStrategy::Comb,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                ..Default::default()
            },
            PruningKind::None,
            StoreKind::Column,
        );
        let (ci, ..) = run_with(
            ExecutionStrategy::Comb,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                ..Default::default()
            },
            PruningKind::Ci,
            StoreKind::Column,
        );
        assert!(ci.stats.rows_scanned <= no_pru.stats.rows_scanned);
        // Quality: the CI top-k should match the true top-k on this
        // well-separated dataset.
        let truth = no_pru.top_k(cfg.k, cfg.metric);
        let got = ci.top_k(cfg.k, cfg.metric);
        let acc = crate::quality::accuracy_at_k(&truth, &got);
        assert!(
            acc >= 2.0 / 3.0,
            "accuracy {acc}, truth {truth:?}, got {got:?}"
        );
    }

    #[test]
    fn comb_early_stops_early_and_returns_k_views() {
        let (early, cfg, _) = run_with(
            ExecutionStrategy::CombEarly,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                ..Default::default()
            },
            PruningKind::Ci,
            StoreKind::Column,
        );
        let top = early.top_k(cfg.k, cfg.metric);
        assert_eq!(top.len(), cfg.k);
        assert!(early.phases_executed <= cfg.num_phases);
    }

    #[test]
    fn row_store_and_column_store_agree() {
        let (row, ..) = run_with(
            ExecutionStrategy::Sharing,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                ..Default::default()
            },
            PruningKind::None,
            StoreKind::Row,
        );
        let (col, ..) = run_with(
            ExecutionStrategy::Sharing,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                ..Default::default()
            },
            PruningKind::None,
            StoreKind::Column,
        );
        let a = utilities(&row);
        let b = utilities(&col);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn nagg_cap_chunks_clusters() {
        let (capped, ..) = run_with(
            ExecutionStrategy::Sharing,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                combine_group_bys: false,
                max_aggregates_per_query: Some(1),
                ..Default::default()
            },
            PruningKind::None,
            StoreKind::Column,
        );
        // 6 views, 1 agg per query => 6 queries (vs 3 uncapped).
        assert_eq!(capped.stats.queries_issued, 6);
        let (uncapped, ..) = run_with(
            ExecutionStrategy::Sharing,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                combine_group_bys: false,
                ..Default::default()
            },
            PruningKind::None,
            StoreKind::Column,
        );
        assert_eq!(uncapped.stats.queries_issued, 3);
        // Results identical.
        for (x, y) in utilities(&capped).iter().zip(&utilities(&uncapped)) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn combine_group_bys_reduces_query_count() {
        let (packed, ..) = run_with(
            ExecutionStrategy::Sharing,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                combine_group_bys: true,
                memory_budget: Some(1_000_000),
                ..Default::default()
            },
            PruningKind::None,
            StoreKind::Column,
        );
        // All three dims fit one bin (4 × 3 × 5 = 60 groups « budget).
        assert_eq!(packed.stats.queries_issued, 1);
    }

    #[test]
    fn top_k_is_nan_safe_and_ranks_nan_last() {
        // A measure containing −∞ poisons normalization (the negative-value
        // shift becomes +∞, so finite groups normalize to ∞/∞ = NaN) and
        // that NaN propagates into the view's utility. top_k used to panic
        // on `partial_cmp().unwrap()`; it must now rank the poisoned view
        // below every finite-utility view.
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("d"),
            ColumnDef::measure("clean"),
            ColumnDef::measure("poisoned"),
        ]);
        for i in 0..40u32 {
            let clean = if i % 4 == 0 { 100.0 } else { 1.0 };
            let poisoned = if i % 2 == 0 { f64::NEG_INFINITY } else { 1.0 };
            b.push_row(&[
                Value::str(format!("g{}", i % 2)),
                Value::Float(clean),
                Value::Float(poisoned),
            ])
            .unwrap();
        }
        let table = b.build(StoreKind::Column).unwrap();
        let mut cfg = SeeDbConfig::default();
        cfg.strategy = ExecutionStrategy::Sharing;
        cfg.sharing.parallelism = Knob::Fixed(1);
        let views = enumerate_views(table.as_ref(), &cfg.agg_functions);
        let target = Predicate::NumCmp {
            col: table.schema().column_id("clean").unwrap(),
            op: seedb_engine::CmpOp::Ge,
            value: 50.0,
        };
        let exec = Executor::new(table.as_ref(), &cfg);
        let report = exec.run(&views, &target, &ReferenceSpec::WholeTable);

        let nan_views: Vec<ViewId> = report
            .states
            .iter()
            .filter(|s| s.utility(cfg.metric).is_nan())
            .map(|s| s.spec.id)
            .collect();
        assert!(!nan_views.is_empty(), "test premise: a NaN-utility view");

        let top = report.top_k(views.len(), cfg.metric);
        assert_eq!(top.len(), views.len());
        assert!(
            !nan_views.contains(&top[0]),
            "NaN-utility view ranked first: {top:?}"
        );
        // NaN views occupy exactly the tail positions of the ranking.
        let tail = &top[top.len() - nan_views.len()..];
        let mut tail_sorted = tail.to_vec();
        tail_sorted.sort_unstable();
        let mut nan_sorted = nan_views.clone();
        nan_sorted.sort_unstable();
        assert_eq!(
            tail_sorted, nan_sorted,
            "NaN views must rank last: {top:?}, NaN = {nan_views:?}"
        );
    }

    #[test]
    fn top_k_backfills_from_pruned_views_when_over_pruned() {
        // RANDOM pruning keeps only k views after phase 1 and discards the
        // rest; asking for more than survived must backfill from the pruned
        // views (ranked by last-known utility) instead of silently
        // returning a short list.
        let (report, cfg, _) = run_with(
            ExecutionStrategy::CombEarly,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                ..Default::default()
            },
            PruningKind::Random,
            StoreKind::Column,
        );
        let n_views = report.states.len();
        let survivors = report
            .states
            .iter()
            .filter(|s| s.alive || s.accepted)
            .count();
        assert!(
            survivors < n_views,
            "test premise: RANDOM pruning must discard some views"
        );

        let top = report.top_k(n_views, cfg.metric);
        assert_eq!(top.len(), n_views, "backfill must restore a full list");
        let mut unique = top.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), n_views, "no duplicate ids: {top:?}");
        // Surviving views occupy the head of the list; pruned views only
        // backfill the tail.
        for (pos, id) in top.iter().enumerate() {
            let s = &report.states[*id];
            if pos < survivors {
                assert!(s.alive || s.accepted, "position {pos} not a survivor");
            } else {
                assert!(!s.alive && !s.accepted, "position {pos} not backfill");
            }
        }
    }

    #[test]
    fn scalar_and_vectorized_modes_agree_bit_for_bit() {
        for kind in [StoreKind::Row, StoreKind::Column] {
            for strategy in [ExecutionStrategy::NoOpt, ExecutionStrategy::Sharing] {
                let table = test_table(kind);
                let mut per_mode: Vec<Vec<f64>> = Vec::new();
                for mode in seedb_engine::ExecMode::ALL {
                    let mut cfg = SeeDbConfig::for_strategy(strategy);
                    cfg.sharing.parallelism = Knob::Fixed(1);
                    cfg.k = 3;
                    cfg.num_phases = 5;
                    cfg.engine_mode = mode;
                    let views = enumerate_views(table.as_ref(), &cfg.agg_functions);
                    let exec = Executor::new(table.as_ref(), &cfg);
                    let report =
                        exec.run(&views, &target(table.as_ref()), &ReferenceSpec::WholeTable);
                    per_mode.push(utilities(&report));
                }
                // Bit-identical, not approximately equal: both modes consume
                // rows in the same order.
                assert_eq!(per_mode[0], per_mode[1], "{kind} {strategy}");
            }
        }
    }

    #[test]
    fn utilities_bit_identical_across_parallelism_and_morsels() {
        // The morsel-driven executor promises *bit-identical* utilities for
        // every (worker count, morsel size, store layout, engine mode)
        // combination — the all-sharing configuration exercises the
        // composite dense index (vectorized) and the hash path (scalar).
        for kind in [StoreKind::Row, StoreKind::Column] {
            let mut baseline: Option<Vec<f64>> = None;
            for mode in seedb_engine::ExecMode::ALL {
                for parallelism in [1usize, 2, 8] {
                    for morsel_rows in [1usize, 7, 1024, usize::MAX] {
                        let table = test_table(kind);
                        let mut cfg = SeeDbConfig::for_strategy(ExecutionStrategy::Sharing);
                        cfg.sharing.parallelism = Knob::Fixed(parallelism);
                        cfg.sharing.morsel_rows = Knob::Fixed(morsel_rows);
                        cfg.sharing.memory_budget = Some(1_000_000);
                        cfg.engine_mode = mode;
                        let views = enumerate_views(table.as_ref(), &cfg.agg_functions);
                        let exec = Executor::new(table.as_ref(), &cfg);
                        let report =
                            exec.run(&views, &target(table.as_ref()), &ReferenceSpec::WholeTable);
                        let utils = utilities(&report);
                        match &baseline {
                            None => baseline = Some(utils),
                            Some(want) => assert_eq!(
                                want, &utils,
                                "{kind} {mode} par={parallelism} morsel={morsel_rows}"
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn no_opt_runs_morsel_parallel_with_identical_utilities() {
        let (serial, ..) = run_with(
            ExecutionStrategy::NoOpt,
            SharingConfig::none(),
            PruningKind::None,
            StoreKind::Column,
        );
        let (parallel, ..) = run_with(
            ExecutionStrategy::NoOpt,
            SharingConfig {
                parallelism: Knob::Fixed(8),
                morsel_rows: Knob::Fixed(64),
                ..SharingConfig::none()
            },
            PruningKind::None,
            StoreKind::Column,
        );
        assert_eq!(utilities(&serial), utilities(&parallel));
        assert_eq!(serial.stats.queries_issued, parallel.stats.queries_issued);
        assert_eq!(serial.stats.rows_scanned, parallel.stats.rows_scanned);
    }

    #[test]
    fn empty_phases_are_skipped_and_do_not_advance_the_pruner() {
        // 3 rows under 8 configured phases: only 3 ranges carry rows. The
        // executor must run exactly those — an executed empty phase would
        // advance the pruner's sample count m and tighten the
        // Hoeffding–Serfling interval with no new data (and `m = total`
        // would claim exactness before the scan is complete).
        let build = || {
            let mut b = TableBuilder::new(vec![ColumnDef::dim("d"), ColumnDef::measure("m")]);
            for (d, m) in [("a", 10.0), ("a", 90.0), ("b", 30.0)] {
                b.push_row(&[Value::str(d), Value::Float(m)]).unwrap();
            }
            b.build(StoreKind::Column).unwrap()
        };
        let run = |phases: usize| {
            let table = build();
            let mut cfg = SeeDbConfig::default();
            cfg.strategy = ExecutionStrategy::Comb;
            cfg.pruning = PruningKind::Ci;
            cfg.sharing.parallelism = Knob::Fixed(1);
            cfg.num_phases = phases;
            cfg.k = 1;
            let views = enumerate_views(table.as_ref(), &cfg.agg_functions);
            let target = Predicate::col_eq_str(table.as_ref(), "d", "a");
            let exec = Executor::new(table.as_ref(), &cfg);
            exec.run(&views, &target, &ReferenceSpec::WholeTable)
        };
        let oversubscribed = run(8);
        assert_eq!(
            oversubscribed.phases_executed, 3,
            "empty tail phases must not execute"
        );
        // An 8-phase run over 3 rows is the same partition as a 3-phase
        // run — estimates, decisions, and utilities are bit-identical.
        let exact = run(3);
        assert_eq!(utilities(&oversubscribed), utilities(&exact));
        assert_eq!(oversubscribed.phases_executed, exact.phases_executed);
    }

    #[test]
    fn phase_timings_and_plan_summary_are_recorded() {
        // Auto knobs: the planner resolves the shape, and the executor
        // records one timing slot per executed phase plus the plan summary.
        let (report, ..) = run_with(
            ExecutionStrategy::Comb,
            SharingConfig::default(),
            PruningKind::None,
            StoreKind::Column,
        );
        assert_eq!(report.phases_executed, 5);
        assert_eq!(report.stats.phase_times_us.len(), 5);
        assert!(
            report.stats.plan_summary.contains("workers=1(auto)"),
            "400 rows is below the parallel threshold: {}",
            report.stats.plan_summary
        );

        let (no_opt, ..) = run_with(
            ExecutionStrategy::NoOpt,
            SharingConfig::none(),
            PruningKind::None,
            StoreKind::Column,
        );
        assert_eq!(no_opt.stats.phase_times_us.len(), 1);
        assert!(no_opt.stats.plan_summary.contains("workers=1(fixed)"));
    }

    #[test]
    fn auto_planned_run_matches_fixed_knob_runs() {
        let (auto, ..) = run_with(
            ExecutionStrategy::Sharing,
            SharingConfig::default(),
            PruningKind::None,
            StoreKind::Column,
        );
        for (parallelism, morsel_rows) in [(1, usize::MAX), (2, 64), (8, 1024)] {
            let (fixed, ..) = run_with(
                ExecutionStrategy::Sharing,
                SharingConfig {
                    parallelism: Knob::Fixed(parallelism),
                    morsel_rows: Knob::Fixed(morsel_rows),
                    ..Default::default()
                },
                PruningKind::None,
                StoreKind::Column,
            );
            assert_eq!(
                utilities(&auto),
                utilities(&fixed),
                "plan choice changed results: par={parallelism} morsel={morsel_rows}"
            );
        }
    }

    #[test]
    fn expired_deadline_stops_the_run_and_flags_the_report() {
        let table = test_table(StoreKind::Column);
        let mut cfg = SeeDbConfig::default();
        cfg.strategy = ExecutionStrategy::Comb;
        cfg.sharing.parallelism = Knob::Fixed(1);
        cfg.num_phases = 5;
        let views = enumerate_views(table.as_ref(), &cfg.agg_functions);
        let expired = CancelToken::after(Duration::ZERO);
        let exec = Executor::with_cancel(table.as_ref(), &cfg, expired);
        let report = exec.run(&views, &target(table.as_ref()), &ReferenceSpec::WholeTable);
        assert!(report.deadline_exceeded);
        assert_eq!(report.phases_executed, 0, "no phase completes past expiry");
        assert_eq!(report.stats.rows_scanned, 0);

        // And a deadline-free run through the same constructor is unflagged.
        let exec = Executor::with_cancel(table.as_ref(), &cfg, CancelToken::none());
        let report = exec.run(&views, &target(table.as_ref()), &ReferenceSpec::WholeTable);
        assert!(!report.deadline_exceeded);
        assert_eq!(report.phases_executed, 5);
    }

    #[test]
    fn random_pruning_scans_less_than_everything() {
        let (random, cfg, _) = run_with(
            ExecutionStrategy::CombEarly,
            SharingConfig {
                parallelism: Knob::Fixed(1),
                ..Default::default()
            },
            PruningKind::Random,
            StoreKind::Column,
        );
        // RANDOM decides after phase 1 => early stop.
        assert_eq!(random.phases_executed, 1);
        assert_eq!(random.top_k(cfg.k, cfg.metric).len(), cfg.k);
    }
}
