//! Phase partitioning for the phased execution framework (§3).
//!
//! *"Each phase operates on a subset of the dataset. Phase i of n operates
//! on the i-th of n equally-sized partitions of the dataset."*

use std::ops::Range;

/// Splits `[0, num_rows)` into `phases` contiguous, near-equal ranges whose
/// union is the whole table and whose pairwise intersection is empty.
///
/// When `num_rows` is not divisible by `phases`, earlier phases receive one
/// extra row, so sizes differ by at most 1.
pub fn phase_ranges(num_rows: usize, phases: usize) -> Vec<Range<usize>> {
    assert!(phases > 0, "at least one phase required");
    let mut out = Vec::with_capacity(phases);
    let base = num_rows / phases;
    let extra = num_rows % phases;
    let mut start = 0;
    for i in 0..phases {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, num_rows);
    out
}

/// Number of *non-empty* ranges [`phase_ranges`] produces — the phases
/// that actually carry data. When `phases > num_rows` the tail ranges are
/// empty; executing them would contribute no rows yet advance the
/// pruner's sample count `m`, tightening the Hoeffding–Serfling interval
/// with no new evidence. The executor therefore iterates only the first
/// `effective_phases` ranges and reports this count as the partition
/// granularity.
pub fn effective_phases(num_rows: usize, phases: usize) -> usize {
    phases.min(num_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_100k_rows_10_phases() {
        // "if we have 100,000 records and 10 phases, the i = 4th phase
        // processes records 30,001 to 40,000" (1-indexed in the paper).
        let ranges = phase_ranges(100_000, 10);
        assert_eq!(ranges[3], 30_000..40_000);
        assert_eq!(ranges.len(), 10);
    }

    #[test]
    fn ranges_partition_exactly() {
        for (n, p) in [(0, 1), (1, 1), (10, 3), (7, 7), (5, 8), (1_000_001, 13)] {
            let ranges = phase_ranges(n, p);
            assert_eq!(ranges.len(), p);
            let mut expected_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expected_start);
                expected_start = r.end;
            }
            assert_eq!(expected_start, n, "n={n} p={p}");
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let ranges = phase_ranges(103, 10);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
        assert_eq!(sizes.iter().sum::<usize>(), 103);
    }

    #[test]
    fn more_phases_than_rows_yields_empty_tails() {
        let ranges = phase_ranges(3, 5);
        assert_eq!(ranges.iter().filter(|r| r.is_empty()).count(), 2);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 3);
    }

    #[test]
    fn effective_phases_counts_non_empty_ranges() {
        for (n, p) in [(0, 1), (1, 1), (3, 5), (5, 3), (10, 10), (103, 10)] {
            let expected = phase_ranges(n, p).iter().filter(|r| !r.is_empty()).count();
            assert_eq!(effective_phases(n, p), expected, "n={n} p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn zero_phases_panics() {
        phase_ranges(10, 0);
    }
}
