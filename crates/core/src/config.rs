//! Configuration of a SeeDB run: k, metric, strategy, sharing knobs,
//! pruning scheme, phases.

use crate::error::CoreError;
use seedb_engine::{AggFunc, ExecMode};
use seedb_metrics::DistanceKind;
use seedb_storage::StoreKind;

/// The execution strategies evaluated in the paper (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionStrategy {
    /// `NO_OPT`: two serial queries per view, no sharing, no pruning (§3's
    /// basic execution engine).
    NoOpt,
    /// `SHARING`: all §4.1 sharing optimizations, single pass, no pruning.
    Sharing,
    /// `COMB`: sharing + phased pruning (§4.2).
    Comb,
    /// `COMB_EARLY`: `COMB`, returning as soon as top-k membership is
    /// decided ("early result generation", §5.1).
    CombEarly,
}

impl ExecutionStrategy {
    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionStrategy::NoOpt => "NO_OPT",
            ExecutionStrategy::Sharing => "SHARING",
            ExecutionStrategy::Comb => "COMB",
            ExecutionStrategy::CombEarly => "COMB_EARLY",
        }
    }

    /// All strategies, in the order Figure 5 plots them.
    pub const ALL: [ExecutionStrategy; 4] = [
        ExecutionStrategy::NoOpt,
        ExecutionStrategy::Sharing,
        ExecutionStrategy::Comb,
        ExecutionStrategy::CombEarly,
    ];
}

impl std::fmt::Display for ExecutionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Pruning schemes (§4.2 plus the two §5.4 baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruningKind {
    /// Hoeffding–Serfling confidence-interval pruning (`CI`).
    Ci,
    /// Multi-armed bandit successive accepts/rejects (`MAB`).
    Mab,
    /// No pruning (`NO_PRU`) — latency/accuracy upper bound.
    None,
    /// Random top-k (`RANDOM`) — accuracy lower bound.
    Random,
}

impl PruningKind {
    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            PruningKind::Ci => "CI",
            PruningKind::Mab => "MAB",
            PruningKind::None => "NO_PRU",
            PruningKind::Random => "RANDOM",
        }
    }

    /// The four schemes §5.4 evaluates.
    pub const ALL: [PruningKind; 4] = [
        PruningKind::Ci,
        PruningKind::Mab,
        PruningKind::None,
        PruningKind::Random,
    ];
}

impl std::fmt::Display for PruningKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How dimensions are combined into multi-GROUP-BY queries (Fig 8b's
/// MAX_GB-vs-BP comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupingPolicy {
    /// Bin-pack by `log₂|aᵢ|` under the memory budget (paper's `BP`).
    #[default]
    BinPack,
    /// Pack exactly `n` dimensions per query in enumeration order,
    /// ignoring cardinalities (paper's `MAX_GB` baseline).
    MaxGb(usize),
}

/// An execution-shape knob: either planner-resolved or pinned by the user.
///
/// `Auto` (the default) defers the choice to the cost-based planner, which
/// resolves it at plan time from table/partition statistics and the host —
/// so a serialized config carries no host-specific values and cache
/// signatures stay stable across machines. `Fixed(n)` pins the knob,
/// bypassing the planner for that dimension (benchmarks and equivalence
/// sweeps use this to force specific shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Knob {
    /// Resolved by the planner at plan time.
    #[default]
    Auto,
    /// Pinned to an explicit value.
    Fixed(usize),
}

impl Knob {
    /// The pinned value, if any.
    pub fn fixed_value(&self) -> Option<usize> {
        match self {
            Knob::Auto => None,
            Knob::Fixed(n) => Some(*n),
        }
    }

    /// Resolves the knob: the pinned value, or the planner's choice.
    pub fn resolve(&self, auto: usize) -> usize {
        match self {
            Knob::Auto => auto,
            Knob::Fixed(n) => *n,
        }
    }
}

impl std::fmt::Display for Knob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Knob::Auto => f.write_str("auto"),
            Knob::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Knobs for the §4.1 sharing optimizations.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingConfig {
    /// Merge views with the same group-by attribute into multi-aggregate
    /// queries.
    pub combine_aggregates: bool,
    /// Cap on aggregates per combined query (`nagg` in Fig 7a);
    /// `None` = unlimited.
    pub max_aggregates_per_query: Option<usize>,
    /// Combine several group-by attributes into one query via bin packing.
    pub combine_group_bys: bool,
    /// Grouping policy when `combine_group_bys` is on.
    pub grouping_policy: GroupingPolicy,
    /// Memory budget 𝓜 (max distinct groups per query). `None` picks the
    /// store-specific default observed in §5.3: 10⁴ for ROW, 10² for COL.
    pub memory_budget: Option<usize>,
    /// Execute target and reference in one scan.
    pub combine_target_reference: bool,
    /// Number of pool workers executing `(cluster, morsel)` work items
    /// concurrently (Fig 7b). `Auto` lets the planner pick from the host's
    /// parallelism and the estimated post-pruning row volume;
    /// `Fixed(1)` = serial.
    pub parallelism: Knob,
    /// Rows per morsel for intra-query parallelism. Every cluster scan is
    /// split into morsels of this many rows, so even a single bin-packed
    /// cluster parallelizes across all workers. Results are bit-identical
    /// for every value (accumulators merge exactly); `Fixed(usize::MAX)`
    /// disables splitting (one whole-range morsel per cluster scan).
    /// `Auto` lets the planner size morsels from the estimated scan volume.
    pub morsel_rows: Knob,
}

impl Default for SharingConfig {
    fn default() -> Self {
        SharingConfig {
            combine_aggregates: true,
            max_aggregates_per_query: None,
            combine_group_bys: true,
            grouping_policy: GroupingPolicy::BinPack,
            memory_budget: None,
            combine_target_reference: true,
            parallelism: Knob::Auto,
            morsel_rows: Knob::Auto,
        }
    }
}

impl SharingConfig {
    /// Everything off — the unoptimized baseline's sharing posture.
    pub fn none() -> Self {
        SharingConfig {
            combine_aggregates: false,
            max_aggregates_per_query: None,
            combine_group_bys: false,
            grouping_policy: GroupingPolicy::BinPack,
            memory_budget: None,
            combine_target_reference: false,
            parallelism: Knob::Fixed(1),
            morsel_rows: Knob::Auto,
        }
    }

    /// Effective memory budget for a store layout (§5.3's empirical values
    /// when unset).
    pub fn effective_budget(&self, kind: StoreKind) -> usize {
        self.memory_budget.unwrap_or(match kind {
            StoreKind::Row => 10_000,
            StoreKind::Column => 100,
        })
    }
}

/// Full configuration of a SeeDB run.
#[derive(Debug, Clone, PartialEq)]
pub struct SeeDbConfig {
    /// Number of views to recommend (paper sweeps 1–25; defaults to 10).
    pub k: usize,
    /// Distance metric for deviation (paper default EMD).
    pub metric: DistanceKind,
    /// Aggregate functions `F` to enumerate. Table 1's view counts use a
    /// single function, so the default is `[AVG]`.
    pub agg_functions: Vec<AggFunc>,
    /// Execution strategy.
    pub strategy: ExecutionStrategy,
    /// Pruning scheme used by `COMB`/`COMB_EARLY`.
    pub pruning: PruningKind,
    /// Number of phases `n` for phased execution (paper uses 10).
    pub num_phases: usize,
    /// Confidence parameter δ for the Hoeffding–Serfling intervals.
    pub delta: f64,
    /// Sharing knobs.
    pub sharing: SharingConfig,
    /// How the engine walks the table: batched (vectorized, the default)
    /// or row-at-a-time (scalar). Both produce bit-identical results; the
    /// scalar path is kept as the equivalence oracle and for debugging.
    pub engine_mode: ExecMode,
    /// RNG seed (used by `RANDOM` pruning only).
    pub seed: u64,
}

impl Default for SeeDbConfig {
    fn default() -> Self {
        SeeDbConfig {
            k: 10,
            metric: DistanceKind::Emd,
            agg_functions: vec![AggFunc::Avg],
            strategy: ExecutionStrategy::Comb,
            pruning: PruningKind::Ci,
            num_phases: 10,
            delta: 0.05,
            sharing: SharingConfig::default(),
            engine_mode: ExecMode::default(),
            seed: 0,
        }
    }
}

impl SeeDbConfig {
    /// Validates invariants (k ≥ 1, phases ≥ 1, δ ∈ (0,1), ≥ 1 function).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.k == 0 {
            return Err(CoreError::ZeroK);
        }
        if self.num_phases == 0 {
            return Err(CoreError::ZeroPhases);
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(CoreError::BadDelta(self.delta.to_string()));
        }
        if self.agg_functions.is_empty() {
            return Err(CoreError::NoAggregateFunctions);
        }
        Ok(())
    }

    /// Convenience: a config preset for one of the paper's strategies, with
    /// everything else default.
    pub fn for_strategy(strategy: ExecutionStrategy) -> Self {
        let mut cfg = SeeDbConfig {
            strategy,
            ..Default::default()
        };
        if strategy == ExecutionStrategy::NoOpt {
            cfg.sharing = SharingConfig::none();
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_paper_shaped() {
        let cfg = SeeDbConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.k, 10);
        assert_eq!(cfg.metric, DistanceKind::Emd);
        assert_eq!(cfg.num_phases, 10);
        assert_eq!(cfg.agg_functions, vec![AggFunc::Avg]);
        assert_eq!(cfg.engine_mode, ExecMode::Vectorized);
        // Shape knobs default to planner-resolved so serialized configs
        // carry no host-specific values.
        assert_eq!(cfg.sharing.parallelism, Knob::Auto);
        assert_eq!(cfg.sharing.morsel_rows, Knob::Auto);
    }

    #[test]
    fn knob_resolves_fixed_over_auto() {
        assert_eq!(Knob::Auto.resolve(6), 6);
        assert_eq!(Knob::Fixed(2).resolve(6), 2);
        assert_eq!(Knob::Auto.fixed_value(), None);
        assert_eq!(Knob::Fixed(8).fixed_value(), Some(8));
        assert_eq!(Knob::Auto.to_string(), "auto");
        assert_eq!(Knob::Fixed(4).to_string(), "4");
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut cfg = SeeDbConfig::default();
        cfg.k = 0;
        assert_eq!(cfg.validate(), Err(CoreError::ZeroK));

        let mut cfg = SeeDbConfig::default();
        cfg.num_phases = 0;
        assert_eq!(cfg.validate(), Err(CoreError::ZeroPhases));

        let mut cfg = SeeDbConfig::default();
        cfg.delta = 1.5;
        assert!(matches!(cfg.validate(), Err(CoreError::BadDelta(_))));

        let mut cfg = SeeDbConfig::default();
        cfg.agg_functions.clear();
        assert_eq!(cfg.validate(), Err(CoreError::NoAggregateFunctions));
    }

    #[test]
    fn strategy_labels_match_paper() {
        assert_eq!(ExecutionStrategy::NoOpt.label(), "NO_OPT");
        assert_eq!(ExecutionStrategy::CombEarly.label(), "COMB_EARLY");
        assert_eq!(PruningKind::None.label(), "NO_PRU");
    }

    #[test]
    fn no_opt_preset_disables_sharing() {
        let cfg = SeeDbConfig::for_strategy(ExecutionStrategy::NoOpt);
        assert!(!cfg.sharing.combine_aggregates);
        assert!(!cfg.sharing.combine_target_reference);
        assert_eq!(cfg.sharing.parallelism, Knob::Fixed(1));
    }

    #[test]
    fn effective_budget_defaults_differ_by_store() {
        let sharing = SharingConfig::default();
        assert_eq!(sharing.effective_budget(StoreKind::Row), 10_000);
        assert_eq!(sharing.effective_budget(StoreKind::Column), 100);
        let sharing = SharingConfig {
            memory_budget: Some(42),
            ..Default::default()
        };
        assert_eq!(sharing.effective_budget(StoreKind::Row), 42);
    }
}
