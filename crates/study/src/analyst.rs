//! Simulated analysts and the expert ground-truth panel.
//!
//! §6.1 obtained ground truth by showing five data-analysis experts all 48
//! Census visualizations; each labelled views interesting/not, and the
//! majority vote defined the ground truth (6 interesting, 42 not). Humans
//! are unavailable here, so an [`Analyst`] is a stochastic labeller whose
//! probability of calling a view interesting is a logistic function of the
//! view's *true deviation utility* — deliberately **imperfect**: the paper
//! itself observes experts sometimes disagree with pure deviation
//! (Figures 14c/14d), which the noise term reproduces.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// One simulated expert.
#[derive(Debug)]
pub struct Analyst {
    rng: StdRng,
    /// Logistic steepness: higher = labels track utility more faithfully.
    pub steepness: f64,
    /// Utility at which the expert is 50/50.
    pub midpoint: f64,
    /// Probability of an idiosyncratic flip (task-relevance disagreement,
    /// e.g. "hours-per-week seems worth exploring" despite low deviation).
    pub flip_prob: f64,
}

impl Analyst {
    /// Creates an expert with the default §6-like profile.
    pub fn new(seed: u64) -> Self {
        Analyst {
            rng: StdRng::seed_from_u64(seed),
            steepness: 14.0,
            midpoint: 0.25,
            flip_prob: 0.06,
        }
    }

    /// Labels one view given its true utility.
    pub fn label(&mut self, utility: f64) -> bool {
        let p = 1.0 / (1.0 + (-self.steepness * (utility - self.midpoint)).exp());
        let mut interesting = self.rng.gen::<f64>() < p;
        if self.rng.gen::<f64>() < self.flip_prob {
            interesting = !interesting;
        }
        interesting
    }
}

/// Configuration of the expert panel.
#[derive(Debug, Clone)]
pub struct PanelConfig {
    /// Number of experts (paper: 5).
    pub experts: usize,
    /// Base RNG seed; expert `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for PanelConfig {
    fn default() -> Self {
        PanelConfig {
            experts: 5,
            seed: 0,
        }
    }
}

/// Majority-vote ground-truth labels for a slate of views with the given
/// true utilities. Returns one bool per view.
pub fn expert_panel_labels(utilities: &[f64], config: &PanelConfig) -> Vec<bool> {
    let mut votes = vec![0usize; utilities.len()];
    for e in 0..config.experts {
        let mut expert = Analyst::new(config.seed + e as u64);
        for (i, &u) in utilities.iter().enumerate() {
            if expert.label(u) {
                votes[i] += 1;
            }
        }
    }
    let majority = config.experts / 2 + 1;
    votes.into_iter().map(|v| v >= majority).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_utility_views_get_labelled_interesting() {
        let mut a = Analyst::new(1);
        let hits = (0..200).filter(|_| a.label(0.9)).count();
        assert!(hits > 160, "only {hits}/200 for utility 0.9");
    }

    #[test]
    fn low_utility_views_get_labelled_boring() {
        let mut a = Analyst::new(2);
        let hits = (0..200).filter(|_| a.label(0.01)).count();
        assert!(hits < 40, "{hits}/200 for utility 0.01");
    }

    #[test]
    fn label_probability_is_monotone_in_utility() {
        let rate = |u: f64| {
            let mut a = Analyst::new(3);
            (0..500).filter(|_| a.label(u)).count()
        };
        let lo = rate(0.05);
        let mid = rate(0.25);
        let hi = rate(0.6);
        assert!(lo < mid && mid < hi, "rates: {lo} {mid} {hi}");
    }

    #[test]
    fn panel_produces_sparse_interesting_set_like_the_paper() {
        // 40 views: ~6 with high utility, the rest low — the panel should
        // label roughly the planted fraction interesting (§6.1: ~10–15%).
        let mut utilities = vec![0.03; 34];
        utilities.extend([0.55, 0.5, 0.48, 0.45, 0.42, 0.40]);
        let labels = expert_panel_labels(&utilities, &PanelConfig::default());
        let count = labels.iter().filter(|&&b| b).count();
        assert!(
            (4..=10).contains(&count),
            "panel labelled {count}/40 interesting"
        );
        // The interesting ones must be (mostly) the planted leaders.
        let planted_hits = labels[34..].iter().filter(|&&b| b).count();
        assert!(planted_hits >= 4, "only {planted_hits}/6 leaders labelled");
    }

    #[test]
    fn panel_is_deterministic_in_seed() {
        let utilities = [0.1, 0.5, 0.3, 0.05];
        let cfg = PanelConfig {
            experts: 5,
            seed: 9,
        };
        assert_eq!(
            expert_panel_labels(&utilities, &cfg),
            expert_panel_labels(&utilities, &cfg)
        );
    }

    #[test]
    fn experts_disagree_sometimes() {
        // Individual experts must not produce identical labelings on
        // borderline views (otherwise the majority vote is meaningless).
        let utilities = vec![0.25; 30]; // exactly at the midpoint
        let mut a = Analyst::new(10);
        let mut b = Analyst::new(11);
        let la: Vec<bool> = utilities.iter().map(|&u| a.label(u)).collect();
        let lb: Vec<bool> = utilities.iter().map(|&u| b.label(u)).collect();
        assert_ne!(la, lb);
    }
}
