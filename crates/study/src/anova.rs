//! Two-factor ANOVA for the 2 (tool) × 2 (dataset) within-subjects design
//! of §6.2.
//!
//! The paper reports e.g. *"a significant effect of tool on the number of
//! bookmarks, F(1,1) = 18.609, p < 0.001"*. This module computes the
//! classic two-way fixed-effects ANOVA F statistics for a balanced design
//! (factor A = tool, factor B = dataset), which is what the simulated
//! Table 2 runs feed.

/// F statistics of a two-factor ANOVA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnovaResult {
    /// F statistic for factor A (tool).
    pub f_a: f64,
    /// F statistic for factor B (dataset).
    pub f_b: f64,
    /// F statistic for the A×B interaction.
    pub f_interaction: f64,
    /// Degrees of freedom: (df_A, df_B, df_interaction, df_error).
    pub dof: (usize, usize, usize, usize),
}

/// Computes a two-factor ANOVA over `data[a][b]` = replicate observations
/// for level `a` of factor A and level `b` of factor B. The design must be
/// balanced (equal replicates per cell, ≥ 2).
///
/// # Panics
/// Panics on ragged input or fewer than two replicates per cell.
pub fn two_factor_anova(data: &[Vec<Vec<f64>>]) -> AnovaResult {
    let a_levels = data.len();
    assert!(a_levels >= 2, "need at least two levels of factor A");
    let b_levels = data[0].len();
    assert!(b_levels >= 2, "need at least two levels of factor B");
    let reps = data[0][0].len();
    assert!(reps >= 2, "need at least two replicates per cell");
    for row in data {
        assert_eq!(row.len(), b_levels, "ragged factor-B levels");
        for cell in row {
            assert_eq!(cell.len(), reps, "unbalanced design");
        }
    }

    let n_total = (a_levels * b_levels * reps) as f64;
    let grand_sum: f64 = data.iter().flatten().flatten().sum();
    let grand_mean = grand_sum / n_total;

    let cell_mean = |a: usize, b: usize| -> f64 { data[a][b].iter().sum::<f64>() / reps as f64 };
    let a_mean =
        |a: usize| -> f64 { data[a].iter().flatten().sum::<f64>() / (b_levels * reps) as f64 };
    let b_mean = |b: usize| -> f64 {
        data.iter()
            .map(|row| row[b].iter().sum::<f64>())
            .sum::<f64>()
            / (a_levels * reps) as f64
    };

    let ss_a: f64 = (0..a_levels)
        .map(|a| (b_levels * reps) as f64 * (a_mean(a) - grand_mean).powi(2))
        .sum();
    let ss_b: f64 = (0..b_levels)
        .map(|b| (a_levels * reps) as f64 * (b_mean(b) - grand_mean).powi(2))
        .sum();
    let mut ss_int = 0.0;
    let mut ss_err = 0.0;
    for a in 0..a_levels {
        for b in 0..b_levels {
            let cm = cell_mean(a, b);
            ss_int += reps as f64 * (cm - a_mean(a) - b_mean(b) + grand_mean).powi(2);
            for &x in &data[a][b] {
                ss_err += (x - cm).powi(2);
            }
        }
    }

    let df_a = a_levels - 1;
    let df_b = b_levels - 1;
    let df_int = df_a * df_b;
    let df_err = a_levels * b_levels * (reps - 1);

    let ms = |ss: f64, df: usize| ss / df as f64;
    let ms_err = ms(ss_err, df_err).max(f64::MIN_POSITIVE);

    AnovaResult {
        f_a: ms(ss_a, df_a) / ms_err,
        f_b: ms(ss_b, df_b) / ms_err,
        f_interaction: ms(ss_int, df_int) / ms_err,
        dof: (df_a, df_b, df_int, df_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// data[a][b] with a strong A effect, no B effect.
    fn strong_a_effect() -> Vec<Vec<Vec<f64>>> {
        vec![
            vec![vec![10.0, 11.0, 9.0, 10.5], vec![10.2, 9.8, 10.1, 10.3]],
            vec![vec![3.0, 2.8, 3.2, 3.1], vec![2.9, 3.1, 3.3, 2.7]],
        ]
    }

    #[test]
    fn detects_strong_factor_a_effect() {
        let r = two_factor_anova(&strong_a_effect());
        assert!(r.f_a > 50.0, "F_A = {}", r.f_a);
        assert!(r.f_b < 5.0, "F_B = {}", r.f_b);
        assert!(r.f_interaction < 5.0);
        assert_eq!(r.dof, (1, 1, 1, 12));
    }

    #[test]
    fn no_effect_gives_small_f() {
        // Same distribution in every cell.
        let data = vec![
            vec![vec![5.0, 6.0, 4.0, 5.5], vec![5.2, 4.8, 6.1, 4.9]],
            vec![vec![5.1, 5.9, 4.2, 5.6], vec![5.3, 4.7, 6.0, 5.0]],
        ];
        let r = two_factor_anova(&data);
        assert!(r.f_a < 4.0, "F_A = {}", r.f_a);
        assert!(r.f_b < 4.0);
    }

    #[test]
    fn interaction_detected() {
        // A matters only at one level of B.
        let data = vec![
            vec![vec![10.0, 10.2, 9.8, 10.1], vec![5.0, 5.2, 4.9, 5.1]],
            vec![vec![5.1, 4.9, 5.0, 5.2], vec![5.0, 5.1, 4.8, 5.2]],
        ];
        let r = two_factor_anova(&data);
        assert!(r.f_interaction > 50.0, "F_int = {}", r.f_interaction);
    }

    #[test]
    fn hand_computed_example() {
        // 2×2, 2 reps. Cells: A0B0={4,6}, A0B1={8,10}, A1B0={10,12}, A1B1={14,16}.
        // Grand mean = 10. A means: 7, 13 => SS_A = 8*(9+9)/... compute:
        // SS_A = 4*((7-10)^2+(13-10)^2)= 4*18 = 72. SS_B = 4*((8-10)^2+(12-10)^2)=32.
        // Cell means: 5, 9, 11, 15. Interaction terms all zero.
        // SS_err: each cell has (x-mean)^2 = 1+1 = 2, total 8. df_err = 4.
        // MS_err = 2. F_A = 72/1/2 = 36; F_B = 32/2 = 16; F_int = 0.
        let data = vec![
            vec![vec![4.0, 6.0], vec![8.0, 10.0]],
            vec![vec![10.0, 12.0], vec![14.0, 16.0]],
        ];
        let r = two_factor_anova(&data);
        assert!((r.f_a - 36.0).abs() < 1e-9, "F_A = {}", r.f_a);
        assert!((r.f_b - 16.0).abs() < 1e-9, "F_B = {}", r.f_b);
        assert!(r.f_interaction.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_design_panics() {
        let data = vec![
            vec![vec![1.0, 2.0], vec![1.0, 2.0, 3.0]],
            vec![vec![1.0, 2.0], vec![1.0, 2.0]],
        ];
        two_factor_anova(&data);
    }
}
