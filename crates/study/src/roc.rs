//! ROC analysis of SeeDB's deviation ranking against panel labels
//! (Figure 15b).
//!
//! §6.1: *"we ran SEEDB for the study task, varying k between 0…48, and
//! measured the agreement between SEEDB recommendations and ground truth"*,
//! reporting TPR/FPR per k and the area under the curve (AUROC = 0.903).

/// One point of the ROC curve (at a particular k).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Number of recommendations returned.
    pub k: usize,
    /// True-positive rate.
    pub tpr: f64,
    /// False-positive rate.
    pub fpr: f64,
}

/// Computes the ROC curve of a utility ranking against boolean labels.
///
/// `utilities[i]` is view i's score, `labels[i]` its ground truth. For
/// every k from 0 to n, the top-k by utility are "returned" and TPR/FPR
/// computed, exactly as §6.1 sweeps k.
pub fn roc_curve(utilities: &[f64], labels: &[bool]) -> Vec<RocPoint> {
    assert_eq!(utilities.len(), labels.len(), "one label per view required");
    let n = utilities.len();
    let positives = labels.iter().filter(|&&b| b).count();
    let negatives = n - positives;

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        utilities[b]
            .partial_cmp(&utilities[a])
            .unwrap()
            .then(a.cmp(&b))
    });

    let mut points = Vec::with_capacity(n + 1);
    let mut tp = 0usize;
    let mut fp = 0usize;
    points.push(RocPoint {
        k: 0,
        tpr: 0.0,
        fpr: 0.0,
    });
    for (rank, &idx) in order.iter().enumerate() {
        if labels[idx] {
            tp += 1;
        } else {
            fp += 1;
        }
        points.push(RocPoint {
            k: rank + 1,
            tpr: if positives > 0 {
                tp as f64 / positives as f64
            } else {
                0.0
            },
            fpr: if negatives > 0 {
                fp as f64 / negatives as f64
            } else {
                0.0
            },
        });
    }
    points
}

/// Area under the ROC curve (trapezoidal rule over the FPR axis).
pub fn auroc(points: &[RocPoint]) -> f64 {
    let mut area = 0.0;
    for pair in points.windows(2) {
        let dx = pair[1].fpr - pair[0].fpr;
        area += dx * 0.5 * (pair[0].tpr + pair[1].tpr);
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_auroc_one() {
        let utilities = [0.9, 0.8, 0.7, 0.2, 0.1];
        let labels = [true, true, true, false, false];
        let curve = roc_curve(&utilities, &labels);
        assert!((auroc(&curve) - 1.0).abs() < 1e-12);
        // Curve passes through (0, 1): all positives found before any FP.
        assert!(curve
            .iter()
            .any(|p| p.fpr == 0.0 && (p.tpr - 1.0).abs() < 1e-12));
    }

    #[test]
    fn inverted_ranking_has_auroc_zero() {
        let utilities = [0.1, 0.2, 0.9, 0.95];
        let labels = [true, true, false, false];
        assert!(auroc(&roc_curve(&utilities, &labels)) < 1e-12);
    }

    #[test]
    fn random_ranking_has_auroc_near_half() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let n = 2000;
        let utilities: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let a = auroc(&roc_curve(&utilities, &labels));
        assert!((a - 0.5).abs() < 0.05, "auroc {a}");
    }

    #[test]
    fn paper_example_k3_and_k5() {
        // §6.1: 6 interesting of 48; at k=3, 3/3 returned interesting =>
        // TPR 0.5, FPR 0; at k=5, 4/5 => TPR 4/6, FPR 1/42.
        let mut utilities = vec![0.0; 48];
        let mut labels = vec![false; 48];
        // Six interesting views; the top-3 scores are interesting, the 4th
        // ranked view is a false positive, ranks 5-6 interesting again.
        for (rank, (u, l)) in [
            (0.9, true),
            (0.85, true),
            (0.8, true),
            (0.75, false),
            (0.7, true),
            (0.65, true),
            (0.6, true),
        ]
        .iter()
        .enumerate()
        {
            utilities[rank] = *u;
            labels[rank] = *l;
        }
        let curve = roc_curve(&utilities, &labels);
        let at = |k: usize| curve.iter().find(|p| p.k == k).unwrap();
        assert!((at(3).tpr - 0.5).abs() < 1e-12);
        assert_eq!(at(3).fpr, 0.0);
        assert!((at(5).tpr - 4.0 / 6.0).abs() < 1e-12);
        assert!((at(5).fpr - 1.0 / 42.0).abs() < 1e-12);
        // Strong ranking => AUROC in the paper's "excellent" band.
        assert!(auroc(&curve) > 0.9);
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one_one() {
        let utilities = [0.5, 0.4, 0.6, 0.1, 0.9, 0.2];
        let labels = [true, false, true, false, false, true];
        let curve = roc_curve(&utilities, &labels);
        assert_eq!(curve.first().unwrap().k, 0);
        let last = curve.last().unwrap();
        assert!((last.tpr - 1.0).abs() < 1e-12);
        assert!((last.fpr - 1.0).abs() < 1e-12);
        for pair in curve.windows(2) {
            assert!(pair[1].tpr >= pair[0].tpr);
            assert!(pair[1].fpr >= pair[0].fpr);
        }
    }

    #[test]
    fn degenerate_label_sets() {
        // All positive: FPR stays 0; AUROC (area over fpr axis) is 0.
        let curve = roc_curve(&[0.3, 0.2], &[true, true]);
        assert!(curve.iter().all(|p| p.fpr == 0.0));
        // All negative: TPR stays 0.
        let curve = roc_curve(&[0.3, 0.2], &[false, false]);
        assert!(curve.iter().all(|p| p.tpr == 0.0));
    }

    #[test]
    #[should_panic(expected = "one label per view")]
    fn mismatched_lengths_panic() {
        roc_curve(&[0.1], &[true, false]);
    }
}
