//! # seedb-study
//!
//! The §6 user-study pipeline with **simulated analysts** substituted for
//! the paper's human participants (see DESIGN.md for the substitution
//! rationale).
//!
//! * [`analyst`] — a parametric interestingness model: an expert labels a
//!   view "interesting" with probability increasing in its true deviation,
//!   plus task-relevance noise; a panel of five experts votes, majority
//!   wins (§6.1's ground-truth protocol).
//! * [`roc`] — ROC curves and AUROC for SeeDB's utility ranking against
//!   the panel labels (Figure 15b).
//! * [`bookmarks`] — the §6.2 SEEDB-vs-MANUAL bookmark simulation
//!   (Table 2) and a two-factor ANOVA for the tool/dataset design.

pub mod analyst;
pub mod anova;
pub mod bookmarks;
pub mod roc;

pub use analyst::{expert_panel_labels, Analyst, PanelConfig};
pub use anova::{two_factor_anova, AnovaResult};
pub use bookmarks::{simulate_study, BookmarkSummary, StudyConfig, ToolCondition};
pub use roc::{auroc, roc_curve, RocPoint};

use rand::rngs::StdRng;
use rand::Rng;

/// Standard-normal sample (Box–Muller) shared by the study simulators.
pub(crate) fn normal_sample(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}
