//! The §6.2 SEEDB-vs-MANUAL study simulation (Table 2).
//!
//! 16 simulated participants in a counterbalanced 2 (tool) × 2 (dataset)
//! within-subjects design. Each session examines a number of aggregate
//! visualizations (drawn from the tool-specific distribution the paper
//! reports in Table 2: MANUAL ≈ 6.3, SEEDB ≈ 10.8 — recommendations expose
//! analysts to more views); the participant bookmarks a view when their
//! [`Analyst`] model finds it interesting.
//!
//! The conditions differ in *which* views get examined:
//! * **SEEDB** — views in descending utility order (the recommendation
//!   list), plus manual exploration after the list is exhausted;
//! * **MANUAL** — views in random order (trial-and-error construction).
//!
//! Because the analyst model bookmarks high-deviation views more often,
//! the SEEDB condition yields ≈ 3× the bookmark rate — the paper's
//! headline Table 2 contrast — *without* hard-coding that outcome.

use crate::analyst::Analyst;
use crate::anova::{two_factor_anova, AnovaResult};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which tool a session used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolCondition {
    /// SeeDB with the recommendations pane.
    SeeDb,
    /// The same tool with recommendations removed.
    Manual,
}

impl ToolCondition {
    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            ToolCondition::SeeDb => "SEEDB",
            ToolCondition::Manual => "MANUAL",
        }
    }
}

/// Study parameters.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Number of participants (paper: 16).
    pub participants: usize,
    /// Mean views examined per MANUAL session (Table 2: 6.3).
    pub manual_views_mean: f64,
    /// Mean views examined per SEEDB session (Table 2: 10.8).
    pub seedb_views_mean: f64,
    /// Spread of views examined.
    pub views_sd: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            participants: 16,
            manual_views_mean: 6.3,
            seedb_views_mean: 10.8,
            views_sd: 3.0,
            seed: 0,
        }
    }
}

/// One simulated session.
#[derive(Debug, Clone, Copy)]
pub struct SessionResult {
    /// Tool used.
    pub tool: ToolCondition,
    /// Dataset index (0 or 1).
    pub dataset: usize,
    /// Aggregate visualizations examined.
    pub total_viz: usize,
    /// Views bookmarked.
    pub bookmarks: usize,
}

impl SessionResult {
    /// Bookmark rate.
    pub fn rate(&self) -> f64 {
        if self.total_viz == 0 {
            0.0
        } else {
            self.bookmarks as f64 / self.total_viz as f64
        }
    }
}

/// Table 2 row: mean ± sd of the three reported quantities for one tool.
#[derive(Debug, Clone, Copy)]
pub struct ToolRow {
    /// Tool.
    pub tool: ToolCondition,
    /// Mean views created.
    pub total_viz_mean: f64,
    /// SD of views created.
    pub total_viz_sd: f64,
    /// Mean bookmarks.
    pub bookmarks_mean: f64,
    /// SD of bookmarks.
    pub bookmarks_sd: f64,
    /// Mean bookmark rate.
    pub rate_mean: f64,
    /// SD of bookmark rate.
    pub rate_sd: f64,
}

/// Full study outcome.
#[derive(Debug)]
pub struct BookmarkSummary {
    /// Table 2 rows (MANUAL first, SEEDB second, as the paper prints it).
    pub rows: Vec<ToolRow>,
    /// Raw per-session results.
    pub sessions: Vec<SessionResult>,
    /// Two-factor ANOVA on bookmark counts (tool × dataset).
    pub anova_bookmarks: AnovaResult,
    /// Two-factor ANOVA on bookmark rates.
    pub anova_rate: AnovaResult,
}

fn mean_sd(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var =
        values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / values.len().max(1) as f64;
    (mean, var.sqrt())
}

/// Runs the simulated study over two datasets' per-view true utilities
/// (`datasets[d][v]` = utility of view v of dataset d).
pub fn simulate_study(datasets: &[Vec<f64>; 2], config: &StudyConfig) -> BookmarkSummary {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sessions = Vec::new();

    for p in 0..config.participants {
        // Counterbalancing: alternate tool/dataset pairing per participant.
        let (first_tool, second_tool) = if p % 2 == 0 {
            (ToolCondition::SeeDb, ToolCondition::Manual)
        } else {
            (ToolCondition::Manual, ToolCondition::SeeDb)
        };
        let first_dataset = (p / 2) % 2;
        for (tool, dataset) in [
            (first_tool, first_dataset),
            (second_tool, 1 - first_dataset),
        ] {
            let utilities = &datasets[dataset];
            let mut analyst = Analyst::new(config.seed.wrapping_add(1000 + p as u64));

            let views_mean = match tool {
                ToolCondition::SeeDb => config.seedb_views_mean,
                ToolCondition::Manual => config.manual_views_mean,
            };
            let n_views = (views_mean + config.views_sd * crate::normal_sample(&mut rng))
                .round()
                .clamp(2.0, utilities.len() as f64) as usize;

            // Order of examination.
            let mut order: Vec<usize> = (0..utilities.len()).collect();
            match tool {
                ToolCondition::SeeDb => {
                    order.sort_by(|&a, &b| utilities[b].partial_cmp(&utilities[a]).unwrap());
                }
                ToolCondition::Manual => {
                    order.shuffle(&mut rng);
                }
            }

            let mut bookmarks = 0;
            for &view in order.iter().take(n_views) {
                if analyst.label(utilities[view]) {
                    bookmarks += 1;
                }
            }
            sessions.push(SessionResult {
                tool,
                dataset,
                total_viz: n_views,
                bookmarks,
            });
        }
    }

    let rows = [ToolCondition::Manual, ToolCondition::SeeDb]
        .into_iter()
        .map(|tool| {
            let of_tool: Vec<&SessionResult> = sessions.iter().filter(|s| s.tool == tool).collect();
            let viz: Vec<f64> = of_tool.iter().map(|s| s.total_viz as f64).collect();
            let marks: Vec<f64> = of_tool.iter().map(|s| s.bookmarks as f64).collect();
            let rates: Vec<f64> = of_tool.iter().map(|s| s.rate()).collect();
            let (vm, vs) = mean_sd(&viz);
            let (bm, bs) = mean_sd(&marks);
            let (rm, rs) = mean_sd(&rates);
            ToolRow {
                tool,
                total_viz_mean: vm,
                total_viz_sd: vs,
                bookmarks_mean: bm,
                bookmarks_sd: bs,
                rate_mean: rm,
                rate_sd: rs,
            }
        })
        .collect();

    // ANOVA cells: data[tool][dataset] = replicate values.
    let cell = |tool: ToolCondition, dataset: usize, f: &dyn Fn(&SessionResult) -> f64| {
        sessions
            .iter()
            .filter(|s| s.tool == tool && s.dataset == dataset)
            .map(f)
            .collect::<Vec<f64>>()
    };
    let anova_for = |f: &dyn Fn(&SessionResult) -> f64| {
        let data = vec![
            vec![
                cell(ToolCondition::Manual, 0, f),
                cell(ToolCondition::Manual, 1, f),
            ],
            vec![
                cell(ToolCondition::SeeDb, 0, f),
                cell(ToolCondition::SeeDb, 1, f),
            ],
        ];
        two_factor_anova(&data)
    };

    BookmarkSummary {
        rows,
        anova_bookmarks: anova_for(&|s| s.bookmarks as f64),
        anova_rate: anova_for(&|s| s.rate()),
        sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 40-view datasets with ~6 high-utility views each.
    fn study_datasets() -> [Vec<f64>; 2] {
        let mut a = vec![0.04; 40];
        for (i, u) in [0.6, 0.55, 0.5, 0.45, 0.42, 0.4].iter().enumerate() {
            a[i * 6] = *u;
        }
        let mut b = vec![0.05; 40];
        for (i, u) in [0.58, 0.52, 0.49, 0.46, 0.41, 0.38].iter().enumerate() {
            b[i * 5 + 2] = *u;
        }
        [a, b]
    }

    #[test]
    fn seedb_condition_has_higher_bookmark_rate() {
        let summary = simulate_study(&study_datasets(), &StudyConfig::default());
        let manual = &summary.rows[0];
        let seedb = &summary.rows[1];
        assert_eq!(manual.tool, ToolCondition::Manual);
        assert_eq!(seedb.tool, ToolCondition::SeeDb);
        assert!(
            seedb.rate_mean > 2.0 * manual.rate_mean,
            "SEEDB rate {} vs MANUAL {}",
            seedb.rate_mean,
            manual.rate_mean
        );
        assert!(seedb.bookmarks_mean > 2.0 * manual.bookmarks_mean);
    }

    #[test]
    fn seedb_condition_examines_more_views() {
        let summary = simulate_study(&study_datasets(), &StudyConfig::default());
        assert!(summary.rows[1].total_viz_mean > summary.rows[0].total_viz_mean);
    }

    #[test]
    fn tool_effect_is_statistically_significant() {
        let summary = simulate_study(&study_datasets(), &StudyConfig::default());
        // F(1, 28) > ~7.6 corresponds to p < 0.01 — the paper reports a
        // significant tool effect and no dataset effect.
        assert!(
            summary.anova_bookmarks.f_a > 7.6,
            "tool effect F = {}",
            summary.anova_bookmarks.f_a
        );
        assert!(
            summary.anova_bookmarks.f_b < summary.anova_bookmarks.f_a,
            "dataset effect should be weaker than tool effect"
        );
        assert!(summary.anova_rate.f_a > 7.6);
    }

    #[test]
    fn sixteen_participants_two_sessions_each() {
        let summary = simulate_study(&study_datasets(), &StudyConfig::default());
        assert_eq!(summary.sessions.len(), 32);
        // Balanced: 16 per tool, 16 per dataset, 8 per cell.
        for tool in [ToolCondition::SeeDb, ToolCondition::Manual] {
            for ds in 0..2 {
                let n = summary
                    .sessions
                    .iter()
                    .filter(|s| s.tool == tool && s.dataset == ds)
                    .count();
                assert_eq!(n, 8, "{tool:?} dataset {ds}");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = simulate_study(&study_datasets(), &StudyConfig::default());
        let b = simulate_study(&study_datasets(), &StudyConfig::default());
        assert_eq!(a.rows[1].rate_mean, b.rows[1].rate_mean);
        assert_eq!(a.anova_bookmarks.f_a, b.anova_bookmarks.f_a);
    }

    #[test]
    fn rate_handles_zero_views() {
        let s = SessionResult {
            tool: ToolCondition::Manual,
            dataset: 0,
            total_viz: 0,
            bookmarks: 0,
        };
        assert_eq!(s.rate(), 0.0);
    }
}
