//! # seedb-server
//!
//! `seedbd` — a dependency-free serving layer for the SeeDB reproduction.
//!
//! The paper frames SeeDB as interactive *middleware* that analysts query
//! repeatedly with small variations over the same dataset (§3); this crate
//! is that long-lived process: a multi-threaded HTTP/1.1 JSON API daemon
//! over `std::net` only (the registry is unreachable, so the HTTP framing
//! is hand-rolled the same way `seedb-util` hand-rolls JSON).
//!
//! ## Endpoints
//!
//! | method & path | body | response |
//! |---|---|---|
//! | `GET /healthz` | — | `{"status":"ok", …}` |
//! | `GET /statz` | — | cache + request counters, uptime, admission gauges |
//! | `GET /metrics` | — | the same counters in Prometheus text exposition |
//! | `GET /datasets` | — | the Table 1 catalog, ingested uploads, what's loaded |
//! | `POST /datasets` | `{"name": …, "csv": …}` | ingest a CSV dataset |
//! | `POST /recommend` | request JSON (below) | ranked views |
//! | `GET /debug/traces` | — | flight-recorder index (most recent first) |
//! | `GET /debug/traces/{id}` | — | one trace as Chrome trace-event JSON |
//!
//! A `/recommend` body names a catalog dataset and a target selection, and
//! may override any result-affecting config knob:
//!
//! ```json
//! {"dataset": "CENSUS", "rows": 5000,
//!  "where": "marital_status = 'unmarried'",
//!  "reference": "whole", "k": 5, "metric": "EMD",
//!  "strategy": "SHARING", "exec_mode": "VECTORIZED"}
//! ```
//!
//! ## Cross-request cache
//!
//! All responses and per-view aggregates flow through one memory-budgeted
//! LRU ([`cache::RecCache`]) keyed by canonical signatures
//! (`seedb_core::signature`): a repeated query returns its cached response
//! without touching the engine, and an *overlapping* query (same dataset +
//! predicate, different `k`/metric/pruning knobs) reuses the cached
//! per-view partials ([`CachedPartial`](seedb_core::CachedPartial)) —
//! exact full-table results for the pruning-free configurations, replay-
//! and-resume phase prefixes for the pruned ones (the server default,
//! COMB + CI) — through
//! [`SeeDb::recommend_cached`](seedb_core::SeeDb::recommend_cached).
//! Responses are bit-identical to direct library calls in every case; a
//! request can opt out with `"cache_mode": "bypass"`, which `/statz`
//! counts separately so operators can see when the cache is not in play.
//!
//! ## Concurrency & overload
//!
//! The accept thread pushes connections onto a bounded admission queue
//! drained by a fixed pool of worker threads; a full queue sheds the
//! connection immediately with `503` + `Retry-After` instead of building
//! an unbounded backlog. Recommendation work inside a request rides the
//! engine's persistent scoped worker pool, and concurrent requests share
//! the machine through an admission lease on
//! [`WorkerBudget`](seedb_engine::WorkerBudget) so N parallel `/recommend`
//! calls never oversubscribe the morsel workers. Worker leases are
//! bounded waits, never indefinite: a starved request degrades along the
//! ladder *parallel → serial → cached-partial → shed*. Every `/recommend`
//! can carry a `deadline_ms`, enforced cooperatively at phase and morsel
//! boundaries; an expired run returns a `504` envelope (or a clearly
//! tagged degraded partial answer) and never poisons the cache. A
//! deterministic fault-injection layer ([`faults`]) drives the chaos test
//! suite.
//!
//! ## Observability
//!
//! Every request is traced from socket to socket: `http_read`, the
//! admission-queue wait, catalog build, cache probe, plan derivation,
//! each execution phase, the per-worker morsel fan-out, cache deposit,
//! and `response_write` each become spans in a [`seedb_obs`] trace.
//! Completed traces land in a bounded flight recorder served at
//! `/debug/traces` (Perfetto-loadable Chrome trace-event JSON per
//! trace), requests slower than `--slow-ms` are logged in full as one
//! structured JSON line, and `/metrics` exposes every counter and
//! latency histogram in Prometheus text format. An `X-Request-Id`
//! header (client-sent or generated) correlates the response envelope,
//! the trace, and the log line.

pub mod api;
pub mod cache;
pub mod catalog;
pub mod client;
pub mod csv;
pub mod faults;
pub mod http;
pub mod router;
pub mod server;

pub use cache::{CacheStats, CacheValue, RecCache};
pub use catalog::{Catalog, CatalogError};
pub use faults::{ConnFaults, FaultPlan, TruncatingWriter};
pub use http::{Request, Response};
pub use server::{Server, ServerConfig, ServerHandle};
