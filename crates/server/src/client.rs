//! A tiny std-only HTTP client — enough to exercise `seedbd` from tests,
//! examples, and the CI smoke job without curl or an HTTP crate.

use seedb_util::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Issues one HTTP/1.1 request and returns `(status, body)`.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let addr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other("no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;

    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: seedbd\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw).map_err(std::io::Error::other)
}

/// [`request`], parsing the body as JSON.
pub fn request_json(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, Json)> {
    let (status, body) = request(addr, method, path, body)?;
    let json = Json::parse(&body)
        .map_err(|e| std::io::Error::other(format!("unparseable body: {e}: {body}")))?;
    Ok((status, json))
}

/// Splits a raw HTTP/1.1 response into status code and body.
fn parse_response(raw: &str) -> Result<(u16, String), String> {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header/body separator in response: {raw:.120}"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line '{status_line}'"))?;
    Ok((status, body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_frames() {
        let (status, body) =
            parse_response("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{}");
        assert!(parse_response("garbage").is_err());
        assert!(parse_response("HTTP/1.1 abc\r\n\r\nx").is_err());
    }
}
