//! A tiny std-only HTTP client — enough to exercise `seedbd` from tests,
//! examples, and the CI smoke job without curl or an HTTP crate.

use seedb_util::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Status code, headers (names lowercased), body.
pub type HttpResponse = (u16, Vec<(String, String)>, String);

/// Issues one HTTP/1.1 request and returns `(status, body)`.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let (status, _, body) = request_with_headers(addr, method, path, body, &[])?;
    Ok((status, body))
}

/// Issues one HTTP/1.1 request with extra headers and returns
/// `(status, headers, body)`. Header names come back lowercased so
/// callers can look up `x-request-id` without case games.
pub fn request_with_headers(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
) -> std::io::Result<HttpResponse> {
    let addr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other("no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;

    let body = body.unwrap_or("");
    let extra: String = headers
        .iter()
        .map(|(k, v)| format!("{k}: {v}\r\n"))
        .collect();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: seedbd\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw).map_err(std::io::Error::other)
}

/// The first value of `name` (lowercase) in a header list from
/// [`request_with_headers`].
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// [`request`], parsing the body as JSON.
pub fn request_json(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, Json)> {
    let (status, body) = request(addr, method, path, body)?;
    let json = Json::parse(&body)
        .map_err(|e| std::io::Error::other(format!("unparseable body: {e}: {body}")))?;
    Ok((status, json))
}

/// Splits a raw HTTP/1.1 response into status code, headers (names
/// lowercased), and body.
fn parse_response(raw: &str) -> Result<HttpResponse, String> {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header/body separator in response: {raw:.120}"))?;
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line '{status_line}'"))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    Ok((status, headers, body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_frames() {
        let (status, headers, body) =
            parse_response("HTTP/1.1 200 OK\r\nContent-Length: 2\r\nX-Request-Id: r-1\r\n\r\n{}")
                .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{}");
        assert_eq!(header(&headers, "content-length"), Some("2"));
        assert_eq!(header(&headers, "x-request-id"), Some("r-1"));
        assert!(header(&headers, "retry-after").is_none());
        assert!(parse_response("garbage").is_err());
        assert!(parse_response("HTTP/1.1 abc\r\n\r\nx").is_err());
    }
}
