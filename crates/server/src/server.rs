//! The `seedbd` daemon: TCP accept loop, a bounded admission queue
//! feeding a fixed pool of connection workers, graceful shutdown, and
//! deterministic fault injection.
//!
//! ## Admission control
//!
//! The accept thread never blocks on connection handling: each accepted
//! socket is pushed onto a bounded [`ConnQueue`]; a fixed set of worker
//! threads pops and serves. When the queue is full the connection is
//! shed on a short-lived side thread — a `503` with a `Retry-After` hint
//! and a structured `{"error", "code"}` envelope, followed by a bounded
//! drain of the unread request so the close is a clean FIN the peer can
//! read the envelope past — so overload produces fast, honest rejections
//! instead of an unbounded backlog, and the shutdown flag is re-checked
//! on every accept no matter how slow the handlers or the shed peers
//! are.

use crate::cache::RecCache;
use crate::catalog::Catalog;
use crate::faults::{ConnFaults, FaultPlan, TruncatingWriter};
use crate::http::{read_request, Response};
use crate::router::{handle_traced, AppState, ServerStats};
use seedb_engine::parallel::default_parallelism;
use seedb_engine::{TraceCtx, WorkerBudget};
use seedb_obs::{LogLevel, Logger, Obs, DEFAULT_TRACE_BUFFER};
use seedb_util::Json;
use seedb_util::PLock;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// How long each write (and each post-envelope drain read) of a shed
/// response may block before the shed thread gives up on the peer (the
/// body is ~100 bytes, so this only triggers for a peer that refuses to
/// read at all).
const SHED_WRITE_TIMEOUT: Duration = Duration::from_secs(1);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Hard cap on rows per generated dataset instance.
    pub max_rows: usize,
    /// Instance size when a request does not specify `rows`.
    pub default_rows: usize,
    /// Cache memory budget in bytes (responses + partials share it).
    pub cache_bytes: usize,
    /// Dataset generation seed.
    pub seed: u64,
    /// Maximum concurrent connections (the worker-pool size).
    pub max_connections: usize,
    /// Accepted connections waiting for a worker beyond
    /// `max_connections`; when this queue is full new connections are
    /// shed immediately with a `503` + `Retry-After`.
    pub admission_queue: usize,
    /// Default `/recommend` deadline in milliseconds; 0 disables it.
    /// Requests override it with their own `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Fault-injection spec ([`crate::faults::FaultPlan::parse`]);
    /// `None` (the default) injects nothing.
    pub faults: Option<String>,
    /// Morsel-worker slots shared by all concurrent `/recommend` runs;
    /// defaults to the core count.
    pub worker_budget: usize,
    /// Completed traces kept in the flight recorder (`/debug/traces`);
    /// 0 disables tracing entirely (requests still get correlation ids).
    pub trace_buffer: usize,
    /// Requests slower than this emit their full trace as a structured
    /// log line; 0 disables the slow log.
    pub slow_ms: u64,
    /// Stderr log verbosity.
    pub log_level: LogLevel,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8642".to_owned(),
            max_rows: 50_000,
            default_rows: 5_000,
            cache_bytes: 64 << 20,
            seed: 17,
            max_connections: 32,
            admission_queue: 64,
            default_deadline_ms: 0,
            faults: None,
            worker_budget: default_parallelism(),
            trace_buffer: DEFAULT_TRACE_BUFFER,
            slow_ms: 1_000,
            log_level: LogLevel::Info,
        }
    }
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    max_connections: usize,
    admission_queue: usize,
    faults: Option<FaultPlan>,
}

impl Server {
    /// Binds the listener and builds the shared state. Serving starts
    /// with [`Server::run`] or [`Server::spawn`]. A malformed fault spec
    /// is an `InvalidInput` error — refusing to start beats silently
    /// running a different chaos schedule than the operator asked for.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let faults = match &config.faults {
            Some(spec) => Some(
                FaultPlan::parse(spec)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?,
            ),
            None => None,
        };
        let listener = TcpListener::bind(&config.addr)?;
        let catalog = Catalog::new(config.max_rows, config.default_rows, config.seed);
        if let Some(plan) = &faults {
            if plan.slow_catalog_ms > 0 {
                catalog.set_build_delay_ms(plan.slow_catalog_ms);
            }
        }
        let obs = Obs::new(
            config.trace_buffer,
            config.slow_ms,
            Logger::stderr(config.log_level),
        );
        let state = Arc::new(AppState {
            catalog,
            cache: Arc::new(RecCache::new(config.cache_bytes)),
            budget: WorkerBudget::new(config.worker_budget),
            stats: ServerStats::default(),
            seed: config.seed,
            default_deadline_ms: config.default_deadline_ms,
            obs: Arc::new(obs),
            start: Instant::now(),
        });
        Ok(Server {
            listener,
            state,
            max_connections: config.max_connections.max(1),
            admission_queue: config.admission_queue.max(1),
            faults,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (tests and benches peek at counters through it).
    pub fn state(&self) -> Arc<AppState> {
        self.state.clone()
    }

    /// Serves until `stop` is set (re-checked on every accepted
    /// connection — slot exhaustion can no longer pin the accept thread,
    /// so shutdown is never stuck behind slow handlers). Connections are
    /// queued to `max_connections` worker threads through a bounded
    /// admission queue; when the queue is full the connection is shed
    /// with a fast `503` on a short-lived side thread.
    pub fn run_until(self, stop: Arc<AtomicBool>) {
        self.state
            .stats
            .queue_capacity
            .store(self.admission_queue as u64, Ordering::Relaxed);
        let queue = ConnQueue::new(self.admission_queue);
        std::thread::scope(|scope| {
            for _ in 0..self.max_connections {
                let queue = &queue;
                let state = &self.state;
                let faults = &self.faults;
                scope.spawn(move || {
                    while let Some((stream, conn, trace, enqueued)) = queue.pop() {
                        state.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        let waited = enqueued.elapsed();
                        state
                            .stats
                            .admission_wait_histo
                            .record_us(waited.as_micros() as u64);
                        trace.record("queue_wait", 0, enqueued, waited, Vec::new());
                        let conn_faults = faults
                            .as_ref()
                            .map(|f| f.for_conn(conn))
                            .unwrap_or_default();
                        handle_connection(state, stream, conn_faults, &trace);
                    }
                });
            }
            let mut conn_index = 0u64;
            for conn in self.listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let index = conn_index;
                conn_index += 1;
                let trace = self.state.obs.begin();
                if let Err(stream) = queue.push(stream, index, trace) {
                    shed_detached(self.state.clone(), stream);
                } else {
                    self.state.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Workers drain what was already admitted, then exit.
            queue.close();
        });
    }

    /// Serves forever on the calling thread.
    pub fn run(self) {
        self.run_until(Arc::new(AtomicBool::new(false)));
    }

    /// Serves on a background thread; the returned handle shuts the
    /// daemon down when asked (or when dropped).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = self.state();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_for_thread = stop.clone();
        let thread = std::thread::spawn(move || self.run_until(stop_for_thread));
        Ok(ServerHandle {
            addr,
            state,
            stop,
            thread: Some(thread),
        })
    }
}

/// The bounded admission queue between the accept thread and the
/// connection workers. `push` never blocks (full ⇒ the stream comes
/// straight back for shedding); `pop` blocks until work arrives or the
/// queue closes, then drains whatever was already admitted.
struct ConnQueue {
    inner: PLock<QueueInner>,
    cv: Condvar,
    cap: usize,
}

struct QueueInner {
    deque: VecDeque<(TcpStream, u64, TraceCtx, Instant)>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            inner: PLock::new(
                "server.conn_queue",
                QueueInner {
                    deque: VecDeque::new(),
                    closed: false,
                },
            ),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admits a connection, or hands it back when the queue is full (or
    /// closed) so the caller can shed it. The enqueue instant rides along
    /// so the popping worker can account the admission wait to the trace.
    fn push(&self, stream: TcpStream, conn: u64, trace: TraceCtx) -> Result<(), TcpStream> {
        let mut q = self.inner.lock();
        if q.closed || q.deque.len() >= self.cap {
            return Err(stream);
        }
        q.deque.push_back((stream, conn, trace, Instant::now()));
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// The next admitted connection; `None` once closed and drained.
    fn pop(&self) -> Option<(TcpStream, u64, TraceCtx, Instant)> {
        let mut q = self.inner.lock();
        loop {
            if let Some(item) = q.deque.pop_front() {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = q.wait(&self.cv);
        }
    }

    fn close(&self) {
        self.inner.lock().closed = true;
        self.cv.notify_all();
    }
}

/// Sheds a connection the admission queue refused: a fast inline `503`
/// with a retry hint, written with a short timeout so a peer that won't
/// read can't stall the accept thread either.
/// Sheds one connection on a short-lived detached thread so the accept
/// loop never waits on a slow peer; falls back to shedding on the
/// calling thread if the spawn itself fails (the shed path is bounded
/// either way).
fn shed_detached(state: Arc<AppState>, stream: TcpStream) {
    let spawned = std::thread::Builder::new()
        .name("seedbd-shed".to_owned())
        .spawn({
            let state = state.clone();
            move || shed(&state, stream)
        });
    if spawned.is_err() {
        // Thread exhaustion: the closure (and the stream with it) is
        // dropped, so the peer sees a plain close with no envelope.
        // Count both so the operator can see sheds that went dark.
        state.stats.sheds.fetch_add(1, Ordering::Relaxed);
        state.stats.write_errors.fetch_add(1, Ordering::Relaxed);
    }
}

fn shed(state: &AppState, mut stream: TcpStream) {
    use std::io::Read;

    state.stats.sheds.fetch_add(1, Ordering::Relaxed);
    state
        .obs
        .logger
        .debug("shed", Json::obj().set("reason", "admission queue full"));
    let _ = stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT));
    let _ = stream.set_read_timeout(Some(SHED_WRITE_TIMEOUT));
    let response = Response::error_envelope(
        503,
        "server overloaded: admission queue is full",
        "overloaded",
        Some(1_000),
    );
    if response.write_to(&mut stream).is_err() {
        state.stats.write_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // The shed path never reads the request, and closing a socket with
    // received-but-unread bytes sends TCP RST — which races the envelope
    // and makes the peer see a connection reset instead of the 503. FIN
    // the write side, then drain what the peer sent (bounded in bytes
    // and reads, so a drip-feeding peer cannot pin this thread) before
    // the close.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 8 * 1024];
    for _ in 0..8 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Handle to a daemon running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The daemon's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's shared state.
    pub fn state(&self) -> Arc<AppState> {
        self.state.clone()
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One connection: apply its injected faults, read a request, route it,
/// write the response, close. Write failures are counted — a vanished
/// peer is routine under overload, but an operator watching `/statz`
/// must be able to see the rate. The trace spans the whole life of the
/// request (http_read → routing → response_write) and is sealed into the
/// flight recorder at the end.
fn handle_connection(
    state: &AppState,
    mut stream: TcpStream,
    faults: ConnFaults,
    trace: &TraceCtx,
) {
    if let Some(ms) = faults.slow_read_ms {
        std::thread::sleep(Duration::from_millis(ms));
    }
    if let Some(ms) = faults.starve_ms {
        // Seize every free morsel-worker permit for the window, forcing
        // concurrent /recommend runs down the degradation ladder.
        let hold = state.budget.try_lease(state.budget.total());
        std::thread::sleep(Duration::from_millis(ms));
        drop(hold);
    }
    let parsed = {
        let _span = trace.span("http_read");
        read_request(&mut stream)
    };
    let (route, request_id, response) = match parsed {
        Ok(request) => {
            let id = request
                .request_id
                .clone()
                .unwrap_or_else(|| state.obs.request_id_for(trace));
            let response = handle_traced(state, &request, trace);
            (request.path.clone(), id, response)
        }
        Err(err) => {
            let id = state.obs.request_id_for(trace);
            let response = Response::error(err.status(), &err.message()).with_request_id(&id);
            ("-".to_owned(), id, response)
        }
    };
    let status = response.status;
    let result = {
        let _span = trace.span("response_write");
        match faults.truncate_write_bytes {
            Some(cap) => response.write_to(&mut TruncatingWriter::new(&mut stream, cap)),
            None => response.write_to(&mut stream),
        }
    };
    if result.is_err() {
        state.stats.write_errors.fetch_add(1, Ordering::Relaxed);
    }
    state.obs.finish(trace, &request_id, &route, status);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn test_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_rows: 2_000,
            default_rows: 500,
            ..Default::default()
        }
    }

    #[test]
    fn spawn_serve_shutdown() {
        let server = Server::bind(test_config()).unwrap();
        let handle = server.spawn().unwrap();
        let (status, body) = client::request(handle.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));
        handle.shutdown();
    }

    #[test]
    fn malformed_requests_get_4xx_not_a_hang() {
        use std::io::{Read, Write};
        let handle = Server::bind(test_config()).unwrap().spawn().unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"GARBAGE\r\n\r\n").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        handle.shutdown();
    }

    #[test]
    fn bad_fault_spec_refuses_to_bind() {
        let config = ServerConfig {
            faults: Some("warp=1:2".to_owned()),
            ..test_config()
        };
        let err = match Server::bind(config) {
            Err(e) => e,
            Ok(_) => panic!("a bad fault spec must refuse to bind"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("unknown fault"), "{err}");
    }

    #[test]
    fn conn_queue_push_pop_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let make = || {
            let c = TcpStream::connect(addr).unwrap();
            let _ = listener.accept().unwrap();
            c
        };
        let queue = ConnQueue::new(2);
        let t = TraceCtx::disabled;
        assert!(queue.push(make(), 0, t()).is_ok());
        assert!(queue.push(make(), 1, t()).is_ok());
        // Full: the stream comes back for shedding.
        assert!(queue.push(make(), 2, t()).is_err());
        assert_eq!(queue.pop().unwrap().1, 0);
        assert!(queue.push(make(), 3, t()).is_ok());
        // Close drains what was admitted, then yields None.
        queue.close();
        assert!(queue.push(make(), 4, t()).is_err());
        assert_eq!(queue.pop().unwrap().1, 1);
        assert_eq!(queue.pop().unwrap().1, 3);
        assert!(queue.pop().is_none());
        assert!(queue.pop().is_none());
    }
}
