//! The `seedbd` daemon: TCP accept loop, bounded connection workers,
//! graceful shutdown.

use crate::cache::RecCache;
use crate::catalog::Catalog;
use crate::http::{read_request, Response};
use crate::router::{handle, AppState, ServerStats};
use seedb_engine::parallel::default_parallelism;
use seedb_engine::WorkerBudget;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Hard cap on rows per generated dataset instance.
    pub max_rows: usize,
    /// Instance size when a request does not specify `rows`.
    pub default_rows: usize,
    /// Cache memory budget in bytes (responses + partials share it).
    pub cache_bytes: usize,
    /// Dataset generation seed.
    pub seed: u64,
    /// Maximum concurrent connections (excess waits in the accept queue).
    pub max_connections: usize,
    /// Morsel-worker slots shared by all concurrent `/recommend` runs;
    /// defaults to the core count.
    pub worker_budget: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8642".to_owned(),
            max_rows: 50_000,
            default_rows: 5_000,
            cache_bytes: 64 << 20,
            seed: 17,
            max_connections: 32,
            worker_budget: default_parallelism(),
        }
    }
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    max_connections: usize,
}

impl Server {
    /// Binds the listener and builds the shared state. Serving starts
    /// with [`Server::run`] or [`Server::spawn`].
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(AppState {
            catalog: Catalog::new(config.max_rows, config.default_rows, config.seed),
            cache: Arc::new(RecCache::new(config.cache_bytes)),
            budget: WorkerBudget::new(config.worker_budget),
            stats: ServerStats::default(),
            seed: config.seed,
        });
        Ok(Server {
            listener,
            state,
            max_connections: config.max_connections.max(1),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (tests and benches peek at counters through it).
    pub fn state(&self) -> Arc<AppState> {
        self.state.clone()
    }

    /// Serves until `stop` is set (checked after each accepted
    /// connection). Connection handlers run on scoped threads, at most
    /// `max_connections` at a time; excess connections queue in the OS
    /// accept backlog.
    pub fn run_until(self, stop: Arc<AtomicBool>) {
        let conn_slots = WorkerBudget::new(self.max_connections);
        std::thread::scope(|scope| {
            for conn in self.listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let lease = conn_slots.lease(1);
                let state = &self.state;
                scope.spawn(move || {
                    let _lease = lease;
                    handle_connection(state, stream);
                });
            }
        });
    }

    /// Serves forever on the calling thread.
    pub fn run(self) {
        self.run_until(Arc::new(AtomicBool::new(false)));
    }

    /// Serves on a background thread; the returned handle shuts the
    /// daemon down when asked (or when dropped).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = self.state();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_for_thread = stop.clone();
        let thread = std::thread::spawn(move || self.run_until(stop_for_thread));
        Ok(ServerHandle {
            addr,
            state,
            stop,
            thread: Some(thread),
        })
    }
}

/// Handle to a daemon running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The daemon's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's shared state.
    pub fn state(&self) -> Arc<AppState> {
        self.state.clone()
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One connection: read a request, route it, write the response, close.
fn handle_connection(state: &AppState, mut stream: TcpStream) {
    let response = match read_request(&mut stream) {
        Ok(request) => handle(state, &request),
        Err(err) => Response::error(err.status(), &err.message()),
    };
    let _ = response.write_to(&mut stream);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn test_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_rows: 2_000,
            default_rows: 500,
            ..Default::default()
        }
    }

    #[test]
    fn spawn_serve_shutdown() {
        let server = Server::bind(test_config()).unwrap();
        let handle = server.spawn().unwrap();
        let (status, body) = client::request(handle.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));
        handle.shutdown();
    }

    #[test]
    fn malformed_requests_get_4xx_not_a_hang() {
        use std::io::{Read, Write};
        let handle = Server::bind(test_config()).unwrap().spawn().unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"GARBAGE\r\n\r\n").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        handle.shutdown();
    }
}
