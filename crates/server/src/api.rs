//! The `/recommend` API surface: request parsing and response rendering.
//!
//! A request names a catalog dataset and a target selection (a SQL
//! `WHERE`-clause body) and may override any *result-affecting* config
//! knob. Execution-shape knobs (parallelism, morsel size, engine
//! batching) are the daemon's business — they are bit-identical by
//! engine contract and governed by the admission budget, so the API
//! exposes `exec_mode` only for benchmarking and nothing else.

use seedb_core::{
    DistanceKind, ExecMode, ExecutionStrategy, PruningKind, Recommendation, ReferenceSpec,
    SeeDbConfig,
};
use seedb_data::Dataset;
use seedb_engine::AggFunc;
use seedb_util::Json;

/// How a `/recommend` request wants the cross-request cache used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Probe and fill the response and partials caches (the default).
    #[default]
    Auto,
    /// Skip the cache entirely: run the engine directly, store nothing.
    /// The response envelope reports `"cache": "bypass"` and the run
    /// increments the `/statz` bypass counter — the operator-visible
    /// signal that the cache was not in play.
    Bypass,
}

/// A parsed `/recommend` request body.
#[derive(Debug, Clone)]
pub struct RecommendRequest {
    /// Catalog dataset name (Table 1 spelling).
    pub dataset: String,
    /// Requested instance size (rows); the catalog clamps it.
    pub rows: Option<usize>,
    /// Target selection as a SQL `WHERE` body; `None` ⇒ the dataset's
    /// canonical target query.
    pub where_sql: Option<String>,
    /// Reference: `"whole"` (default), `"complement"`, or a SQL `WHERE`
    /// body for an arbitrary reference selection.
    pub reference: String,
    /// Cache disposition override (`"cache_mode"`: `"auto"`/`"bypass"`).
    pub cache_mode: CacheMode,
    /// EXPLAIN: when true the response envelope carries the chosen
    /// physical plan, per-phase timings, and pruning counters. Purely
    /// additive — it never changes what is computed or cached.
    pub explain: bool,
    /// Per-request deadline in milliseconds, measured from request
    /// arrival. `None` ⇒ the server's configured default; an explicit
    /// `0` disables the deadline for this request. Never part of the
    /// cache signature — a deadline changes whether a run finishes, not
    /// what a finished run computes.
    pub deadline_ms: Option<u64>,
    /// Result-affecting config overrides applied over the server default.
    pub config: SeeDbConfig,
}

/// The server's default per-request configuration: the paper's §5 `COMB`
/// setup (EMD, k = 10, CI pruning, 10 phases, all sharing optimizations)
/// — [`SeeDbConfig::default`]. Pruned runs are fully cache-eligible:
/// repeats hit the response cache and overlapping requests replay or
/// resume per-view phase prefixes (`SeeDb::recommend_cached`).
pub fn default_config() -> SeeDbConfig {
    SeeDbConfig::default()
}

impl RecommendRequest {
    /// Parses and validates a request body. Every error is a client
    /// error: the returned message goes into a 400 response.
    pub fn from_json(body: &str) -> Result<RecommendRequest, String> {
        let doc = Json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
        let dataset = doc
            .get("dataset")
            .and_then(Json::as_str)
            .ok_or("missing required string field 'dataset'")?
            .to_owned();
        let rows = match doc.get("rows") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("'rows' must be a non-negative integer")? as usize),
        };
        let where_sql = match doc.get("where") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_str().ok_or("'where' must be a SQL string")?.to_owned()),
        };
        let reference = match doc.get("reference") {
            None | Some(Json::Null) => "whole".to_owned(),
            Some(v) => v.as_str().ok_or("'reference' must be a string")?.to_owned(),
        };
        let cache_mode = match doc.get("cache_mode") {
            None | Some(Json::Null) => CacheMode::Auto,
            Some(v) => match v.as_str().ok_or("'cache_mode' must be a string")? {
                "auto" => CacheMode::Auto,
                "bypass" => CacheMode::Bypass,
                other => {
                    return Err(format!(
                        "unknown cache_mode '{other}' (expected 'auto' or 'bypass')"
                    ))
                }
            },
        };
        let explain = match doc.get("explain") {
            None | Some(Json::Null) => false,
            Some(v) => v.as_bool().ok_or("'explain' must be a boolean")?,
        };
        let deadline_ms = match doc.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or("'deadline_ms' must be a non-negative integer")?,
            ),
        };

        let mut config = default_config();
        if let Some(v) = doc.get("k") {
            config.k = v.as_u64().ok_or("'k' must be a positive integer")? as usize;
        }
        if let Some(v) = doc.get("metric") {
            let name = v.as_str().ok_or("'metric' must be a string")?;
            config.metric = parse_metric(name)?;
        }
        if let Some(v) = doc.get("strategy") {
            let name = v.as_str().ok_or("'strategy' must be a string")?;
            config.strategy = parse_strategy(name)?;
        }
        if let Some(v) = doc.get("pruning") {
            let name = v.as_str().ok_or("'pruning' must be a string")?;
            config.pruning = parse_pruning(name)?;
        }
        if let Some(v) = doc.get("num_phases") {
            config.num_phases =
                v.as_u64()
                    .ok_or("'num_phases' must be a positive integer")? as usize;
        }
        if let Some(v) = doc.get("delta") {
            config.delta = v.as_num().ok_or("'delta' must be a number")?;
        }
        if let Some(v) = doc.get("exec_mode") {
            let name = v.as_str().ok_or("'exec_mode' must be a string")?;
            config.engine_mode = parse_exec_mode(name)?;
        }
        if let Some(v) = doc.get("agg") {
            let items = v.as_arr().ok_or("'agg' must be an array of strings")?;
            let mut funcs = Vec::with_capacity(items.len());
            for item in items {
                let name = item.as_str().ok_or("'agg' must be an array of strings")?;
                funcs.push(name.parse::<AggFunc>().map_err(|e| e.to_string())?);
            }
            config.agg_functions = funcs;
        }
        config.validate().map_err(|e| e.to_string())?;

        Ok(RecommendRequest {
            dataset,
            rows,
            where_sql,
            reference,
            cache_mode,
            explain,
            deadline_ms,
            config,
        })
    }
}

fn parse_metric(name: &str) -> Result<DistanceKind, String> {
    let upper = name.to_ascii_uppercase();
    DistanceKind::ALL
        .into_iter()
        .find(|k| k.name() == upper)
        .ok_or_else(|| {
            let names: Vec<&str> = DistanceKind::ALL.iter().map(|k| k.name()).collect();
            format!("unknown metric '{name}' (expected one of {names:?})")
        })
}

fn parse_strategy(name: &str) -> Result<ExecutionStrategy, String> {
    let upper = name.to_ascii_uppercase();
    ExecutionStrategy::ALL
        .into_iter()
        .find(|s| s.label() == upper)
        .ok_or_else(|| {
            let names: Vec<&str> = ExecutionStrategy::ALL.iter().map(|s| s.label()).collect();
            format!("unknown strategy '{name}' (expected one of {names:?})")
        })
}

fn parse_pruning(name: &str) -> Result<PruningKind, String> {
    let upper = name.to_ascii_uppercase();
    PruningKind::ALL
        .into_iter()
        .find(|p| p.label() == upper)
        .ok_or_else(|| {
            let names: Vec<&str> = PruningKind::ALL.iter().map(|p| p.label()).collect();
            format!("unknown pruning '{name}' (expected one of {names:?})")
        })
}

fn parse_exec_mode(name: &str) -> Result<ExecMode, String> {
    let upper = name.to_ascii_uppercase();
    ExecMode::ALL
        .into_iter()
        .find(|m| m.label() == upper)
        .ok_or_else(|| format!("unknown exec_mode '{name}' (expected SCALAR or VECTORIZED)"))
}

/// Renders the reference for the response/signature (`whole`,
/// `complement`, or the raw SQL).
pub fn reference_label(reference: &ReferenceSpec, raw: &str) -> String {
    match reference {
        ReferenceSpec::WholeTable => "whole".to_owned(),
        ReferenceSpec::Complement => "complement".to_owned(),
        ReferenceSpec::Query(_) => raw.to_owned(),
    }
}

/// Renders the deterministic part of a `/recommend` response: everything
/// except per-request fields (latency, cache disposition, the request's
/// own WHERE spelling), which the router adds around this payload. The
/// payload must stay request-spelling-independent because it is shared
/// across every request with the same canonical signature — two
/// bit-identical recommendations render to byte-identical payloads
/// (float formatting is exact shortest round-trip).
pub fn render_recommendation(dataset: &Dataset, rec: &Recommendation) -> Json {
    let table = dataset.table.as_ref();
    let views: Vec<Json> = rec
        .views
        .iter()
        .enumerate()
        .map(|(rank, v)| {
            let schema = table.schema();
            Json::obj()
                .set("rank", rank)
                .set("view", v.spec.describe(table))
                .set("dim", schema.column(v.spec.dim).name.as_str())
                .set("measure", schema.column(v.spec.measure).name.as_str())
                .set("func", v.spec.func.name())
                .set("utility", v.utility)
                .set(
                    "groups",
                    v.group_labels
                        .iter()
                        .map(|l| Json::from(l.as_str()))
                        .collect::<Vec<_>>(),
                )
                .set("target", nums(&v.target_distribution))
                .set("reference", nums(&v.reference_distribution))
                .set("target_values", nums(&v.target_values))
                .set("reference_values", nums(&v.reference_values))
        })
        .collect();
    Json::obj()
        .set("dataset", dataset.name.as_str())
        .set("rows", dataset.rows())
        .set("views", views)
        .set("all_utilities", nums(&rec.all_utilities))
        .set(
            "stats",
            Json::obj()
                .set("queries_issued", rec.stats.queries_issued)
                .set("scan_passes", rec.stats.scan_passes)
                .set("rows_scanned", rec.stats.rows_scanned)
                .set("cells_visited", rec.stats.cells_visited)
                .set("groups_max", rec.stats.groups_max)
                .set("partitions_scanned", rec.stats.partitions_scanned)
                .set("partitions_pruned", rec.stats.partitions_pruned),
        )
}

fn nums(xs: &[f64]) -> Vec<Json> {
    xs.iter().map(|&x| Json::from(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_request() {
        let r = RecommendRequest::from_json(r#"{"dataset": "CENSUS"}"#).unwrap();
        assert_eq!(r.dataset, "CENSUS");
        assert_eq!(r.rows, None);
        assert_eq!(r.where_sql, None);
        assert_eq!(r.reference, "whole");
        assert_eq!(r.cache_mode, CacheMode::Auto);
        assert_eq!(r.deadline_ms, None);
        // The default is the paper's fastest configuration, not a
        // cache-convenient downgrade.
        assert_eq!(r.config.strategy, ExecutionStrategy::Comb);
        assert_eq!(r.config.pruning, PruningKind::Ci);
    }

    #[test]
    fn parses_cache_mode() {
        let r = RecommendRequest::from_json(r#"{"dataset": "CENSUS", "cache_mode": "bypass"}"#)
            .unwrap();
        assert_eq!(r.cache_mode, CacheMode::Bypass);
        let err = RecommendRequest::from_json(r#"{"dataset": "CENSUS", "cache_mode": "maybe"}"#)
            .unwrap_err();
        assert!(err.contains("cache_mode"), "{err}");
    }

    #[test]
    fn parses_deadline_ms() {
        let r =
            RecommendRequest::from_json(r#"{"dataset": "CENSUS", "deadline_ms": 250}"#).unwrap();
        assert_eq!(r.deadline_ms, Some(250));
        let r = RecommendRequest::from_json(r#"{"dataset": "CENSUS", "deadline_ms": 0}"#).unwrap();
        assert_eq!(r.deadline_ms, Some(0));
        let err = RecommendRequest::from_json(r#"{"dataset": "CENSUS", "deadline_ms": "fast"}"#)
            .unwrap_err();
        assert!(err.contains("deadline_ms"), "{err}");
        let err =
            RecommendRequest::from_json(r#"{"dataset": "CENSUS", "deadline_ms": -5}"#).unwrap_err();
        assert!(err.contains("deadline_ms"), "{err}");
    }

    #[test]
    fn parses_explain_flag() {
        let r = RecommendRequest::from_json(r#"{"dataset": "CENSUS"}"#).unwrap();
        assert!(!r.explain);
        let r = RecommendRequest::from_json(r#"{"dataset": "CENSUS", "explain": true}"#).unwrap();
        assert!(r.explain);
        let err =
            RecommendRequest::from_json(r#"{"dataset": "CENSUS", "explain": "yes"}"#).unwrap_err();
        assert!(err.contains("explain"), "{err}");
    }

    #[test]
    fn parses_full_overrides() {
        let r = RecommendRequest::from_json(
            r#"{"dataset": "BANK", "rows": 1000, "where": "age >= 40",
                "reference": "complement", "k": 3, "metric": "l1",
                "strategy": "comb", "pruning": "mab", "num_phases": 4,
                "delta": 0.1, "exec_mode": "scalar", "agg": ["AVG", "SUM"]}"#,
        )
        .unwrap();
        assert_eq!(r.rows, Some(1000));
        assert_eq!(r.where_sql.as_deref(), Some("age >= 40"));
        assert_eq!(r.reference, "complement");
        assert_eq!(r.config.k, 3);
        assert_eq!(r.config.metric, DistanceKind::L1);
        assert_eq!(r.config.strategy, ExecutionStrategy::Comb);
        assert_eq!(r.config.pruning, PruningKind::Mab);
        assert_eq!(r.config.num_phases, 4);
        assert_eq!(r.config.delta, 0.1);
        assert_eq!(r.config.engine_mode, ExecMode::Scalar);
        assert_eq!(r.config.agg_functions, vec![AggFunc::Avg, AggFunc::Sum]);
    }

    #[test]
    fn rejects_bad_fields_with_messages() {
        let cases = [
            (r#"{}"#, "dataset"),
            (r#"{"dataset": 3}"#, "dataset"),
            (r#"{"dataset": "X", "k": 0}"#, "k"),
            (r#"{"dataset": "X", "k": -1}"#, "k"),
            (r#"{"dataset": "X", "metric": "COSINE"}"#, "metric"),
            (r#"{"dataset": "X", "strategy": "TURBO"}"#, "strategy"),
            (r#"{"dataset": "X", "pruning": "YOLO"}"#, "pruning"),
            (r#"{"dataset": "X", "exec_mode": "GPU"}"#, "exec_mode"),
            (r#"{"dataset": "X", "agg": ["MEDIAN"]}"#, "MEDIAN"),
            (r#"{"dataset": "X", "delta": 2.0}"#, "delta"),
            (r#"not json"#, "JSON"),
        ];
        for (body, needle) in cases {
            let err = RecommendRequest::from_json(body).unwrap_err();
            assert!(
                err.to_lowercase().contains(&needle.to_lowercase()),
                "body {body}: error '{err}' should mention {needle}"
            );
        }
    }

    #[test]
    fn default_config_is_cache_eligible() {
        // COMB + CI is not exact-per-view — it is cacheable through the
        // phased resume path, which the core asserts is bit-identical.
        let cfg = default_config();
        assert!(!cfg.exact_per_view());
        assert!(matches!(
            cfg.strategy,
            ExecutionStrategy::Comb | ExecutionStrategy::CombEarly
        ));
    }
}
