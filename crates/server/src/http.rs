//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for a
//! JSON API daemon: request-line + headers + `Content-Length` bodies in,
//! status + headers + body out, one request per connection
//! (`Connection: close`). Hand-rolled because the registry is unreachable;
//! limits on header and body sizes keep a malicious peer from ballooning
//! memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Per-connection socket timeout; a stalled peer cannot pin a worker.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string included (the router splits it).
    pub path: String,
    /// Raw body bytes decoded to UTF-8 (empty when absent).
    pub body: String,
    /// Client-sent `X-Request-Id`, sanitized ([`sanitize_request_id`]);
    /// `None` when absent or unusable (the server then generates one).
    pub request_id: Option<String>,
}

impl Request {
    /// A request with no `X-Request-Id` header — the common case, and the
    /// constructor tests use.
    pub fn new(
        method: impl Into<String>,
        path: impl Into<String>,
        body: impl Into<String>,
    ) -> Self {
        Request {
            method: method.into(),
            path: path.into(),
            body: body.into(),
            request_id: None,
        }
    }
}

/// Longest client-supplied request id the server will echo.
pub const MAX_REQUEST_ID_LEN: usize = 64;

/// Validates a client-sent request id for safe echoing into headers,
/// JSON envelopes, and log lines: non-empty, at most
/// [`MAX_REQUEST_ID_LEN`] bytes, and limited to URL-safe characters
/// (alphanumerics plus `-`, `_`, `.`). Anything else is dropped and the
/// server generates its own id instead — a header is attacker-controlled
/// input, not a trusted correlation key.
pub fn sanitize_request_id(raw: &str) -> Option<String> {
    let trimmed = raw.trim();
    let ok = !trimmed.is_empty()
        && trimmed.len() <= MAX_REQUEST_ID_LEN
        && trimmed
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'));
    ok.then(|| trimmed.to_owned())
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body text (JSON for every API route).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// `Retry-After` header value in seconds, for shed responses.
    pub retry_after: Option<u64>,
    /// `X-Request-Id` header value echoed back to the client.
    pub request_id: Option<String>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            body,
            content_type: "application/json",
            retry_after: None,
            request_id: None,
        }
    }

    /// A `200 OK` response with an explicit content type — the Prometheus
    /// exposition route serves `text/plain; version=0.0.4` through this.
    pub fn text(body: String, content_type: &'static str) -> Response {
        Response {
            status: 200,
            body,
            content_type,
            retry_after: None,
            request_id: None,
        }
    }

    /// An error response with a JSON `{"error": …}` body.
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            body: seedb_util::Json::obj().set("error", message).compact(),
            content_type: "application/json",
            retry_after: None,
            request_id: None,
        }
    }

    /// Sets the `X-Request-Id` header echoed to the client.
    pub fn with_request_id(mut self, id: &str) -> Response {
        self.request_id = Some(id.to_owned());
        self
    }

    /// A structured error envelope: `{"error": …, "code": …}` plus, when
    /// the client should back off and retry, a `retry_after_ms` field and
    /// the matching `Retry-After` header (rounded up to whole seconds —
    /// the header's granularity). `error` stays a plain string so every
    /// error body, coded or not, parses the same way.
    pub fn error_envelope(
        status: u16,
        message: &str,
        code: &str,
        retry_after_ms: Option<u64>,
    ) -> Response {
        let mut body = seedb_util::Json::obj()
            .set("error", message)
            .set("code", code);
        if let Some(ms) = retry_after_ms {
            body = body.set("retry_after_ms", ms);
        }
        Response {
            status,
            body: body.compact(),
            content_type: "application/json",
            retry_after: retry_after_ms.map(|ms| ms.div_ceil(1000).max(1)),
            request_id: None,
        }
    }

    /// Standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Serializes status line, headers, and body to `out`.
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        if let Some(secs) = self.retry_after {
            write!(out, "Retry-After: {secs}\r\n")?;
        }
        if let Some(id) = &self.request_id {
            write!(out, "X-Request-Id: {id}\r\n")?;
        }
        out.write_all(b"\r\n")?;
        out.write_all(self.body.as_bytes())?;
        out.flush()
    }
}

/// Why a request could not be parsed. Each maps to a 4xx the connection
/// handler sends before closing.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line or headers.
    Bad(String),
    /// Head or body exceeded its size limit.
    TooLarge,
    /// The peer closed or stalled before a full request arrived.
    Incomplete,
}

impl ParseError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Bad(_) => 400,
            ParseError::TooLarge => 413,
            ParseError::Incomplete => 408,
        }
    }

    /// Human-readable description for the error body.
    pub fn message(&self) -> String {
        match self {
            ParseError::Bad(m) => format!("malformed request: {m}"),
            ParseError::TooLarge => "request too large".to_owned(),
            ParseError::Incomplete => "incomplete request".to_owned(),
        }
    }
}

/// Reads one HTTP/1.1 request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    // The head budget is enforced *during* reads via `Take`: a peer
    // streaming a newline-free flood hits the limit after 16 KiB instead
    // of being buffered unboundedly until a '\n' arrives.
    let mut reader = BufReader::new(stream).take(MAX_HEAD_BYTES as u64);

    let mut line = String::new();
    read_line(&mut reader, &mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Bad("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| ParseError::Bad("missing path".into()))?
        .to_owned();
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Bad("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported version {version}")));
    }

    let mut content_length = 0usize;
    let mut request_id = None;
    loop {
        line.clear();
        read_line(&mut reader, &mut line)?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ParseError::Bad(format!("bad header line '{trimmed}'")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Bad("bad Content-Length".into()))?;
            if content_length > MAX_BODY_BYTES {
                return Err(ParseError::TooLarge);
            }
        } else if name.eq_ignore_ascii_case("x-request-id") {
            request_id = sanitize_request_id(value);
        }
    }

    // Re-purpose the limiter for the body (already checked ≤ the body
    // cap, so the read itself can never balloon).
    reader.set_limit(content_length as u64);
    let mut body_bytes = vec![0u8; content_length];
    reader
        .read_exact(&mut body_bytes)
        .map_err(|_| ParseError::Incomplete)?;
    let body = String::from_utf8(body_bytes)
        .map_err(|_| ParseError::Bad("body is not valid UTF-8".into()))?;

    Ok(Request {
        method,
        path,
        body,
        request_id,
    })
}

/// Reads one CRLF-terminated line from the head-budgeted reader. A line
/// cut short by the byte limit (no trailing newline, limiter exhausted)
/// is an oversized head, not a truncated request.
fn read_line(
    reader: &mut std::io::Take<impl BufRead>,
    line: &mut String,
) -> Result<(), ParseError> {
    let n = reader.read_line(line).map_err(|_| ParseError::Incomplete)?;
    if n == 0 {
        return Err(ParseError::Incomplete);
    }
    if !line.ends_with('\n') && reader.limit() == 0 {
        return Err(ParseError::TooLarge);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips raw bytes through a real socket into `read_request`.
    fn parse_raw(raw: &[u8]) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Keep the socket open briefly so reads see EOF, not reset.
            s.shutdown(std::net::Shutdown::Write).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = parse_raw(
            b"POST /recommend HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 9\r\n\r\n{\"k\": 3}\n",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, "{\"k\": 3}\n");
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert!(matches!(
            parse_raw(b"NONSENSE\r\n\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            parse_raw(b"GET /x SPDY/99\r\n\r\n"),
            Err(ParseError::Bad(_))
        ));
    }

    #[test]
    fn newline_free_flood_is_rejected_at_the_budget() {
        // A head with no '\n' at all must be cut off at MAX_HEAD_BYTES,
        // not buffered until the peer deigns to send a newline.
        // Sized to clear the budget while fitting loopback socket buffers
        // (the writer thread must not block once the parser bails out).
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 8 * 1024));
        assert!(matches!(parse_raw(&raw), Err(ParseError::TooLarge)));
        // Same for many well-formed header lines totalling too much.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..300 {
            raw.extend(format!("X-Filler-{i}: {}\r\n", "v".repeat(64)).into_bytes());
        }
        raw.extend(b"\r\n");
        assert!(matches!(parse_raw(&raw), Err(ParseError::TooLarge)));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_raw(raw.as_bytes()),
            Err(ParseError::TooLarge)
        ));
    }

    #[test]
    fn truncated_body_is_incomplete() {
        assert!(matches!(
            parse_raw(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ParseError::Incomplete)
        ));
    }

    #[test]
    fn response_serialization_includes_frame() {
        let mut out = Vec::new();
        Response::json("{\"a\":1}".to_owned())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("{\"a\":1}"));
        let mut out = Vec::new();
        Response::error(404, "no such route")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("no such route"));
    }

    #[test]
    fn request_id_header_is_parsed_and_sanitized() {
        let req = parse_raw(b"GET /healthz HTTP/1.1\r\nX-Request-Id: abc-123.Z\r\n\r\n").unwrap();
        assert_eq!(req.request_id.as_deref(), Some("abc-123.Z"));
        // Case-insensitive header name, value whitespace trimmed.
        let req = parse_raw(b"GET / HTTP/1.1\r\nx-request-id:  r42 \r\n\r\n").unwrap();
        assert_eq!(req.request_id.as_deref(), Some("r42"));
        // Hostile values are dropped, not echoed.
        for bad in [
            "evil\"id",
            "a b",
            "x\tb",
            "",
            "id{with}braces",
            &"a".repeat(MAX_REQUEST_ID_LEN + 1),
        ] {
            assert_eq!(sanitize_request_id(bad), None, "{bad:?}");
        }
        let raw = b"GET / HTTP/1.1\r\nX-Request-Id: bad id\r\n\r\n";
        assert_eq!(parse_raw(raw).unwrap().request_id, None);
    }

    #[test]
    fn response_echoes_request_id_header() {
        let mut out = Vec::new();
        Response::json("{}".into())
            .with_request_id("r-00000001")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Request-Id: r-00000001\r\n"), "{text}");
    }

    #[test]
    fn error_envelope_carries_code_and_retry_after() {
        let r = Response::error_envelope(503, "too busy", "overloaded", Some(1500));
        assert_eq!(r.status, 503);
        let j = seedb_util::Json::parse(&r.body).unwrap();
        assert_eq!(j.get("error").unwrap().as_str(), Some("too busy"));
        assert_eq!(j.get("code").unwrap().as_str(), Some("overloaded"));
        assert_eq!(j.get("retry_after_ms").unwrap().as_u64(), Some(1500));
        let mut out = Vec::new();
        r.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");

        // Without a retry hint there is no header and no field.
        let r = Response::error_envelope(504, "too slow", "deadline_exceeded", None);
        assert_eq!(r.reason(), "Gateway Timeout");
        let j = seedb_util::Json::parse(&r.body).unwrap();
        assert!(j.get("retry_after_ms").is_none());
        let mut out = Vec::new();
        r.write_to(&mut out).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("Retry-After"));
    }
}
