//! The dataset catalog: lazily generated Table 1 datasets plus ingested
//! CSV datasets, shared immutably across requests.
//!
//! `seedbd` serves the paper's Table 1 inventory (`seedb_data::registry`).
//! Generating a dataset is expensive, so the catalog builds each
//! `(name, rows)` instance once, on first use, and hands out `Arc`s; the
//! tables themselves are immutable, so every concurrent request can scan
//! the same storage. A row cap protects the daemon from a request
//! demanding a 60-million-row AIR10 build — and from a `POST /datasets`
//! upload larger than the daemon is configured to hold.
//!
//! Ingested datasets ([`Catalog::ingest_csv`]) are first-class: they are
//! served by name like Table 1 entries (ingested names shadow Table 1
//! names), listed by `GET /datasets`, and carry a content fingerprint
//! ([`crate::csv::fingerprint`]) that keys their cross-request cache
//! namespace ([`seedb_core::ingested_instance_signature`]) — re-uploading
//! different bytes under the same name re-keys every cache entry.
//!
//! Every failure mode is a typed [`CatalogError`] with an HTTP status:
//! unknown names and malformed CSV are client errors (400/404), oversized
//! uploads are 413 — never a blanket 500.

use crate::csv;
use seedb_data::registry::{generate_by_name, table1};
use seedb_data::Dataset;
use seedb_engine::Predicate;
use seedb_storage::{ColumnId, ColumnRole, StoreKind, TableBuilder};
use seedb_util::Json;
use seedb_util::PLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Why a catalog operation failed. Each variant maps to the HTTP status a
/// route should answer with ([`CatalogError::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// No Table 1 entry or ingested dataset has this name.
    UnknownDataset(String),
    /// The name exists in Table 1 but has no generator wired up.
    NoGenerator(String),
    /// The uploaded CSV failed to parse or has an unusable schema.
    BadCsv(String),
    /// The upload holds more rows than the daemon's row cap.
    RowCapExceeded {
        /// Rows in the upload.
        rows: usize,
        /// The configured cap.
        max: usize,
    },
}

impl CatalogError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            CatalogError::UnknownDataset(_)
            | CatalogError::NoGenerator(_)
            | CatalogError::BadCsv(_) => 400,
            CatalogError::RowCapExceeded { .. } => 413,
        }
    }
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownDataset(name) => write!(f, "unknown dataset '{name}'"),
            CatalogError::NoGenerator(name) => write!(f, "no generator for '{name}'"),
            CatalogError::BadCsv(msg) => write!(f, "bad CSV: {msg}"),
            CatalogError::RowCapExceeded { rows, max } => {
                write!(f, "dataset has {rows} rows, exceeding the cap of {max}")
            }
        }
    }
}

/// An ingested dataset plus the fingerprint of the bytes it came from.
struct Ingested {
    dataset: Arc<Dataset>,
    fingerprint: u64,
}

/// Lazily populated, thread-safe dataset store.
pub struct Catalog {
    /// Hard cap on rows per dataset instance (generated or ingested).
    max_rows: usize,
    /// Default rows when a request does not say (≤ `max_rows`).
    default_rows: usize,
    /// Generation seed (fixed so instances are deterministic).
    seed: u64,
    /// Store layout for generated tables.
    kind: StoreKind,
    /// Built instances, keyed by `(name, rows)`.
    built: PLock<HashMap<(String, usize), Arc<Dataset>>>,
    /// Ingested instances, keyed by name; a re-upload replaces.
    ingested: PLock<HashMap<String, Ingested>>,
    /// Fault-injection hook ([`crate::faults`]): milliseconds every
    /// cold build sleeps before generating. Zero (the default) is free.
    build_delay_ms: AtomicU64,
}

impl Catalog {
    /// A catalog capping dataset instances at `max_rows` rows.
    pub fn new(max_rows: usize, default_rows: usize, seed: u64) -> Self {
        let max_rows = max_rows.max(1);
        Catalog {
            max_rows,
            default_rows: default_rows.clamp(1, max_rows),
            seed,
            kind: StoreKind::Column,
            built: PLock::new("server.catalog.built", HashMap::new()),
            ingested: PLock::new("server.catalog.ingested", HashMap::new()),
            build_delay_ms: AtomicU64::new(0),
        }
    }

    /// Fault-injection hook: make every cold dataset build sleep `ms`
    /// milliseconds first, widening the window in which a request
    /// deadline can expire mid-build. Cached instances stay instant.
    pub fn set_build_delay_ms(&self, ms: u64) {
        self.build_delay_ms.store(ms, Ordering::Relaxed);
    }

    /// The row cap.
    pub fn max_rows(&self) -> usize {
        self.max_rows
    }

    /// Effective row count for a request: `requested` clamped to the cap,
    /// or the default when unspecified. Ingested datasets are fixed-size;
    /// their actual row count always wins.
    pub fn resolve_rows(&self, name: &str, requested: Option<usize>) -> usize {
        if let Some(rows) = self.ingested_rows(name) {
            return rows;
        }
        let full = table1()
            .into_iter()
            .find(|d| d.name == name)
            .map(|d| d.rows)
            .unwrap_or(self.max_rows);
        requested
            .unwrap_or(self.default_rows)
            .clamp(1, self.max_rows)
            .min(full)
    }

    /// The dataset instance for `(name, rows)`. Ingested names resolve to
    /// their (fixed-size) table; Table 1 names are generated on first use,
    /// with `rows` clamped to the row cap (and the dataset's full size)
    /// *here*, where the expensive build happens — the cap must hold for
    /// every caller, not just the HTTP route that goes through
    /// [`Catalog::resolve_rows`].
    pub fn dataset(&self, name: &str, rows: usize) -> Result<Arc<Dataset>, CatalogError> {
        if let Some(ds) = self.ingested_dataset(name) {
            return Ok(ds);
        }
        let info = table1()
            .into_iter()
            .find(|d| d.name == name)
            .ok_or_else(|| CatalogError::UnknownDataset(name.to_owned()))?;
        let rows = rows.clamp(1, self.max_rows).min(info.rows);
        let key = (name.to_owned(), rows);
        if let Some(ds) = self.built.lock().get(&key) {
            return Ok(ds.clone());
        }
        // Generate outside the lock: builds take seconds at large scales
        // and must not block requests for other datasets. Two racing
        // requests may both build; the second insert wins and both Arcs
        // are valid (generation is deterministic).
        let delay = self.build_delay_ms.load(Ordering::Relaxed);
        if delay > 0 {
            std::thread::sleep(std::time::Duration::from_millis(delay));
        }
        let scale = (rows as f64 / info.rows as f64).min(1.0);
        let ds = generate_by_name(name, scale, self.seed, self.kind)
            .ok_or_else(|| CatalogError::NoGenerator(name.to_owned()))?;
        let ds = Arc::new(ds);
        self.built.lock().insert(key, ds.clone());
        Ok(ds)
    }

    /// Ingests CSV text as dataset `name`, replacing any previous upload
    /// under that name. The table is built partition-at-a-time (zone maps
    /// sealed during load, like every other table); the canonical target
    /// is the first dimension's first-interned label, so `/recommend`
    /// works without a `where` the same way it does for Table 1 entries.
    pub fn ingest_csv(&self, name: &str, text: &str) -> Result<Arc<Dataset>, CatalogError> {
        let parsed = csv::parse_csv(text).map_err(CatalogError::BadCsv)?;
        if parsed.rows.is_empty() {
            return Err(CatalogError::BadCsv("no data records after header".into()));
        }
        if parsed.rows.len() > self.max_rows {
            return Err(CatalogError::RowCapExceeded {
                rows: parsed.rows.len(),
                max: self.max_rows,
            });
        }
        let n_dims = parsed
            .defs
            .iter()
            .filter(|d| d.role == ColumnRole::Dimension)
            .count();
        let n_measures = parsed
            .defs
            .iter()
            .filter(|d| d.role == ColumnRole::Measure)
            .count();
        if n_dims == 0 || n_measures == 0 {
            return Err(CatalogError::BadCsv(format!(
                "need at least one dimension (text/bool column) and one measure \
                 (numeric column); inferred {n_dims} dimension(s) and {n_measures} measure(s)"
            )));
        }
        let Some(target_col) = parsed
            .defs
            .iter()
            .position(|d| d.role == ColumnRole::Dimension)
        else {
            // Unreachable given the n_dims check above, but a malformed
            // upload must never panic the serving path.
            return Err(CatalogError::BadCsv("no dimension column".into()));
        };

        let mut builder =
            TableBuilder::try_new(parsed.defs).map_err(|e| CatalogError::BadCsv(e.to_string()))?;
        for row in &parsed.rows {
            builder
                .push_row(row)
                .map_err(|e| CatalogError::BadCsv(e.to_string()))?;
        }
        let table = builder
            .build(self.kind)
            .map_err(|e| CatalogError::BadCsv(e.to_string()))?;

        // Canonical target: first dimension = its first interned label
        // (code 0). Bool dimensions have no dictionary; target `= true`.
        let col = ColumnId(target_col as u32);
        let target = if table.dictionary(col).is_some() {
            Predicate::CatEq { col, code: 0 }
        } else {
            Predicate::BoolEq { col, value: true }
        };
        let dataset = Arc::new(Dataset {
            name: name.to_owned(),
            table,
            target,
            task: "ingested".to_owned(),
        });
        self.ingested.lock().insert(
            name.to_owned(),
            Ingested {
                dataset: dataset.clone(),
                fingerprint: csv::fingerprint(text),
            },
        );
        Ok(dataset)
    }

    /// The ingested dataset named `name`, if any.
    pub fn ingested_dataset(&self, name: &str) -> Option<Arc<Dataset>> {
        self.ingested.lock().get(name).map(|i| i.dataset.clone())
    }

    /// Content fingerprint of the ingested dataset named `name`, if any.
    pub fn ingested_fingerprint(&self, name: &str) -> Option<u64> {
        self.ingested.lock().get(name).map(|i| i.fingerprint)
    }

    fn ingested_rows(&self, name: &str) -> Option<usize> {
        self.ingested.lock().get(name).map(|i| i.dataset.rows())
    }

    /// Names of instances built so far, as `name@rows` (generated) and
    /// `name@rows (ingested)`, sorted.
    pub fn loaded(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .built
            .lock()
            .keys()
            .map(|(name, rows)| format!("{name}@{rows}"))
            .collect();
        names.extend(
            self.ingested
                .lock()
                .values()
                .map(|i| format!("{}@{} (ingested)", i.dataset.name, i.dataset.rows())),
        );
        names.sort();
        names
    }

    /// The `GET /datasets` body: the Table 1 inventory, ingested uploads,
    /// and what this process has materialized.
    pub fn list_json(&self) -> Json {
        let datasets: Vec<Json> = table1()
            .into_iter()
            .map(|d| {
                Json::obj()
                    .set("name", d.name)
                    .set("description", d.description)
                    .set("category", d.category)
                    .set("full_rows", d.rows)
                    .set("dims", d.dims)
                    .set("measures", d.measures)
                    .set("views", d.views)
            })
            .collect();
        let ingested: Vec<Json> = {
            let guard = self.ingested.lock();
            let mut entries: Vec<&Ingested> = guard.values().collect();
            entries.sort_by(|a, b| a.dataset.name.cmp(&b.dataset.name));
            entries
                .iter()
                .map(|i| {
                    let (dims, measures, views) = i.dataset.shape();
                    Json::obj()
                        .set("name", i.dataset.name.as_str())
                        .set("rows", i.dataset.rows())
                        .set("dims", dims)
                        .set("measures", measures)
                        .set("views", views)
                        .set("fingerprint", format!("{:016x}", i.fingerprint))
                })
                .collect()
        };
        let loaded: Vec<Json> = self.loaded().into_iter().map(Json::from).collect();
        Json::obj()
            .set("datasets", datasets)
            .set("ingested", ingested)
            .set("max_rows", self.max_rows)
            .set("default_rows", self.default_rows)
            .set("loaded", loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::new(2_000, 1_000, 17)
    }

    /// `unwrap_err` for results whose Ok side (`Dataset`) has no `Debug`.
    fn expect_err(r: Result<Arc<Dataset>, CatalogError>) -> CatalogError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("expected an error"),
        }
    }

    #[test]
    fn builds_lazily_and_shares_instances() {
        let c = catalog();
        assert!(c.loaded().is_empty());
        let a = c.dataset("HOUSING", 500).unwrap();
        let b = c.dataset("HOUSING", 500).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same instance must be shared");
        assert_eq!(c.loaded(), vec!["HOUSING@500".to_owned()]);
        // A different row count is a different instance.
        let d = c.dataset("HOUSING", 200).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
        assert!(d.rows() <= a.rows());
    }

    #[test]
    fn unknown_dataset_is_a_client_error() {
        let err = expect_err(catalog().dataset("NOPE", 100));
        assert_eq!(err, CatalogError::UnknownDataset("NOPE".into()));
        assert_eq!(err.status(), 400);
        assert!(err.to_string().contains("NOPE"));
    }

    #[test]
    fn dataset_enforces_the_row_cap_itself() {
        // The cap must hold even for callers that bypass resolve_rows —
        // a direct 60M-row AIR10 demand builds the capped instance.
        let c = catalog();
        let ds = c.dataset("CENSUS", 60_000_000).unwrap();
        assert!(ds.rows() <= 2_100, "rows = {}", ds.rows());
        assert_eq!(c.loaded(), vec!["CENSUS@2000".to_owned()]);
        // And it shares the instance with the equivalent clamped request.
        let same = c.dataset("CENSUS", 2_000).unwrap();
        assert!(Arc::ptr_eq(&ds, &same));
    }

    #[test]
    fn resolve_rows_clamps_to_cap_and_full_size() {
        let c = catalog();
        assert_eq!(c.resolve_rows("CENSUS", None), 1_000);
        assert_eq!(c.resolve_rows("CENSUS", Some(99_999)), 2_000);
        assert_eq!(c.resolve_rows("CENSUS", Some(0)), 1);
        // HOUSING only has 500 rows in Table 1.
        assert_eq!(c.resolve_rows("HOUSING", Some(99_999)), 500);
    }

    #[test]
    fn list_json_inventories_table1() {
        let c = catalog();
        c.dataset("HOUSING", 500).unwrap();
        let j = c.list_json();
        assert_eq!(j.get("datasets").unwrap().as_arr().unwrap().len(), 10);
        assert_eq!(j.get("max_rows").unwrap().as_u64(), Some(2_000));
        let loaded = j.get("loaded").unwrap().as_arr().unwrap();
        assert_eq!(loaded.len(), 1);
    }

    #[test]
    fn ingests_csv_and_serves_it_by_name() {
        let c = catalog();
        let csv = "city,visits\nparis,10\nparis,20\nlyon,5\n";
        let ds = c.ingest_csv("trips", csv).unwrap();
        assert_eq!(ds.rows(), 3);
        assert_eq!(ds.task, "ingested");
        assert_eq!(
            ds.target,
            Predicate::CatEq {
                col: ColumnId(0),
                code: 0
            }
        );
        // Served by name, ignoring the rows argument.
        let again = c.dataset("trips", 999_999).unwrap();
        assert!(Arc::ptr_eq(&ds, &again));
        assert_eq!(c.resolve_rows("trips", Some(1)), 3);
        assert_eq!(c.ingested_fingerprint("trips"), Some(csv::fingerprint(csv)));
        assert!(c.loaded().iter().any(|l| l.contains("ingested")));
        let j = c.list_json();
        assert_eq!(j.get("ingested").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn reingest_replaces_and_refingerprints() {
        let c = catalog();
        c.ingest_csv("d", "a,m\nx,1\n").unwrap();
        let f1 = c.ingested_fingerprint("d").unwrap();
        c.ingest_csv("d", "a,m\nx,2\n").unwrap();
        let f2 = c.ingested_fingerprint("d").unwrap();
        assert_ne!(f1, f2);
        assert_eq!(c.ingested_dataset("d").unwrap().rows(), 1);
    }

    #[test]
    fn ingest_rejects_unusable_schemas_as_client_errors() {
        let c = catalog();
        // No measure column.
        let err = expect_err(c.ingest_csv("d", "a,b\nx,y\n"));
        assert_eq!(err.status(), 400);
        assert!(err.to_string().contains("measure"), "{err}");
        // No dimension column.
        let err = expect_err(c.ingest_csv("d", "m,n\n1,2\n"));
        assert_eq!(err.status(), 400);
        // Header only.
        let err = expect_err(c.ingest_csv("d", "a,m\n"));
        assert_eq!(err.status(), 400);
        // Malformed CSV.
        let err = expect_err(c.ingest_csv("d", "a,m\nx\n"));
        assert_eq!(err.status(), 400);
        // Nothing was stored.
        assert!(c.ingested_dataset("d").is_none());
    }

    #[test]
    fn ingest_row_cap_is_a_413_not_a_500() {
        let c = Catalog::new(3, 3, 17);
        let mut csv = String::from("a,m\n");
        for i in 0..4 {
            csv.push_str(&format!("x,{i}\n"));
        }
        let err = expect_err(c.ingest_csv("big", &csv));
        assert_eq!(err, CatalogError::RowCapExceeded { rows: 4, max: 3 });
        assert_eq!(err.status(), 413);
        assert!(c.ingested_dataset("big").is_none());
    }

    #[test]
    fn bool_only_dimension_gets_a_bool_target() {
        let c = catalog();
        let ds = c.ingest_csv("flags", "flag,m\ntrue,1\nfalse,2\n").unwrap();
        assert_eq!(
            ds.target,
            Predicate::BoolEq {
                col: ColumnId(0),
                value: true
            }
        );
    }

    #[test]
    fn ingested_tables_are_partitioned() {
        let c = Catalog::new(100_000, 1_000, 17);
        let mut csv = String::from("a,m\n");
        for i in 0..20_000 {
            csv.push_str(&format!("x{},{}\n", i % 3, i));
        }
        let ds = c.ingest_csv("parts", &csv).unwrap();
        // DEFAULT_PARTITION_ROWS = 8192 → 20_000 rows = 3 partitions.
        assert_eq!(ds.table.partitions().len(), 3);
    }
}
