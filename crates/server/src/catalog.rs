//! The dataset catalog: lazily generated Table 1 datasets shared
//! immutably across requests.
//!
//! `seedbd` serves the paper's Table 1 inventory (`seedb_data::registry`).
//! Generating a dataset is expensive, so the catalog builds each
//! `(name, rows)` instance once, on first use, and hands out `Arc`s; the
//! tables themselves are immutable, so every concurrent request can scan
//! the same storage. A row cap protects the daemon from a request
//! demanding a 60-million-row AIR10 build.

use seedb_data::registry::{generate_by_name, table1};
use seedb_data::Dataset;
use seedb_storage::StoreKind;
use seedb_util::Json;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Lazily populated, thread-safe dataset store.
pub struct Catalog {
    /// Hard cap on rows per generated dataset instance.
    max_rows: usize,
    /// Default rows when a request does not say (≤ `max_rows`).
    default_rows: usize,
    /// Generation seed (fixed so instances are deterministic).
    seed: u64,
    /// Store layout for generated tables.
    kind: StoreKind,
    /// Built instances, keyed by `(name, rows)`.
    built: Mutex<HashMap<(String, usize), Arc<Dataset>>>,
}

impl Catalog {
    /// A catalog capping generated instances at `max_rows` rows.
    pub fn new(max_rows: usize, default_rows: usize, seed: u64) -> Self {
        let max_rows = max_rows.max(1);
        Catalog {
            max_rows,
            default_rows: default_rows.clamp(1, max_rows),
            seed,
            kind: StoreKind::Column,
            built: Mutex::new(HashMap::new()),
        }
    }

    /// The row cap.
    pub fn max_rows(&self) -> usize {
        self.max_rows
    }

    /// Effective row count for a request: `requested` clamped to the cap,
    /// or the default when unspecified.
    pub fn resolve_rows(&self, name: &str, requested: Option<usize>) -> usize {
        let full = table1()
            .into_iter()
            .find(|d| d.name == name)
            .map(|d| d.rows)
            .unwrap_or(self.max_rows);
        requested
            .unwrap_or(self.default_rows)
            .clamp(1, self.max_rows)
            .min(full)
    }

    /// The dataset instance for `(name, rows)`, generating it on first
    /// use. `rows` is clamped to the row cap (and the dataset's full
    /// size) *here*, where the expensive build happens — the cap must
    /// hold for every caller, not just the HTTP route that goes through
    /// [`Catalog::resolve_rows`]. `Err` carries a message for unknown
    /// dataset names.
    pub fn dataset(&self, name: &str, rows: usize) -> Result<Arc<Dataset>, String> {
        let info = table1()
            .into_iter()
            .find(|d| d.name == name)
            .ok_or_else(|| format!("unknown dataset '{name}'"))?;
        let rows = rows.clamp(1, self.max_rows).min(info.rows);
        let key = (name.to_owned(), rows);
        if let Some(ds) = self.built.lock().expect("catalog lock poisoned").get(&key) {
            return Ok(ds.clone());
        }
        // Generate outside the lock: builds take seconds at large scales
        // and must not block requests for other datasets. Two racing
        // requests may both build; the second insert wins and both Arcs
        // are valid (generation is deterministic).
        let scale = (rows as f64 / info.rows as f64).min(1.0);
        let ds = generate_by_name(name, scale, self.seed, self.kind)
            .ok_or_else(|| format!("no generator for '{name}'"))?;
        let ds = Arc::new(ds);
        self.built
            .lock()
            .expect("catalog lock poisoned")
            .insert(key, ds.clone());
        Ok(ds)
    }

    /// Names of instances built so far, as `name@rows`, sorted.
    pub fn loaded(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .built
            .lock()
            .expect("catalog lock poisoned")
            .keys()
            .map(|(name, rows)| format!("{name}@{rows}"))
            .collect();
        names.sort();
        names
    }

    /// The `GET /datasets` body: the Table 1 inventory plus what this
    /// process has materialized.
    pub fn list_json(&self) -> Json {
        let datasets: Vec<Json> = table1()
            .into_iter()
            .map(|d| {
                Json::obj()
                    .set("name", d.name)
                    .set("description", d.description)
                    .set("category", d.category)
                    .set("full_rows", d.rows)
                    .set("dims", d.dims)
                    .set("measures", d.measures)
                    .set("views", d.views)
            })
            .collect();
        let loaded: Vec<Json> = self.loaded().into_iter().map(Json::from).collect();
        Json::obj()
            .set("datasets", datasets)
            .set("max_rows", self.max_rows)
            .set("default_rows", self.default_rows)
            .set("loaded", loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::new(2_000, 1_000, 17)
    }

    #[test]
    fn builds_lazily_and_shares_instances() {
        let c = catalog();
        assert!(c.loaded().is_empty());
        let a = c.dataset("HOUSING", 500).unwrap();
        let b = c.dataset("HOUSING", 500).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same instance must be shared");
        assert_eq!(c.loaded(), vec!["HOUSING@500".to_owned()]);
        // A different row count is a different instance.
        let d = c.dataset("HOUSING", 200).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
        assert!(d.rows() <= a.rows());
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let err = match catalog().dataset("NOPE", 100) {
            Err(e) => e,
            Ok(_) => panic!("unknown dataset must fail"),
        };
        assert!(err.contains("NOPE"));
    }

    #[test]
    fn dataset_enforces_the_row_cap_itself() {
        // The cap must hold even for callers that bypass resolve_rows —
        // a direct 60M-row AIR10 demand builds the capped instance.
        let c = catalog();
        let ds = c.dataset("CENSUS", 60_000_000).unwrap();
        assert!(ds.rows() <= 2_100, "rows = {}", ds.rows());
        assert_eq!(c.loaded(), vec!["CENSUS@2000".to_owned()]);
        // And it shares the instance with the equivalent clamped request.
        let same = c.dataset("CENSUS", 2_000).unwrap();
        assert!(Arc::ptr_eq(&ds, &same));
    }

    #[test]
    fn resolve_rows_clamps_to_cap_and_full_size() {
        let c = catalog();
        assert_eq!(c.resolve_rows("CENSUS", None), 1_000);
        assert_eq!(c.resolve_rows("CENSUS", Some(99_999)), 2_000);
        assert_eq!(c.resolve_rows("CENSUS", Some(0)), 1);
        // HOUSING only has 500 rows in Table 1.
        assert_eq!(c.resolve_rows("HOUSING", Some(99_999)), 500);
    }

    #[test]
    fn list_json_inventories_table1() {
        let c = catalog();
        c.dataset("HOUSING", 500).unwrap();
        let j = c.list_json();
        assert_eq!(j.get("datasets").unwrap().as_arr().unwrap().len(), 10);
        assert_eq!(j.get("max_rows").unwrap().as_u64(), Some(2_000));
        let loaded = j.get("loaded").unwrap().as_arr().unwrap();
        assert_eq!(loaded.len(), 1);
    }
}
