//! `seedbd` — the SeeDB recommendation daemon.
//!
//! ```text
//! seedbd [--addr HOST:PORT] [--max-rows N] [--default-rows N]
//!        [--cache-mb N] [--seed N] [--workers N] [--max-conns N]
//!        [--queue N] [--deadline-ms N] [--faults SPEC]
//! seedbd request ADDR METHOD PATH [BODY]
//! ```
//!
//! The first form serves the JSON API (see the crate docs for endpoints).
//! The second form is a std-only HTTP client for smoke checks: it prints
//! the response body and exits non-zero unless the status is 200 — CI
//! uses it instead of curl.

use seedb_server::{client, Server, ServerConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("request") {
        return run_client(&args[1..]);
    }
    run_daemon(&args)
}

fn run_daemon(args: &[String]) -> ExitCode {
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--max-rows" => config.max_rows = parse_num(&value("--max-rows"), "--max-rows"),
            "--default-rows" => {
                config.default_rows = parse_num(&value("--default-rows"), "--default-rows")
            }
            "--cache-mb" => {
                config.cache_bytes = parse_num(&value("--cache-mb"), "--cache-mb") << 20
            }
            "--seed" => config.seed = parse_num(&value("--seed"), "--seed") as u64,
            "--workers" => config.worker_budget = parse_num(&value("--workers"), "--workers"),
            "--max-conns" => {
                config.max_connections = parse_num(&value("--max-conns"), "--max-conns")
            }
            "--queue" => config.admission_queue = parse_num(&value("--queue"), "--queue"),
            "--deadline-ms" => {
                config.default_deadline_ms =
                    parse_num(&value("--deadline-ms"), "--deadline-ms") as u64
            }
            "--faults" => config.faults = Some(value("--faults")),
            "--help" | "-h" => {
                println!(
                    "usage: seedbd [--addr HOST:PORT] [--max-rows N] [--default-rows N] \
                     [--cache-mb N] [--seed N] [--workers N] [--max-conns N] [--queue N] \
                     [--deadline-ms N] [--faults SPEC]\n       \
                     seedbd request ADDR METHOD PATH [BODY]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let server = match Server::bind(config.clone()) {
        Ok(s) => s,
        Err(e) => die(&format!("bind {}: {e}", config.addr)),
    };
    match server.local_addr() {
        Ok(addr) => eprintln!(
            "seedbd listening on {addr} (max_rows={}, cache={} MiB, workers={}, \
             conns={}, queue={}, deadline_ms={})",
            config.max_rows,
            config.cache_bytes >> 20,
            config.worker_budget,
            config.max_connections,
            config.admission_queue,
            config.default_deadline_ms
        ),
        Err(e) => die(&format!("local_addr: {e}")),
    }
    server.run();
    ExitCode::SUCCESS
}

fn run_client(args: &[String]) -> ExitCode {
    let [addr, method, path, rest @ ..] = args else {
        die("usage: seedbd request ADDR METHOD PATH [BODY]");
    };
    let body = rest.first().map(String::as_str);
    match client::request(addr.as_str(), method, path, body) {
        Ok((status, body)) => {
            println!("{body}");
            if status == 200 {
                ExitCode::SUCCESS
            } else {
                eprintln!("seedbd request: HTTP {status}");
                ExitCode::FAILURE
            }
        }
        Err(e) => die(&format!("request {method} {path} against {addr}: {e}")),
    }
}

fn parse_num(text: &str, flag: &str) -> usize {
    text.parse()
        .unwrap_or_else(|_| die(&format!("{flag} expects a number, got '{text}'")))
}

fn die(msg: &str) -> ! {
    eprintln!("seedbd: {msg}");
    std::process::exit(2);
}
