//! `seedbd` — the SeeDB recommendation daemon.
//!
//! ```text
//! seedbd [--addr HOST:PORT] [--max-rows N] [--default-rows N]
//!        [--cache-mb N] [--seed N] [--workers N] [--max-conns N]
//!        [--queue N] [--deadline-ms N] [--faults SPEC]
//!        [--trace-buffer N] [--slow-ms N] [--log LEVEL]
//! seedbd request ADDR METHOD PATH [BODY]
//! ```
//!
//! The first form serves the JSON API (see the crate docs for endpoints).
//! The second form is a std-only HTTP client for smoke checks: it prints
//! the response body and exits non-zero unless the status is 200 — CI
//! uses it instead of curl.

use seedb_server::{client, Server, ServerConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some((first, rest)) = args.split_first() {
        if first == "request" {
            return run_client(rest);
        }
    }
    run_daemon(&args)
}

fn run_daemon(args: &[String]) -> ExitCode {
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--max-rows" => config.max_rows = parse_num(&value("--max-rows"), "--max-rows"),
            "--default-rows" => {
                config.default_rows = parse_num(&value("--default-rows"), "--default-rows")
            }
            "--cache-mb" => {
                config.cache_bytes = parse_num(&value("--cache-mb"), "--cache-mb") << 20
            }
            "--seed" => config.seed = parse_num(&value("--seed"), "--seed") as u64,
            "--workers" => config.worker_budget = parse_num(&value("--workers"), "--workers"),
            "--max-conns" => {
                config.max_connections = parse_num(&value("--max-conns"), "--max-conns")
            }
            "--queue" => config.admission_queue = parse_num(&value("--queue"), "--queue"),
            "--deadline-ms" => {
                config.default_deadline_ms =
                    parse_num(&value("--deadline-ms"), "--deadline-ms") as u64
            }
            "--faults" => config.faults = Some(value("--faults")),
            "--trace-buffer" => {
                config.trace_buffer = parse_num(&value("--trace-buffer"), "--trace-buffer")
            }
            "--slow-ms" => config.slow_ms = parse_num(&value("--slow-ms"), "--slow-ms") as u64,
            "--log" => {
                let raw = value("--log");
                config.log_level = seedb_obs::LogLevel::parse(&raw).unwrap_or_else(|| {
                    die(&format!("--log expects error|warn|info|debug, got '{raw}'"))
                })
            }
            "--help" | "-h" => {
                println!(
                    "usage: seedbd [--addr HOST:PORT] [--max-rows N] [--default-rows N] \
                     [--cache-mb N] [--seed N] [--workers N] [--max-conns N] [--queue N] \
                     [--deadline-ms N] [--faults SPEC] [--trace-buffer N] [--slow-ms N] \
                     [--log error|warn|info|debug]\n       \
                     seedbd request ADDR METHOD PATH [BODY]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let server = match Server::bind(config.clone()) {
        Ok(s) => s,
        Err(e) => die(&format!("bind {}: {e}", config.addr)),
    };
    match server.local_addr() {
        Ok(addr) => server.state().obs.logger.info(
            "listening",
            seedb_util::Json::obj()
                .set("addr", addr.to_string())
                .set("max_rows", config.max_rows as u64)
                .set("cache_mb", (config.cache_bytes >> 20) as u64)
                .set("workers", config.worker_budget as u64)
                .set("conns", config.max_connections as u64)
                .set("queue", config.admission_queue as u64)
                .set("deadline_ms", config.default_deadline_ms)
                .set("trace_buffer", config.trace_buffer as u64)
                .set("slow_ms", config.slow_ms),
        ),
        Err(e) => die(&format!("local_addr: {e}")),
    }
    server.run();
    ExitCode::SUCCESS
}

fn run_client(args: &[String]) -> ExitCode {
    let [addr, method, path, rest @ ..] = args else {
        die("usage: seedbd request ADDR METHOD PATH [BODY]");
    };
    let body = rest.first().map(String::as_str);
    match client::request(addr.as_str(), method, path, body) {
        Ok((status, body)) => {
            println!("{body}");
            if status == 200 {
                ExitCode::SUCCESS
            } else {
                eprintln!("seedbd request: HTTP {status}");
                ExitCode::FAILURE
            }
        }
        Err(e) => die(&format!("request {method} {path} against {addr}: {e}")),
    }
}

fn parse_num(text: &str, flag: &str) -> usize {
    text.parse()
        .unwrap_or_else(|_| die(&format!("{flag} expects a number, got '{text}'")))
}

fn die(msg: &str) -> ! {
    eprintln!("seedbd: {msg}");
    std::process::exit(2);
}
