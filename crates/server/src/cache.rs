//! The cross-request recommendation cache: one memory-budgeted LRU
//! holding both finished `/recommend` response payloads and reusable
//! per-view aggregate partials.
//!
//! Keys are canonical signatures (`seedb_core::signature`) namespaced by
//! kind — `R|…` for rendered responses, `P|…` for per-view
//! [`GroupedResult`] partials — so the two layers share one budget and
//! one eviction order. Recency is tracked with a monotonic clock and a
//! `BTreeMap` index, which makes eviction order fully deterministic: the
//! entry with the oldest last-touch tick always goes first.

use seedb_core::cache::{CachedPartial, ViewCache};
use seedb_engine::GroupedResult;
use seedb_util::PLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cached value: either a finished response body or a per-view partial.
#[derive(Clone)]
pub enum CacheValue {
    /// A rendered `/recommend` response payload (the deterministic part of
    /// the body, shared verbatim on every future hit).
    Response(Arc<String>),
    /// A per-view combined aggregate — exact full-table, or a resumable
    /// phase prefix from a pruned run — reusable by any overlapping
    /// request (see `SeeDb::recommend_cached`).
    Partial(Arc<CachedPartial>),
}

impl CacheValue {
    /// Approximate heap footprint in bytes, for budget accounting. An
    /// estimate is fine: the budget bounds order-of-magnitude memory use,
    /// not exact allocation.
    pub fn approx_size(&self) -> usize {
        match self {
            CacheValue::Response(body) => body.len(),
            CacheValue::Partial(partial) => {
                let result_size = |result: &GroupedResult| {
                    let per_group =
                        32 + result.group_by.len() * 8 + result.aggregates.len() * 2 * 48;
                    64 + result.groups.len() * per_group
                };
                32 + partial.deltas.iter().map(|d| result_size(d)).sum::<usize>()
            }
        }
    }
}

/// One resident entry.
struct Slot {
    value: CacheValue,
    /// `key.len() + value.approx_size()` at insert time.
    size: usize,
    /// Last-touch tick (key into the recency index).
    tick: u64,
}

struct Inner {
    map: HashMap<String, Slot>,
    /// tick → key, ordered oldest-first; the eviction queue.
    recency: BTreeMap<u64, String>,
    clock: u64,
    bytes: usize,
}

/// Monotonic counters exposed at `GET /statz`.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: AtomicU64,
    /// Lookups that found nothing.
    pub misses: AtomicU64,
    /// Entries evicted to make room.
    pub evictions: AtomicU64,
    /// Entries inserted.
    pub insertions: AtomicU64,
    /// Inserts rejected because a single entry exceeded the whole budget.
    pub rejected: AtomicU64,
}

/// Memory-budgeted LRU over [`CacheValue`]s. All operations are
/// `Mutex`-serialized; entries are shared out as `Arc`s so hits are
/// zero-copy.
pub struct RecCache {
    inner: PLock<Inner>,
    budget: usize,
    stats: CacheStats,
}

impl RecCache {
    /// A cache bounded to roughly `budget_bytes` of entry payload.
    pub fn new(budget_bytes: usize) -> Self {
        RecCache {
            inner: PLock::new(
                "server.rec_cache",
                Inner {
                    map: HashMap::new(),
                    recency: BTreeMap::new(),
                    clock: 0,
                    bytes: 0,
                },
            ),
            budget: budget_bytes.max(1),
            stats: CacheStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Counter snapshot access.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Looks `key` up, refreshing its recency on hit.
    pub fn get(&self, key: &str) -> Option<CacheValue> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let tick = inner.clock;
        match inner.map.get_mut(key) {
            Some(slot) => {
                let old = std::mem::replace(&mut slot.tick, tick);
                let value = slot.value.clone();
                inner.recency.remove(&old);
                inner.recency.insert(tick, key.to_owned());
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting least-recently-used entries
    /// until the budget holds. An entry larger than the whole budget is
    /// rejected rather than flushing everything else.
    pub fn put(&self, key: &str, value: CacheValue) {
        let size = key.len() + value.approx_size();
        if size > self.budget {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(old) = inner.map.remove(key) {
            inner.recency.remove(&old.tick);
            inner.bytes -= old.size;
        }
        while inner.bytes + size > self.budget {
            let Some((&oldest, _)) = inner.recency.iter().next() else {
                break;
            };
            // recency and map are maintained in lockstep; if they ever
            // disagree, stop evicting (one oversized round) rather than
            // panic while holding the cache lock.
            let Some(victim_key) = inner.recency.remove(&oldest) else {
                break;
            };
            let Some(victim) = inner.map.remove(&victim_key) else {
                break;
            };
            inner.bytes -= victim.size;
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        inner.clock += 1;
        let tick = inner.clock;
        inner.recency.insert(tick, key.to_owned());
        inner.map.insert(key.to_owned(), Slot { value, size, tick });
        inner.bytes += size;
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.recency.clear();
        inner.bytes = 0;
    }

    /// Resident keys ordered least- to most-recently used (test/debug aid).
    pub fn keys_lru_order(&self) -> Vec<String> {
        let inner = self.inner.lock();
        inner.recency.values().cloned().collect()
    }
}

/// Adapter giving `SeeDb::recommend_cached` a view into one [`RecCache`],
/// namespaced under a dataset-instance prefix so partials from different
/// datasets (or row counts) can never alias.
pub struct PartialCache {
    cache: Arc<RecCache>,
    prefix: String,
}

impl PartialCache {
    /// A view of `cache` scoped to `prefix` (e.g. `CENSUS@5000#seed17`).
    pub fn new(cache: Arc<RecCache>, prefix: String) -> Self {
        PartialCache { cache, prefix }
    }

    fn full_key(&self, key: &str) -> String {
        format!("P|{}|{}", self.prefix, key)
    }
}

impl ViewCache for PartialCache {
    fn get(&self, key: &str) -> Option<Arc<CachedPartial>> {
        match self.cache.get(&self.full_key(key)) {
            Some(CacheValue::Partial(partial)) => Some(partial),
            _ => None,
        }
    }

    fn put(&self, key: &str, value: Arc<CachedPartial>) {
        self.cache
            .put(&self.full_key(key), CacheValue::Partial(value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(body: &str) -> CacheValue {
        CacheValue::Response(Arc::new(body.to_owned()))
    }

    #[test]
    fn get_put_and_stats() {
        let cache = RecCache::new(10_000);
        assert!(cache.get("a").is_none());
        cache.put("a", response("hello"));
        assert!(matches!(cache.get("a"), Some(CacheValue::Response(b)) if *b == "hello"));
        assert_eq!(cache.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().misses.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().insertions.load(Ordering::Relaxed), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn eviction_is_lru_and_deterministic() {
        // Budget fits exactly two ~105-byte entries.
        let cache = RecCache::new(220);
        cache.put("k1", response(&"x".repeat(100)));
        cache.put("k2", response(&"y".repeat(100)));
        assert_eq!(cache.len(), 2);
        // Touch k1 so k2 is the LRU victim.
        let _ = cache.get("k1");
        cache.put("k3", response(&"z".repeat(100)));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("k2").is_none(), "LRU entry must be evicted");
        assert!(cache.get("k1").is_some());
        assert!(cache.get("k3").is_some());
        assert_eq!(cache.stats().evictions.load(Ordering::Relaxed), 1);
        assert!(cache.bytes() <= cache.budget());
    }

    #[test]
    fn oversized_entries_are_rejected_not_thrashed() {
        let cache = RecCache::new(100);
        cache.put("small", response("ok"));
        cache.put("huge", response(&"x".repeat(500)));
        assert!(cache.get("huge").is_none());
        assert!(cache.get("small").is_some(), "resident entries survive");
        assert_eq!(cache.stats().rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reinsert_updates_size_and_recency() {
        let cache = RecCache::new(1_000);
        cache.put("a", response(&"x".repeat(100)));
        let before = cache.bytes();
        cache.put("a", response("tiny"));
        assert!(cache.bytes() < before);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_order_is_observable() {
        let cache = RecCache::new(10_000);
        cache.put("a", response("1"));
        cache.put("b", response("2"));
        cache.put("c", response("3"));
        let _ = cache.get("a");
        assert_eq!(cache.keys_lru_order(), vec!["b", "c", "a"]);
    }

    #[test]
    fn partial_cache_is_namespaced() {
        use seedb_core::cache::ViewCache as _;
        let shared = Arc::new(RecCache::new(100_000));
        let a = PartialCache::new(shared.clone(), "DS@100".into());
        let b = PartialCache::new(shared.clone(), "DS@200".into());
        let result = Arc::new(GroupedResult {
            group_by: vec![seedb_storage::ColumnId(0)],
            aggregates: vec![seedb_engine::AggSpec::new(
                seedb_engine::AggFunc::Avg,
                seedb_storage::ColumnId(1),
            )],
            groups: Vec::new(),
        });
        let partial = Arc::new(CachedPartial::exact(result));
        a.put("key", partial.clone());
        assert!(a.get("key").is_some());
        assert!(b.get("key").is_none(), "prefixes must isolate instances");
        // A response entry under the same raw key is not a partial.
        shared.put("P|DS@100|other", response("body"));
        assert!(a.get("other").is_none());
    }

    #[test]
    fn partial_sizes_scale_with_phase_deltas() {
        // Budget accounting must see every per-phase delta, not just one
        // result, or pruned-run prefixes would be under-billed.
        let result = || {
            Arc::new(GroupedResult {
                group_by: vec![seedb_storage::ColumnId(0)],
                aggregates: vec![seedb_engine::AggSpec::new(
                    seedb_engine::AggFunc::Avg,
                    seedb_storage::ColumnId(1),
                )],
                groups: Vec::new(),
            })
        };
        let one = CacheValue::Partial(Arc::new(CachedPartial::prefix(vec![result()], 10)));
        let five = CacheValue::Partial(Arc::new(CachedPartial::prefix(
            (0..5).map(|_| result()).collect(),
            10,
        )));
        assert!(five.approx_size() > one.approx_size());
    }
}
