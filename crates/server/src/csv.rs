//! A hand-rolled CSV reader with schema inference, for `POST /datasets`.
//!
//! Dependency-free like the rest of the serving stack (the registry is
//! unreachable). Dialect: comma-separated, first record is the header,
//! `"`-quoted fields may contain commas, newlines, and doubled-quote
//! escapes (`""`); both `\n` and `\r\n` record separators are accepted,
//! and a trailing newline does not produce a phantom record.
//!
//! Column types are inferred from the data, narrowest first: a column
//! whose every non-empty field parses as `i64` is `Int64`; failing that
//! `f64` → `Float64`; failing that `true`/`false` (case-insensitive) →
//! `Bool`; anything else is `Categorical`. Empty fields are NULL in any
//! type. Roles follow SeeDB's dimension/measure split: numeric columns
//! are measures, categorical and boolean columns are dimensions.

use seedb_storage::{ColumnDef, ColumnRole, ColumnType, Value};

/// A parsed CSV: inferred column definitions plus typed rows, ready for
/// [`seedb_storage::TableBuilder`].
#[derive(Debug)]
pub struct CsvTable {
    /// Inferred schema (header names, inferred types, inferred roles).
    pub defs: Vec<ColumnDef>,
    /// Typed rows matching `defs`.
    pub rows: Vec<Vec<Value>>,
}

/// Parses CSV text into records of raw string fields.
fn split_records(text: &str) -> Result<Vec<Vec<String>>, String> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    // Whether the current (possibly empty) field has been started; keeps
    // a trailing newline from emitting a phantom empty record.
    let mut in_record = false;

    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err("quote in the middle of an unquoted field".into());
                }
                in_record = true;
                loop {
                    match chars.next() {
                        None => return Err("unterminated quoted field".into()),
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                field.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(other) => field.push(other),
                    }
                }
            }
            ',' => {
                in_record = true;
                record.push(std::mem::take(&mut field));
            }
            '\r' | '\n' => {
                if c == '\r' && chars.peek() == Some(&'\n') {
                    chars.next();
                }
                if in_record || !field.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                in_record = false;
            }
            other => {
                in_record = true;
                field.push(other);
            }
        }
    }
    if in_record || !field.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Narrowest type every non-empty sample fits (see module docs). An
/// all-empty column degrades to `Categorical` (all-NULL dimension).
fn infer_type<'a>(samples: impl Iterator<Item = &'a str> + Clone) -> ColumnType {
    let mut non_empty = samples.filter(|s| !s.is_empty()).peekable();
    if non_empty.peek().is_none() {
        return ColumnType::Categorical;
    }
    if non_empty.clone().all(|s| s.parse::<i64>().is_ok()) {
        return ColumnType::Int64;
    }
    if non_empty.clone().all(|s| s.parse::<f64>().is_ok()) {
        return ColumnType::Float64;
    }
    if non_empty.clone().all(|s| {
        let lower = s.to_ascii_lowercase();
        lower == "true" || lower == "false"
    }) {
        return ColumnType::Bool;
    }
    ColumnType::Categorical
}

fn typed_value(raw: &str, ty: ColumnType) -> Value {
    if raw.is_empty() {
        return Value::Null;
    }
    match ty {
        // Type inference proved every non-empty value parses, so the
        // fallback arm is unreachable — but a parser disagreement must
        // degrade to a NULL cell, never panic an ingest.
        ColumnType::Int64 => raw.parse().map_or(Value::Null, Value::Int),
        ColumnType::Float64 => raw.parse().map_or(Value::Null, Value::Float),
        ColumnType::Bool => Value::Bool(raw.eq_ignore_ascii_case("true")),
        ColumnType::Categorical => Value::Str(raw.to_owned()),
    }
}

/// Parses CSV text (header + data records) into an inferred-schema table.
pub fn parse_csv(text: &str) -> Result<CsvTable, String> {
    let records = split_records(text)?;
    let mut iter = records.into_iter();
    let header = iter.next().ok_or("empty CSV: missing header record")?;
    if header.iter().any(|name| name.is_empty()) {
        return Err("empty column name in header".into());
    }
    let ncols = header.len();
    let data: Vec<Vec<String>> = iter.collect();
    for (i, record) in data.iter().enumerate() {
        if record.len() != ncols {
            return Err(format!(
                "record {} has {} fields, header has {ncols}",
                i + 2, // 1-based, counting the header line
                record.len()
            ));
        }
    }

    // Record widths were validated against the header above, so `get`
    // never actually misses; the empty-string fallback keeps the width
    // invariant local instead of trusting it with a panic.
    let types: Vec<ColumnType> = (0..ncols)
        .map(|c| {
            infer_type(
                data.iter()
                    .map(move |r| r.get(c).map_or("", String::as_str)),
            )
        })
        .collect();
    let defs: Vec<ColumnDef> = header
        .iter()
        .zip(&types)
        .map(|(name, &ty)| {
            let role = match ty {
                ColumnType::Int64 | ColumnType::Float64 => ColumnRole::Measure,
                ColumnType::Categorical | ColumnType::Bool => ColumnRole::Dimension,
            };
            ColumnDef::new(name, ty, role)
        })
        .collect();
    let rows: Vec<Vec<Value>> = data
        .iter()
        .map(|record| {
            record
                .iter()
                .zip(&types)
                .map(|(raw, &ty)| typed_value(raw, ty))
                .collect()
        })
        .collect();
    Ok(CsvTable { defs, rows })
}

/// FNV-1a 64-bit hash of the raw CSV bytes: the content fingerprint in
/// ingested instance signatures
/// ([`seedb_core::ingested_instance_signature`]).
pub fn fingerprint(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_types_and_roles() {
        let t = parse_csv("city,pop,rate,flag\nparis,100,0.5,true\nlyon,200,1.5,false\n").unwrap();
        let tys: Vec<ColumnType> = t.defs.iter().map(|d| d.ty).collect();
        assert_eq!(
            tys,
            vec![
                ColumnType::Categorical,
                ColumnType::Int64,
                ColumnType::Float64,
                ColumnType::Bool
            ]
        );
        let roles: Vec<ColumnRole> = t.defs.iter().map(|d| d.role).collect();
        assert_eq!(
            roles,
            vec![
                ColumnRole::Dimension,
                ColumnRole::Measure,
                ColumnRole::Measure,
                ColumnRole::Dimension
            ]
        );
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], Value::Str("paris".into()));
        assert_eq!(t.rows[0][1], Value::Int(100));
        assert_eq!(t.rows[1][2], Value::Float(1.5));
        assert_eq!(t.rows[1][3], Value::Bool(false));
    }

    #[test]
    fn empty_fields_are_null_and_mixed_numerics_widen() {
        let t = parse_csv("a,m\nx,1\ny,\nz,2.5\n").unwrap();
        // 1 and 2.5 don't all parse as i64 → Float64; empty → NULL.
        assert_eq!(t.defs[1].ty, ColumnType::Float64);
        assert_eq!(t.rows[0][1], Value::Float(1.0));
        assert_eq!(t.rows[1][1], Value::Null);
    }

    #[test]
    fn quoted_fields_handle_commas_newlines_and_escapes() {
        let t = parse_csv("d,m\n\"a,b\",1\n\"line1\nline2\",2\n\"say \"\"hi\"\"\",3\n").unwrap();
        assert_eq!(t.rows[0][0], Value::Str("a,b".into()));
        assert_eq!(t.rows[1][0], Value::Str("line1\nline2".into()));
        assert_eq!(t.rows[2][0], Value::Str("say \"hi\"".into()));
    }

    #[test]
    fn crlf_and_missing_trailing_newline_are_fine() {
        let t = parse_csv("d,m\r\nx,1\r\ny,2").unwrap();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[1][1], Value::Int(2));
    }

    #[test]
    fn structural_errors_are_reported() {
        assert!(parse_csv("").unwrap_err().contains("header"));
        assert!(parse_csv("a,\nx,1\n").unwrap_err().contains("column name"));
        assert!(parse_csv("a,b\nonly_one\n").unwrap_err().contains("fields"));
        assert!(parse_csv("a,b\n\"unterminated,1\n")
            .unwrap_err()
            .contains("unterminated"));
        assert!(parse_csv("a,b\nmid\"quote,1\n")
            .unwrap_err()
            .contains("quote"));
    }

    #[test]
    fn all_empty_column_degrades_to_categorical_nulls() {
        let t = parse_csv("d,e,m\nx,,1\ny,,2\n").unwrap();
        assert_eq!(t.defs[1].ty, ColumnType::Categorical);
        assert_eq!(t.rows[0][1], Value::Null);
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        assert_eq!(fingerprint("a,b\n1,2\n"), fingerprint("a,b\n1,2\n"));
        assert_ne!(fingerprint("a,b\n1,2\n"), fingerprint("a,b\n1,3\n"));
        assert_ne!(fingerprint(""), fingerprint("\n"));
    }
}
