//! Request routing: the API endpoints over shared server state.

use crate::api::{self, RecommendRequest};
use crate::cache::{CacheValue, PartialCache, RecCache};
use crate::catalog::Catalog;
use crate::http::{Request, Response};
use seedb_core::{
    ingested_instance_signature, instance_signature, predicate_signature, reference_signature,
    CancelToken, CoreError, Knob, PhysicalPlan, ReferenceSpec, SeeDb, SeeDbConfig,
};
use seedb_engine::{BudgetLease, ExecStats, Predicate, TraceCtx, WorkerBudget};
use seedb_obs::{Obs, PromText};
use seedb_sql::{parser::parse_expr, Planner};
use seedb_util::{Json, PLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// The log₂ latency histogram lives in `seedb-obs` now (the Prometheus
// exposition renders its buckets as cumulative `le` series); re-exported
// so existing `router::LatencyHisto` users keep compiling.
pub use seedb_obs::LatencyHisto;

/// How long an admission-starved `/recommend` waits for a single worker
/// permit before degrading further (bounded by half the remaining
/// deadline, so a waited request still has time to actually run).
const LEASE_WAIT: Duration = Duration::from_millis(250);

/// Request/latency counters exposed at `GET /statz`.
#[derive(Debug)]
pub struct ServerStats {
    /// Total HTTP requests handled (any route).
    pub requests: AtomicU64,
    /// Successful `/recommend` responses.
    pub recommends_ok: AtomicU64,
    /// Failed `/recommend` requests (client or server error).
    pub recommends_err: AtomicU64,
    /// `/recommend` responses served from the response cache.
    pub response_hits: AtomicU64,
    /// `/recommend` responses that ran the engine.
    pub response_misses: AtomicU64,
    /// `/recommend` runs that skipped the cache entirely (request-level
    /// `cache_mode: "bypass"` or a cache-ineligible configuration). The
    /// operator signal that the cache was not in play: for the default
    /// configuration this counter must stay 0.
    pub response_bypass: AtomicU64,
    /// Cumulative latency of cache-miss recommends, microseconds.
    pub miss_us_total: AtomicU64,
    /// Cumulative latency of response-cache hits, microseconds.
    pub hit_us_total: AtomicU64,
    /// Cumulative latency of bypassed recommends, microseconds — kept out
    /// of `miss_us_total` so the derived mean miss latency stays honest.
    pub bypass_us_total: AtomicU64,
    /// Plan summary and per-phase timings of the most recent engine run
    /// (cache hits don't execute, so they don't overwrite it). Surfaced
    /// at `GET /statz` as the operator's view of what the planner chose.
    pub last_run: PLock<(String, Vec<u64>)>,
    /// Connections shed at the accept loop because the admission queue
    /// was full (incremented by the server, not the router).
    pub sheds: AtomicU64,
    /// `/recommend` requests shed because every morsel worker stayed
    /// busy past the bounded lease wait and no cached partial existed.
    pub shed_busy: AtomicU64,
    /// Response writes that failed (peer gone, injected truncation, …).
    pub write_errors: AtomicU64,
    /// `/recommend` runs cancelled by their deadline (504 or degraded).
    pub deadline_timeouts: AtomicU64,
    /// Degraded partial answers assembled purely from cached deltas.
    pub degraded: AtomicU64,
    /// `/recommend` runs that found no free permit instantly and fell
    /// back to the bounded single-permit wait.
    pub lease_waits: AtomicU64,
    /// Latency histogram for `/recommend`.
    pub recommend_histo: LatencyHisto,
    /// Latency histogram for `/datasets` (both methods).
    pub datasets_histo: LatencyHisto,
    /// Latency histogram for every other route.
    pub other_histo: LatencyHisto,
    /// Connections currently parked in the admission queue (maintained by
    /// the server's accept loop and workers).
    pub queue_depth: AtomicU64,
    /// The admission queue's capacity (set once at server start; 0 when
    /// the router runs without a server, e.g. in tests).
    pub queue_capacity: AtomicU64,
    /// Time connections spent waiting in the admission queue before a
    /// worker picked them up.
    pub admission_wait_histo: LatencyHisto,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            requests: AtomicU64::new(0),
            recommends_ok: AtomicU64::new(0),
            recommends_err: AtomicU64::new(0),
            response_hits: AtomicU64::new(0),
            response_misses: AtomicU64::new(0),
            response_bypass: AtomicU64::new(0),
            miss_us_total: AtomicU64::new(0),
            hit_us_total: AtomicU64::new(0),
            bypass_us_total: AtomicU64::new(0),
            last_run: PLock::new("server.stats.last_run", (String::new(), Vec::new())),
            sheds: AtomicU64::new(0),
            shed_busy: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            deadline_timeouts: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            lease_waits: AtomicU64::new(0),
            recommend_histo: LatencyHisto::default(),
            datasets_histo: LatencyHisto::default(),
            other_histo: LatencyHisto::default(),
            queue_depth: AtomicU64::new(0),
            queue_capacity: AtomicU64::new(0),
            admission_wait_histo: LatencyHisto::default(),
        }
    }
}

/// Everything a request handler needs, shared across connections.
pub struct AppState {
    /// Lazily generated dataset instances.
    pub catalog: Catalog,
    /// The cross-request response + partials cache.
    pub cache: Arc<RecCache>,
    /// Admission budget over morsel-worker slots.
    pub budget: WorkerBudget,
    /// Request counters.
    pub stats: ServerStats,
    /// Catalog generation seed (part of cache-key namespaces).
    pub seed: u64,
    /// Deadline applied to `/recommend` requests that don't carry their
    /// own `deadline_ms`; 0 disables the default.
    pub default_deadline_ms: u64,
    /// Tracing, flight recorder, and structured logging.
    pub obs: Arc<Obs>,
    /// Server start time, for `/statz` uptime.
    pub start: Instant,
}

/// Dispatches one request with a disabled trace context.
pub fn handle(state: &AppState, req: &Request) -> Response {
    handle_traced(state, req, &TraceCtx::disabled())
}

/// Dispatches one request, recording router-side spans (catalog build,
/// cache probe, plan derivation, execution phases, cache deposit) into
/// `trace`. Responses carry the request's correlation id ([`request_id`])
/// in the `X-Request-Id` header and, for `/recommend` envelopes, a
/// `request_id` field.
pub fn handle_traced(state: &AppState, req: &Request, trace: &TraceCtx) -> Response {
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let path = req.path.split('?').next().unwrap_or("");
    trace.note("route", path);
    let response = match (req.method.as_str(), path) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/statz") => statz(state),
        ("GET", "/metrics") => metrics(state),
        ("GET", "/debug/traces") => traces_index(state),
        ("GET", p) if p.starts_with("/debug/traces/") => trace_export(state, p),
        ("GET", "/datasets") => Response::json(state.catalog.list_json().compact()),
        ("POST", "/datasets") => ingest(state, req),
        ("POST", "/recommend") => recommend(state, req, trace),
        ("GET", "/recommend") => Response::error(405, "use POST for /recommend"),
        _ => Response::error(404, &format!("no route for {} {}", req.method, path)),
    };
    let histo = match path {
        "/recommend" => &state.stats.recommend_histo,
        "/datasets" => &state.stats.datasets_histo,
        _ => &state.stats.other_histo,
    };
    histo.record_us(start.elapsed().as_micros() as u64);
    match request_id(req, trace) {
        Some(id) => response.with_request_id(&id),
        None => response,
    }
}

/// The request's correlation id: the client's sanitized `X-Request-Id`
/// when present, else one derived from the trace id (`r-` + zero-padded
/// hex — the same shape [`Obs::request_id_for`] produces). `None` only
/// for an untraced request with no client id (bare [`handle`] calls).
pub fn request_id(req: &Request, trace: &TraceCtx) -> Option<String> {
    match &req.request_id {
        Some(id) => Some(id.clone()),
        None => (trace.id() != 0).then(|| format!("r-{:08x}", trace.id())),
    }
}

fn healthz(state: &AppState) -> Response {
    Response::json(
        Json::obj()
            .set("status", "ok")
            .set("requests", state.stats.requests.load(Ordering::Relaxed))
            .set("cache_entries", state.cache.len())
            .compact(),
    )
}

fn statz(state: &AppState) -> Response {
    let s = &state.stats;
    let c = state.cache.stats();
    let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
    // `PLock` recovers from poisoning: a thread that panicked while
    // holding the lock leaves the data perfectly usable (it's a plain
    // clone-out), and recovering beats turning every future /statz into a
    // 500-by-panic.
    let last_run = s.last_run.lock().clone();
    Response::json(
        Json::obj()
            .set("requests", load(&s.requests))
            .set("uptime_s", state.start.elapsed().as_secs())
            .set(
                "recommend",
                Json::obj()
                    .set("ok", load(&s.recommends_ok))
                    .set("errors", load(&s.recommends_err))
                    .set("response_hits", load(&s.response_hits))
                    .set("response_misses", load(&s.response_misses))
                    .set("bypass", load(&s.response_bypass))
                    .set("hit_us_total", load(&s.hit_us_total))
                    .set("miss_us_total", load(&s.miss_us_total))
                    .set("bypass_us_total", load(&s.bypass_us_total))
                    .set("last_plan_summary", last_run.0.as_str())
                    .set(
                        "last_phase_times_us",
                        last_run
                            .1
                            .iter()
                            .map(|&t| Json::from(t))
                            .collect::<Vec<_>>(),
                    ),
            )
            .set(
                "cache",
                Json::obj()
                    .set("entries", state.cache.len())
                    .set("bytes", state.cache.bytes())
                    .set("budget_bytes", state.cache.budget())
                    .set("hits", load(&c.hits))
                    .set("misses", load(&c.misses))
                    .set("evictions", load(&c.evictions))
                    .set("insertions", load(&c.insertions))
                    .set("rejected", load(&c.rejected)),
            )
            .set(
                "workers",
                Json::obj()
                    .set("total", state.budget.total())
                    .set("available", state.budget.available()),
            )
            .set(
                "overload",
                Json::obj()
                    .set("sheds", load(&s.sheds))
                    .set("shed_busy", load(&s.shed_busy))
                    .set("write_errors", load(&s.write_errors))
                    .set("deadline_timeouts", load(&s.deadline_timeouts))
                    .set("degraded", load(&s.degraded))
                    .set("lease_waits", load(&s.lease_waits)),
            )
            .set(
                "admission",
                Json::obj()
                    .set("queue_depth", load(&s.queue_depth))
                    .set("queue_capacity", load(&s.queue_capacity))
                    .set("wait", s.admission_wait_histo.json()),
            )
            .set(
                "latency",
                Json::obj()
                    .set("recommend", s.recommend_histo.json())
                    .set("datasets", s.datasets_histo.json())
                    .set("other", s.other_histo.json()),
            )
            .compact(),
    )
}

/// `GET /metrics`: every counter, gauge, and histogram the server keeps,
/// in Prometheus text exposition format. Counters mirror `/statz`;
/// histograms render their log₂ buckets as cumulative `le` series.
fn metrics(state: &AppState) -> Response {
    let s = &state.stats;
    let c = state.cache.stats();
    let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let mut p = PromText::new();
    p.counter(
        "seedbd_requests_total",
        "HTTP requests handled, any route",
        load(&s.requests),
    );
    p.counter(
        "seedbd_recommends_ok_total",
        "Successful /recommend responses",
        load(&s.recommends_ok),
    );
    p.counter(
        "seedbd_recommends_err_total",
        "Failed /recommend requests",
        load(&s.recommends_err),
    );
    p.counter(
        "seedbd_response_cache_hits_total",
        "/recommend responses served from the response cache",
        load(&s.response_hits),
    );
    p.counter(
        "seedbd_response_cache_misses_total",
        "/recommend responses that ran the engine",
        load(&s.response_misses),
    );
    p.counter(
        "seedbd_response_cache_bypass_total",
        "/recommend runs that skipped the cache",
        load(&s.response_bypass),
    );
    p.counter(
        "seedbd_hit_latency_us_total",
        "Cumulative latency of response-cache hits, microseconds",
        load(&s.hit_us_total),
    );
    p.counter(
        "seedbd_miss_latency_us_total",
        "Cumulative latency of cache-miss recommends, microseconds",
        load(&s.miss_us_total),
    );
    p.counter(
        "seedbd_bypass_latency_us_total",
        "Cumulative latency of bypassed recommends, microseconds",
        load(&s.bypass_us_total),
    );
    p.counter(
        "seedbd_sheds_total",
        "Connections shed because the admission queue was full",
        load(&s.sheds),
    );
    p.counter(
        "seedbd_shed_busy_total",
        "/recommend requests shed because every worker stayed busy",
        load(&s.shed_busy),
    );
    p.counter(
        "seedbd_write_errors_total",
        "Response writes that failed",
        load(&s.write_errors),
    );
    p.counter(
        "seedbd_deadline_timeouts_total",
        "/recommend runs cancelled by their deadline",
        load(&s.deadline_timeouts),
    );
    p.counter(
        "seedbd_degraded_total",
        "Degraded partial answers assembled from cached deltas",
        load(&s.degraded),
    );
    p.counter(
        "seedbd_lease_waits_total",
        "/recommend runs that waited for a worker permit",
        load(&s.lease_waits),
    );
    p.counter(
        "seedbd_view_cache_hits_total",
        "View/response cache lookups that hit",
        load(&c.hits),
    );
    p.counter(
        "seedbd_view_cache_misses_total",
        "View/response cache lookups that missed",
        load(&c.misses),
    );
    p.counter(
        "seedbd_view_cache_evictions_total",
        "Cache entries evicted to stay under budget",
        load(&c.evictions),
    );
    p.counter(
        "seedbd_view_cache_insertions_total",
        "Cache entries inserted",
        load(&c.insertions),
    );
    p.counter(
        "seedbd_view_cache_rejected_total",
        "Cache insertions rejected as oversized",
        load(&c.rejected),
    );
    p.gauge(
        "seedbd_cache_entries",
        "Entries currently in the cache",
        state.cache.len() as u64,
    );
    p.gauge(
        "seedbd_cache_bytes",
        "Bytes currently held by the cache",
        state.cache.bytes() as u64,
    );
    p.gauge(
        "seedbd_cache_budget_bytes",
        "The cache's byte budget",
        state.cache.budget() as u64,
    );
    p.gauge(
        "seedbd_workers_total",
        "Morsel worker slots in the admission budget",
        state.budget.total() as u64,
    );
    p.gauge(
        "seedbd_workers_available",
        "Morsel worker slots currently free",
        state.budget.available() as u64,
    );
    p.gauge(
        "seedbd_admission_queue_depth",
        "Connections parked in the admission queue",
        load(&s.queue_depth),
    );
    p.gauge(
        "seedbd_admission_queue_capacity",
        "The admission queue's capacity",
        load(&s.queue_capacity),
    );
    p.gauge(
        "seedbd_uptime_seconds",
        "Seconds since the server started",
        state.start.elapsed().as_secs(),
    );
    p.gauge(
        "seedbd_flight_recorder_traces",
        "Completed traces currently in the flight recorder",
        state.obs.recorder.len() as u64,
    );
    p.histogram(
        "seedbd_route_latency_us",
        "Request latency by route, microseconds",
        &[
            (&[("route", "recommend")], &s.recommend_histo),
            (&[("route", "datasets")], &s.datasets_histo),
            (&[("route", "other")], &s.other_histo),
        ],
    );
    p.histogram(
        "seedbd_admission_wait_us",
        "Time connections waited in the admission queue, microseconds",
        &[(&[], &s.admission_wait_histo)],
    );
    Response::text(p.finish(), seedb_obs::prom::CONTENT_TYPE)
}

/// `GET /debug/traces`: the flight recorder's index, most recent first.
fn traces_index(state: &AppState) -> Response {
    let traces: Vec<Json> = state
        .obs
        .recorder
        .index()
        .iter()
        .map(|t| t.index_json())
        .collect();
    Response::json(
        Json::obj()
            .set("capacity", state.obs.recorder.capacity())
            .set("traces", traces)
            .compact(),
    )
}

/// `GET /debug/traces/{id}`: one completed trace as Chrome trace-event
/// JSON (loadable in Perfetto / `chrome://tracing`).
fn trace_export(state: &AppState, path: &str) -> Response {
    let tail = path.strip_prefix("/debug/traces/").unwrap_or("");
    let Ok(id) = tail.parse::<u64>() else {
        return Response::error(400, &format!("bad trace id '{tail}'"));
    };
    match state.obs.recorder.get(id) {
        Some(trace) => Response::json(trace.chrome_json().compact()),
        None => Response::error(
            404,
            &format!("no trace {id} in the flight recorder (it may have been evicted)"),
        ),
    }
}

/// The `POST /datasets` flow: ingest a CSV upload into the catalog. The
/// body is `{"name": …, "csv": …}`; schema is inferred from the data
/// ([`crate::csv`]). Every failure is a typed [`crate::catalog::CatalogError`]
/// with an honest status — malformed CSV or an unusable schema is 400, an
/// upload over the row cap is 413.
fn ingest(state: &AppState, req: &Request) -> Response {
    let parsed = match Json::parse(&req.body) {
        Ok(j) => j,
        Err(e) => return Response::error(400, &format!("bad JSON body: {e}")),
    };
    let name = match parsed.get("name").and_then(Json::as_str) {
        Some(n) if !n.is_empty() => n.to_owned(),
        _ => return Response::error(400, "missing or empty \"name\" field"),
    };
    let csv = match parsed.get("csv").and_then(Json::as_str) {
        Some(c) => c.to_owned(),
        None => return Response::error(400, "missing \"csv\" field"),
    };
    match state.catalog.ingest_csv(&name, &csv) {
        Ok(ds) => {
            let (dims, measures, views) = ds.shape();
            // Racing re-uploads of the same name can in principle remove
            // and replace the entry between ingest and this readback;
            // answer 500 rather than panicking the connection worker.
            let Some(fp) = state.catalog.ingested_fingerprint(&name) else {
                return Response::error(500, "ingested dataset vanished during readback");
            };
            Response::json(
                Json::obj()
                    .set("name", ds.name.as_str())
                    .set("rows", ds.rows())
                    .set("dims", dims)
                    .set("measures", measures)
                    .set("views", views)
                    .set("partitions", ds.table.partitions().len())
                    .set("fingerprint", format!("{fp:016x}"))
                    .compact(),
            )
        }
        Err(e) => Response::error(e.status(), &e.to_string()),
    }
}

/// The `/recommend` flow: parse → resolve dataset → plan SQL → probe the
/// response cache → (on miss) lease workers, run the engine through the
/// partials cache, store the rendered payload.
fn recommend(state: &AppState, req: &Request, trace: &TraceCtx) -> Response {
    let start = Instant::now();
    let result = recommend_inner(state, req, start, trace);
    match result {
        Ok(response) => {
            state.stats.recommends_ok.fetch_add(1, Ordering::Relaxed);
            response
        }
        Err(response) => {
            state.stats.recommends_err.fetch_add(1, Ordering::Relaxed);
            response
        }
    }
}

fn recommend_inner(
    state: &AppState,
    req: &Request,
    start: Instant,
    trace: &TraceCtx,
) -> Result<Response, Response> {
    let parsed = RecommendRequest::from_json(&req.body).map_err(|e| Response::error(400, &e))?;
    let rid = request_id(req, trace);
    let rid = rid.as_deref();

    // The deadline clock starts at request arrival and covers everything
    // downstream — catalog build, admission wait, engine run. A request
    // value (even an explicit 0 = "no deadline") overrides the server
    // default.
    let deadline_ms = parsed.deadline_ms.unwrap_or(state.default_deadline_ms);
    let cancel = if deadline_ms == 0 {
        CancelToken::none()
    } else {
        CancelToken::with_deadline(start + Duration::from_millis(deadline_ms))
    };

    let rows = state.catalog.resolve_rows(&parsed.dataset, parsed.rows);
    let dataset = {
        let _span = trace.span("catalog").arg("dataset", parsed.dataset.clone());
        state
            .catalog
            .dataset(&parsed.dataset, rows)
            .map_err(|e| Response::error(e.status(), &e.to_string()))?
    };
    let table = dataset.table.as_ref();

    // Target predicate: the request's WHERE body, or the dataset's
    // canonical target query.
    let (target, where_desc): (Predicate, String) = match &parsed.where_sql {
        Some(sql) => (plan_where(table, sql)?, sql.clone()),
        None => (
            dataset.target.clone(),
            format!("<default: {}>", dataset.task),
        ),
    };
    let reference = match parsed.reference.as_str() {
        "whole" => ReferenceSpec::WholeTable,
        "complement" => ReferenceSpec::Complement,
        sql => ReferenceSpec::Query(plan_where(table, sql)?),
    };

    // One canonical signature covers dataset instance + query + config.
    // The config part (`result_signature`) includes the pruning kind,
    // delta, and phase count for the pruning strategies, so probabilistic
    // results never cross-contaminate deterministic ones. Generated
    // instances are keyed by seed; ingested instances by their content
    // fingerprint, so re-uploading different bytes under the same name
    // re-keys every cache entry instead of serving stale results.
    let instance = match state.catalog.ingested_fingerprint(&dataset.name) {
        Some(fp) => ingested_instance_signature(&dataset.name, rows, fp),
        None => instance_signature(&dataset.name, rows, state.seed),
    };
    let signature = format!(
        "{instance}|{}|{}|{}",
        predicate_signature(&target),
        reference_signature(&reference),
        parsed.config.result_signature()
    );
    let response_key = format!("R|{signature}");

    // Operator-requested bypass: run the engine directly, cache nothing.
    if parsed.cache_mode == api::CacheMode::Bypass {
        trace.note("cache", "bypass");
        let (config, plan, lease) = plan_and_lease(
            state,
            &dataset,
            &parsed.config,
            &target,
            &reference,
            &cancel,
            trace,
        )
        .ok_or_else(|| shed_busy(state))?;
        let seedb = SeeDb::with_config(dataset.table.clone(), config).with_trace(trace.clone());
        let rec = match seedb.recommend_with(&target, &reference, cancel) {
            Ok(rec) => rec,
            Err(CoreError::DeadlineExceeded) => {
                // Bypass opted out of the cache, so there is no partial
                // to degrade to — the timeout is the honest answer.
                state
                    .stats
                    .deadline_timeouts
                    .fetch_add(1, Ordering::Relaxed);
                return Err(deadline_exceeded(deadline_ms));
            }
            Err(e) => return Err(Response::error(400, &e.to_string())),
        };
        drop(lease);
        record_last_run(state, &rec.stats);
        let payload = api::render_recommendation(&dataset, &rec).compact();
        let us = start.elapsed().as_micros() as u64;
        state.stats.response_bypass.fetch_add(1, Ordering::Relaxed);
        state.stats.bypass_us_total.fetch_add(us, Ordering::Relaxed);
        let explain = parsed
            .explain
            .then(|| explain_fragment(&plan, Some(&rec.stats)));
        return Ok(Response::json(envelope(
            &payload,
            &where_desc,
            "bypass",
            0,
            0,
            0,
            explain.as_deref(),
            None,
            rid,
            us,
        )));
    }

    let probed = {
        let _span = trace.span("cache_probe");
        state.cache.get(&response_key)
    };
    if let Some(CacheValue::Response(payload)) = probed {
        trace.note("cache", "hit");
        // A hit executes nothing, so EXPLAIN re-derives the plan this
        // request *would* run under and reports empty phase timings.
        let explain = parsed.explain.then(|| {
            let seedb = SeeDb::with_config(dataset.table.clone(), parsed.config.clone());
            explain_fragment(&seedb.plan(&target, &reference), None)
        });
        let us = start.elapsed().as_micros() as u64;
        state.stats.response_hits.fetch_add(1, Ordering::Relaxed);
        state.stats.hit_us_total.fetch_add(us, Ordering::Relaxed);
        return Ok(Response::json(envelope(
            &payload,
            &where_desc,
            "hit",
            0,
            0,
            0,
            explain.as_deref(),
            None,
            rid,
            us,
        )));
    }

    let partials = PartialCache::new(state.cache.clone(), instance.clone());

    // Admission: lease worker slots so concurrent requests share the
    // machine's morsel workers instead of each spawning a full pool. The
    // lease request is the *planned* worker count — a small or heavily
    // pruned query asks for 1 slot, not the whole machine. When every
    // permit stays busy past the bounded wait, degrade: serve whatever
    // the partials cache already holds, else shed with a retry hint.
    let Some((config, plan, lease)) = plan_and_lease(
        state,
        &dataset,
        &parsed.config,
        &target,
        &reference,
        &cancel,
        trace,
    ) else {
        let seedb = SeeDb::with_config(dataset.table.clone(), parsed.config.clone());
        if let Some(resp) = degraded_response(
            state,
            &seedb,
            &dataset,
            &target,
            &reference,
            &partials,
            &where_desc,
            start,
            rid,
            trace,
        ) {
            return Ok(resp);
        }
        return Err(shed_busy(state));
    };

    let seedb = SeeDb::with_config(dataset.table.clone(), config).with_trace(trace.clone());
    let (rec, usage) = match seedb.recommend_cached_with(&target, &reference, &partials, cancel) {
        Ok(v) => v,
        Err(CoreError::DeadlineExceeded) => {
            drop(lease);
            state
                .stats
                .deadline_timeouts
                .fetch_add(1, Ordering::Relaxed);
            if let Some(resp) = degraded_response(
                state,
                &seedb,
                &dataset,
                &target,
                &reference,
                &partials,
                &where_desc,
                start,
                rid,
                trace,
            ) {
                return Ok(resp);
            }
            return Err(deadline_exceeded(deadline_ms));
        }
        Err(e) => return Err(Response::error(400, &e.to_string())),
    };
    drop(lease);
    record_last_run(state, &rec.stats);

    let payload = api::render_recommendation(&dataset, &rec).compact();
    let us = start.elapsed().as_micros() as u64;
    let cache_label = if !usage.eligible {
        // No built-in configuration is ineligible today, but a future one
        // must surface as a bypass, not masquerade as a miss — and its
        // response must not be cached, or a repeat would report a cache
        // hit while the bypass counter claims the cache was not in play.
        state.stats.response_bypass.fetch_add(1, Ordering::Relaxed);
        state.stats.bypass_us_total.fetch_add(us, Ordering::Relaxed);
        "bypass"
    } else {
        {
            let _span = trace.span("cache_deposit");
            state.cache.put(
                &response_key,
                CacheValue::Response(Arc::new(payload.clone())),
            );
        }
        state.stats.response_misses.fetch_add(1, Ordering::Relaxed);
        state.stats.miss_us_total.fetch_add(us, Ordering::Relaxed);
        if usage.hits > 0 || usage.resumed > 0 {
            "partial"
        } else {
            "miss"
        }
    };
    trace.note("cache", cache_label);
    let explain = parsed
        .explain
        .then(|| explain_fragment(&plan, Some(&rec.stats)));
    Ok(Response::json(envelope(
        &payload,
        &where_desc,
        cache_label,
        usage.hits as u64,
        usage.misses as u64,
        usage.resumed as u64,
        explain.as_deref(),
        None,
        rid,
        us,
    )))
}

/// Derives the physical plan for `requested`, leases worker slots for its
/// planned parallelism, and pins the granted count into the config the
/// engine will actually run. When admission trims the grant below the
/// plan's choice, the plan is re-derived at the granted width so EXPLAIN
/// reports the shape that executes (morsel sizing tracks worker count) —
/// while keeping the knob provenance of the original request.
///
/// Admission never blocks unboundedly: a free permit is taken instantly
/// (`try_lease`, possibly trimmed to whatever is free — a 1-permit grant
/// is serial execution, bit-identical by engine contract); a fully
/// starved budget waits at most [`LEASE_WAIT`] (and never past half the
/// remaining deadline) for a single permit; past that, `None` — the
/// caller degrades or sheds, it does not queue forever.
#[allow(clippy::too_many_arguments)] // admission inputs + the trace handle
fn plan_and_lease<'a>(
    state: &'a AppState,
    dataset: &seedb_data::Dataset,
    requested: &SeeDbConfig,
    target: &Predicate,
    reference: &ReferenceSpec,
    cancel: &CancelToken,
    trace: &TraceCtx,
) -> Option<(SeeDbConfig, PhysicalPlan, BudgetLease<'a>)> {
    let plan_span = Instant::now();
    let mut plan =
        SeeDb::with_config(dataset.table.clone(), requested.clone()).plan(target, reference);
    trace.record(
        "plan",
        0,
        plan_span,
        plan_span.elapsed(),
        vec![("workers", plan.workers.to_string())],
    );
    let admission = trace.span("admission");
    let lease = match state.budget.try_lease(plan.workers) {
        Some(lease) => lease,
        None => {
            state.stats.lease_waits.fetch_add(1, Ordering::Relaxed);
            let wait = match cancel.remaining() {
                Some(left) => LEASE_WAIT.min(left / 2),
                None => LEASE_WAIT,
            };
            state.budget.lease_timeout(1, wait)?
        }
    };
    drop(admission.arg("granted", lease.granted().to_string()));
    let mut config = requested.clone();
    config.sharing.parallelism = Knob::Fixed(lease.granted());
    if lease.granted() != plan.workers {
        let workers_auto = plan.workers_auto;
        plan = SeeDb::with_config(dataset.table.clone(), config.clone()).plan(target, reference);
        plan.workers_auto = workers_auto;
    }
    Some((config, plan, lease))
}

/// The shed response for worker starvation: 503 with a machine-readable
/// code and a retry hint. Cheap by construction — no engine work happened.
fn shed_busy(state: &AppState) -> Response {
    state.stats.shed_busy.fetch_add(1, Ordering::Relaxed);
    Response::error_envelope(
        503,
        "all morsel workers are busy and no cached partial exists; retry shortly",
        "workers_busy",
        Some(1_000),
    )
}

/// The timeout response for a deadline that expired mid-run. The partial
/// phase results were discarded and nothing was cached, so a retry with a
/// longer deadline recomputes from whatever complete phases *earlier*
/// successful runs deposited.
fn deadline_exceeded(deadline_ms: u64) -> Response {
    Response::error_envelope(
        504,
        &format!("deadline of {deadline_ms} ms exceeded before the recommendation finished"),
        "deadline_exceeded",
        None,
    )
}

/// Assembles a degraded partial answer purely from cached per-view deltas
/// — zero scan work — for a request that cannot run (starved or out of
/// deadline). `None` when the cache holds nothing for this query; the
/// caller falls through to shed/timeout. The response is clearly tagged
/// (`"cache": "degraded"`, `"degraded": true`, a coverage ratio) and is
/// never deposited into the response cache: a later healthy request must
/// compute and cache the full answer.
#[allow(clippy::too_many_arguments)] // the envelope's per-request fields
fn degraded_response(
    state: &AppState,
    seedb: &SeeDb,
    dataset: &seedb_data::Dataset,
    target: &Predicate,
    reference: &ReferenceSpec,
    partials: &PartialCache,
    where_desc: &str,
    start: Instant,
    rid: Option<&str>,
    trace: &TraceCtx,
) -> Option<Response> {
    let (rec, coverage) = seedb.degraded_from_cache(target, reference, partials)?;
    trace.note("cache", "degraded");
    state.stats.degraded.fetch_add(1, Ordering::Relaxed);
    let payload = api::render_recommendation(dataset, &rec).compact();
    let us = start.elapsed().as_micros() as u64;
    Some(Response::json(envelope(
        &payload,
        where_desc,
        "degraded",
        0,
        0,
        0,
        None,
        Some(coverage),
        rid,
        us,
    )))
}

/// Records the executed plan summary and phase timings for `/statz`.
/// Poison recovery mirrors `/statz`'s read side: the tuple assignment
/// cannot leave the data half-written in any state a reader would see.
fn record_last_run(state: &AppState, stats: &ExecStats) {
    let mut last = state.stats.last_run.lock();
    *last = (stats.plan_summary.clone(), stats.phase_times_us.clone());
}

/// Renders the EXPLAIN fragment: the chosen plan plus, for runs that
/// actually executed, per-phase wall-clock timings and the zone-map
/// pruning counters. Cache hits pass `None` — nothing ran, so timings are
/// empty and the pruning counters are reported as zero.
fn explain_fragment(plan: &PhysicalPlan, stats: Option<&ExecStats>) -> String {
    let (times, scanned, pruned) = match stats {
        Some(s) => (
            s.phase_times_us
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(","),
            s.partitions_scanned,
            s.partitions_pruned,
        ),
        None => (String::new(), 0, 0),
    };
    format!(
        "{{\"plan\":{},\"phase_times_us\":[{times}],\"partitions_scanned\":{scanned},\"partitions_pruned\":{pruned}}}",
        plan.explain_json()
    )
}

/// Parses and plans a SQL `WHERE` body against the dataset schema,
/// rendering parse errors with their caret diagnostics.
fn plan_where(table: &dyn seedb_storage::Table, sql: &str) -> Result<Predicate, Response> {
    let expr = parse_expr(sql).map_err(|e| Response::error(400, &e.render(sql)))?;
    Planner::new(table)
        .plan_predicate(&expr)
        .map_err(|e| Response::error(400, &e.render(sql)))
}

/// Wraps the cached deterministic payload with per-request fields (cache
/// disposition — `hit`/`partial`/`miss`/`bypass` — latency, and the
/// request's own WHERE spelling; the cached payload is shared by every
/// spelling that normalizes to the same signature) without re-parsing it:
/// both sides are compact JSON objects, so the envelope splices at the
/// braces.
#[allow(clippy::too_many_arguments)] // the per-request envelope fields
fn envelope(
    payload: &str,
    where_desc: &str,
    cache: &str,
    view_hits: u64,
    view_misses: u64,
    view_resumed: u64,
    explain: Option<&str>,
    degraded_coverage: Option<f64>,
    request_id: Option<&str>,
    us: u64,
) -> String {
    let mut obj = Json::obj()
        .set("where", where_desc)
        .set("cache", cache)
        .set("view_hits", view_hits)
        .set("view_misses", view_misses)
        .set("view_resumed", view_resumed)
        .set("elapsed_us", us);
    if let Some(id) = request_id {
        obj = obj.set("request_id", id);
    }
    if let Some(coverage) = degraded_coverage {
        obj = obj.set("degraded", true).set("coverage", coverage);
    }
    let mut extra = obj.compact();
    if let Some(fragment) = explain {
        // The fragment is already compact JSON; splice it in verbatim.
        debug_assert!(fragment.starts_with('{') && fragment.ends_with('}'));
        extra = format!("{},\"explain\":{}}}", &extra[..extra.len() - 1], fragment);
    }
    debug_assert!(payload.starts_with('{') && extra.ends_with('}'));
    if payload.len() <= 2 {
        return extra;
    }
    format!("{},{}", &extra[..extra.len() - 1], &payload[1..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedb_engine::parallel::default_parallelism;

    fn state() -> AppState {
        AppState {
            catalog: Catalog::new(2_000, 500, 17),
            cache: Arc::new(RecCache::new(4 << 20)),
            budget: WorkerBudget::new(default_parallelism()),
            stats: ServerStats::default(),
            seed: 17,
            default_deadline_ms: 0,
            obs: Arc::new(Obs::default()),
            start: Instant::now(),
        }
    }

    fn post(state: &AppState, path: &str, body: &str) -> Response {
        handle(state, &Request::new("POST", path, body))
    }

    fn get(state: &AppState, path: &str) -> Response {
        handle(state, &Request::new("GET", path, ""))
    }

    #[test]
    fn healthz_and_statz_are_parseable() {
        let s = state();
        let r = get(&s, "/healthz");
        assert_eq!(r.status, 200);
        let j = Json::parse(&r.body).unwrap();
        assert_eq!(j.get("status").unwrap().as_str(), Some("ok"));
        let r = get(&s, "/statz");
        assert_eq!(r.status, 200);
        let j = Json::parse(&r.body).unwrap();
        assert!(j.get("cache").unwrap().get("budget_bytes").is_some());
        assert!(j.get("workers").unwrap().get("total").is_some());
    }

    #[test]
    fn unknown_routes_404_and_recommend_requires_post() {
        let s = state();
        assert_eq!(get(&s, "/nope").status, 404);
        assert_eq!(get(&s, "/recommend").status, 405);
    }

    #[test]
    fn recommend_round_trip_and_response_cache() {
        let s = state();
        let body = r#"{"dataset": "HOUSING", "rows": 300, "k": 3}"#;
        let r1 = post(&s, "/recommend", body);
        assert_eq!(r1.status, 200, "{}", r1.body);
        let j1 = Json::parse(&r1.body).unwrap();
        assert_eq!(j1.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(j1.get("views").unwrap().as_arr().unwrap().len(), 3);

        // The repeat is a response-cache hit with an identical payload.
        let r2 = post(&s, "/recommend", body);
        let j2 = Json::parse(&r2.body).unwrap();
        assert_eq!(j2.get("cache").unwrap().as_str(), Some("hit"));
        assert_eq!(j1.get("views"), j2.get("views"));
        assert_eq!(j1.get("all_utilities"), j2.get("all_utilities"));

        // An overlapping query (different k) reuses every partial.
        let r3 = post(
            &s,
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 300, "k": 5}"#,
        );
        let j3 = Json::parse(&r3.body).unwrap();
        assert_eq!(j3.get("cache").unwrap().as_str(), Some("partial"));
        assert_eq!(j3.get("view_misses").unwrap().as_u64(), Some(0));
        assert_eq!(j3.get("views").unwrap().as_arr().unwrap().len(), 5);
    }

    #[test]
    fn cached_responses_echo_each_requests_own_where_spelling() {
        // CENSUS's default target IS `marital_status = 'unmarried'`, so an
        // explicit spelling of it normalizes to the same signature and the
        // second request hits the response cache — yet each response must
        // echo its own request's WHERE text, not the other one's.
        let s = state();
        let default_body = r#"{"dataset": "CENSUS", "rows": 500, "k": 2}"#;
        let explicit_body = r#"{"dataset": "CENSUS", "rows": 500, "k": 2,
                                "where": "marital_status = 'unmarried'"}"#;
        let j1 = Json::parse(&post(&s, "/recommend", default_body).body).unwrap();
        let j2 = Json::parse(&post(&s, "/recommend", explicit_body).body).unwrap();
        assert_eq!(j2.get("cache").unwrap().as_str(), Some("hit"));
        assert_eq!(j1.get("views"), j2.get("views"));
        assert!(j1
            .get("where")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("<default:"));
        assert_eq!(
            j2.get("where").unwrap().as_str(),
            Some("marital_status = 'unmarried'")
        );
    }

    #[test]
    fn recommend_errors_are_client_errors() {
        let s = state();
        for body in [
            "not json",
            r#"{"dataset": "NOPE"}"#,
            r#"{"dataset": "HOUSING", "where": "ghost = 1"}"#,
            r#"{"dataset": "HOUSING", "where": "price >"}"#,
            r#"{"dataset": "HOUSING", "k": 0}"#,
        ] {
            let r = post(&s, "/recommend", body);
            assert_eq!(r.status, 400, "body {body} → {}", r.body);
            assert!(Json::parse(&r.body).unwrap().get("error").is_some());
        }
        assert_eq!(s.stats.recommends_err.load(Ordering::Relaxed), 5);
    }

    /// A small but non-trivial CSV: 2 dimensions × 1 measure, 60 rows.
    fn sample_csv() -> String {
        let mut csv = String::from("city,region,sales\n");
        for i in 0..60 {
            csv.push_str(&format!("c{},r{},{}\n", i % 4, i % 2, i));
        }
        csv
    }

    fn ingest_body(name: &str, csv: &str) -> String {
        Json::obj().set("name", name).set("csv", csv).compact()
    }

    #[test]
    fn ingest_then_recommend_then_repeat_is_a_hit() {
        let s = state();
        let r = post(&s, "/datasets", &ingest_body("trips", &sample_csv()));
        assert_eq!(r.status, 200, "{}", r.body);
        let j = Json::parse(&r.body).unwrap();
        assert_eq!(j.get("name").unwrap().as_str(), Some("trips"));
        assert_eq!(j.get("rows").unwrap().as_u64(), Some(60));
        assert_eq!(j.get("dims").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("measures").unwrap().as_u64(), Some(1));
        assert!(j.get("fingerprint").unwrap().as_str().unwrap().len() == 16);

        // The upload shows up in the catalog listing.
        let listing = Json::parse(&get(&s, "/datasets").body).unwrap();
        assert_eq!(listing.get("ingested").unwrap().as_arr().unwrap().len(), 1);

        // Recommend against it; the repeat is a response-cache hit with
        // an identical payload.
        let body = r#"{"dataset": "trips", "k": 2}"#;
        let r1 = post(&s, "/recommend", body);
        assert_eq!(r1.status, 200, "{}", r1.body);
        let j1 = Json::parse(&r1.body).unwrap();
        assert_eq!(j1.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(j1.get("dataset").unwrap().as_str(), Some("trips"));
        let j2 = Json::parse(&post(&s, "/recommend", body).body).unwrap();
        assert_eq!(j2.get("cache").unwrap().as_str(), Some("hit"));
        assert_eq!(j1.get("views"), j2.get("views"));
    }

    #[test]
    fn reingest_rekeys_the_response_cache() {
        // Uploading different bytes under the same name must not serve
        // the old upload's cached response: the instance signature is
        // fingerprint-keyed, so the next recommend is a miss.
        let s = state();
        post(&s, "/datasets", &ingest_body("d", &sample_csv()));
        let body = r#"{"dataset": "d", "k": 2}"#;
        let j1 = Json::parse(&post(&s, "/recommend", body).body).unwrap();
        assert_eq!(j1.get("cache").unwrap().as_str(), Some("miss"));

        let mut other = sample_csv();
        other.push_str("c9,r9,999\n");
        post(&s, "/datasets", &ingest_body("d", &other));
        let j2 = Json::parse(&post(&s, "/recommend", body).body).unwrap();
        assert_eq!(
            j2.get("cache").unwrap().as_str(),
            Some("miss"),
            "stale hit after re-upload: {j2:?}"
        );
    }

    #[test]
    fn ingest_errors_have_honest_statuses() {
        let s = state();
        // Malformed request bodies → 400.
        assert_eq!(post(&s, "/datasets", "not json").status, 400);
        assert_eq!(
            post(&s, "/datasets", r#"{"csv": "a,m\nx,1\n"}"#).status,
            400
        );
        assert_eq!(post(&s, "/datasets", r#"{"name": "d"}"#).status, 400);
        // Unusable CSV (no measure column) → 400 with an explanation.
        let r = post(&s, "/datasets", &ingest_body("d", "a,b\nx,y\n"));
        assert_eq!(r.status, 400, "{}", r.body);
        let j = Json::parse(&r.body).unwrap();
        assert!(j
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("measure"));
        // Over the row cap (2 000 in this fixture) → 413, not 500.
        let mut big = String::from("a,m\n");
        for i in 0..2_001 {
            big.push_str(&format!("x,{i}\n"));
        }
        let r = post(&s, "/datasets", &ingest_body("big", &big));
        assert_eq!(r.status, 413, "{}", r.body);
        // Nothing was stored; recommending against them still 400s.
        assert_eq!(post(&s, "/recommend", r#"{"dataset": "big"}"#).status, 400);
    }

    #[test]
    fn latency_histogram_records_and_reports_quantiles() {
        let h = LatencyHisto::default();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [3, 5, 9, 17, 1000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 5);
        // p50 = 3rd of 5 sorted observations (9) → bucket [8,16) → 16.
        assert_eq!(h.quantile_us(0.50), 16);
        // p99 lands on the max (1000) → bucket [512,1024) → 1024.
        assert_eq!(h.quantile_us(0.99), 1024);
        let j = h.json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(5));
        assert_eq!(j.get("total_us").unwrap().as_u64(), Some(1034));
        assert!(j.get("p95_us").unwrap().as_u64().is_some());
    }

    #[test]
    fn statz_reports_overload_counters_and_per_route_latency() {
        let s = state();
        post(
            &s,
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 300, "k": 2}"#,
        );
        let j = Json::parse(&get(&s, "/statz").body).unwrap();
        let overload = j.get("overload").unwrap();
        for key in [
            "sheds",
            "shed_busy",
            "write_errors",
            "deadline_timeouts",
            "degraded",
            "lease_waits",
        ] {
            assert!(overload.get(key).unwrap().as_u64().is_some(), "{key}");
        }
        let latency = j.get("latency").unwrap();
        let rec = latency.get("recommend").unwrap();
        assert_eq!(rec.get("count").unwrap().as_u64(), Some(1));
        assert!(rec.get("p50_us").unwrap().as_u64().unwrap() > 0);
        assert!(rec.get("p99_us").unwrap().as_u64().unwrap() >= 1);
        assert!(latency.get("other").is_some());
        assert!(latency.get("datasets").is_some());
    }

    #[test]
    fn expired_deadline_is_a_504_envelope_and_caches_nothing() {
        let s = state();
        // The injected build delay outlasts the 1 ms deadline, so the
        // engine starts with an already-expired token.
        s.catalog.set_build_delay_ms(20);
        let body = r#"{"dataset": "HOUSING", "rows": 300, "k": 3, "deadline_ms": 1}"#;
        let r = post(&s, "/recommend", body);
        assert_eq!(r.status, 504, "{}", r.body);
        let j = Json::parse(&r.body).unwrap();
        assert_eq!(j.get("code").unwrap().as_str(), Some("deadline_exceeded"));
        assert!(j.get("error").unwrap().as_str().is_some());
        assert!(s.cache.is_empty(), "a cancelled run must deposit nothing");
        assert_eq!(s.stats.deadline_timeouts.load(Ordering::Relaxed), 1);
        assert_eq!(s.stats.recommends_err.load(Ordering::Relaxed), 1);

        // Without a deadline the same request (instance now built, so the
        // delay is gone) completes and caches normally.
        let ok = post(
            &s,
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 300, "k": 3}"#,
        );
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert!(!s.cache.is_empty());
    }

    #[test]
    fn explicit_zero_deadline_overrides_the_server_default() {
        let mut s = state();
        s.default_deadline_ms = 1;
        s.catalog.set_build_delay_ms(20);
        // The server default would expire this request; deadline_ms: 0
        // turns the deadline off entirely.
        let r = post(
            &s,
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 300, "k": 2, "deadline_ms": 0}"#,
        );
        assert_eq!(r.status, 200, "{}", r.body);
        // And with the default left in force, the request times out.
        let mut s2 = state();
        s2.default_deadline_ms = 1;
        s2.catalog.set_build_delay_ms(20);
        let r = post(
            &s2,
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 400, "k": 2}"#,
        );
        assert_eq!(r.status, 504, "{}", r.body);
    }

    #[test]
    fn serial_degradation_is_bit_identical_to_the_parallel_run() {
        let s = state();
        let body = r#"{"dataset": "HOUSING", "rows": 300, "k": 3, "cache_mode": "bypass"}"#;
        let baseline = post(&s, "/recommend", body);
        assert_eq!(baseline.status, 200, "{}", baseline.body);
        // Leave exactly one free permit: admission trims the grant to 1
        // and the run executes serially.
        let total = s.budget.total();
        let hold = (total > 1).then(|| s.budget.lease(total - 1));
        let serial = post(&s, "/recommend", body);
        drop(hold);
        assert_eq!(serial.status, 200, "{}", serial.body);
        let a = Json::parse(&baseline.body).unwrap();
        let b = Json::parse(&serial.body).unwrap();
        assert_eq!(a.get("views"), b.get("views"), "serial ≠ parallel bits");
        assert_eq!(a.get("all_utilities"), b.get("all_utilities"));
    }

    #[test]
    fn full_starvation_degrades_to_cached_partials_or_sheds() {
        let s = state();
        // Cold cache + zero free permits → a shed, not a hang: the
        // bounded wait expires and there is nothing cached to serve.
        let hold = s.budget.lease(s.budget.total());
        let cold = post(
            &s,
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 300, "k": 3, "deadline_ms": 100}"#,
        );
        assert_eq!(cold.status, 503, "{}", cold.body);
        let j = Json::parse(&cold.body).unwrap();
        assert_eq!(j.get("code").unwrap().as_str(), Some("workers_busy"));
        assert!(j.get("retry_after_ms").unwrap().as_u64().unwrap() > 0);
        assert_eq!(s.stats.shed_busy.load(Ordering::Relaxed), 1);
        assert!(s.stats.lease_waits.load(Ordering::Relaxed) >= 1);
        drop(hold);

        // Warm the per-view partials with an exact (NO_OPT) run, then
        // starve again: an overlapping request (different k, so the
        // response cache misses) degrades to a cached-partial answer.
        let warm = post(
            &s,
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 300, "k": 3, "strategy": "NO_OPT"}"#,
        );
        assert_eq!(warm.status, 200, "{}", warm.body);
        let hold = s.budget.lease(s.budget.total());
        let r = post(
            &s,
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 300, "k": 5, "strategy": "NO_OPT", "deadline_ms": 100}"#,
        );
        drop(hold);
        assert_eq!(r.status, 200, "{}", r.body);
        let j = Json::parse(&r.body).unwrap();
        assert_eq!(j.get("cache").unwrap().as_str(), Some("degraded"));
        assert_eq!(j.get("degraded").unwrap().as_bool(), Some(true));
        let coverage = j.get("coverage").unwrap().as_num().unwrap();
        assert!(
            coverage > 0.99,
            "exact partials cover everything: {coverage}"
        );
        assert_eq!(j.get("views").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(s.stats.degraded.load(Ordering::Relaxed), 1);

        // Degraded answers are never cached: the repeat (permits back)
        // computes for real and deposits.
        let r2 = post(
            &s,
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 300, "k": 5, "strategy": "NO_OPT"}"#,
        );
        let j2 = Json::parse(&r2.body).unwrap();
        assert_ne!(j2.get("cache").unwrap().as_str(), Some("hit"));
        // The degraded answer came from exact full-table partials, so it
        // matches the real computation bit for bit.
        assert_eq!(j.get("views"), j2.get("views"));
        assert_eq!(j.get("all_utilities"), j2.get("all_utilities"));
    }

    #[test]
    fn envelope_splices_compact_objects() {
        let spliced = envelope(
            "{\"a\":1}",
            "x = 1",
            "hit",
            2,
            3,
            1,
            None,
            None,
            Some("r-1"),
            7,
        );
        let j = Json::parse(&spliced).unwrap();
        assert_eq!(j.get("cache").unwrap().as_str(), Some("hit"));
        assert_eq!(j.get("view_hits").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("view_resumed").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("request_id").unwrap().as_str(), Some("r-1"));
        assert_eq!(j.get("a").unwrap().as_u64(), Some(1));
        assert!(j.get("explain").is_none());

        // With an explain fragment, the nested object parses intact.
        let frag = "{\"plan\":{\"workers\":2},\"phase_times_us\":[4,5]}";
        let spliced = envelope(
            "{\"a\":1}",
            "x = 1",
            "miss",
            0,
            6,
            0,
            Some(frag),
            None,
            None,
            7,
        );
        let j = Json::parse(&spliced).unwrap();
        let ex = j.get("explain").unwrap();
        assert_eq!(
            ex.get("plan").unwrap().get("workers").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(ex.get("phase_times_us").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(j.get("a").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn explain_reports_plan_timings_and_does_not_change_cache_keys() {
        let s = state();
        let body = r#"{"dataset": "HOUSING", "rows": 300, "k": 3, "explain": true}"#;
        let j1 = Json::parse(&post(&s, "/recommend", body).body).unwrap();
        assert_eq!(j1.get("cache").unwrap().as_str(), Some("miss"));
        let ex = j1.get("explain").unwrap();
        let plan = ex.get("plan").unwrap();
        assert!(plan.get("workers").unwrap().as_u64().unwrap() >= 1);
        assert_eq!(plan.get("mode").unwrap().as_str(), Some("VECTORIZED"));
        assert!(plan.get("index").unwrap().as_str().is_some());
        assert!(plan.get("estimated_rows").unwrap().as_u64().is_some());
        let times = ex.get("phase_times_us").unwrap().as_arr().unwrap();
        assert!(!times.is_empty(), "an executed run must report timings");
        assert!(ex.get("partitions_scanned").unwrap().as_u64().is_some());

        // A repeat with explain is still a cache hit (explain is not part
        // of the signature); the re-derived plan matches, timings empty.
        let j2 = Json::parse(&post(&s, "/recommend", body).body).unwrap();
        assert_eq!(j2.get("cache").unwrap().as_str(), Some("hit"));
        let ex2 = j2.get("explain").unwrap();
        assert_eq!(ex2.get("plan"), ex.get("plan"));
        assert!(ex2
            .get("phase_times_us")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());

        // And a plain request hits the same entry, without the fragment.
        let plain = r#"{"dataset": "HOUSING", "rows": 300, "k": 3}"#;
        let j3 = Json::parse(&post(&s, "/recommend", plain).body).unwrap();
        assert_eq!(j3.get("cache").unwrap().as_str(), Some("hit"));
        assert!(j3.get("explain").is_none());
        assert_eq!(j1.get("views"), j3.get("views"));

        // /statz surfaces the executed plan's profiling.
        let statz = Json::parse(&get(&s, "/statz").body).unwrap();
        let rec = statz.get("recommend").unwrap();
        let summary = rec.get("last_plan_summary").unwrap().as_str().unwrap();
        assert!(summary.contains("workers="), "{summary}");
        assert!(!rec
            .get("last_phase_times_us")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn statz_survives_a_poisoned_stats_lock() {
        // Regression: a thread panicking while holding `last_run` used to
        // latch every future /statz (and every engine run's bookkeeping)
        // into a panic of its own via `.expect("stats lock poisoned")`.
        let s = std::sync::Arc::new(state());
        let s2 = s.clone();
        let _ = std::thread::spawn(move || {
            let _guard = s2.stats.last_run.lock();
            panic!("poison the stats lock");
        })
        .join();
        assert!(s.stats.last_run.is_poisoned());

        let r = get(&s, "/statz");
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(Json::parse(&r.body).is_ok());

        // The write side recovers too: a recommend records its run and
        // the next /statz serves the fresh summary.
        let rec = post(
            &s,
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 300, "k": 2}"#,
        );
        assert_eq!(rec.status, 200, "{}", rec.body);
        let j = Json::parse(&get(&s, "/statz").body).unwrap();
        let summary = j
            .get("recommend")
            .unwrap()
            .get("last_plan_summary")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        assert!(summary.contains("workers="), "{summary}");
    }

    #[test]
    fn statz_reports_uptime_and_admission_gauges() {
        let s = state();
        s.stats.queue_capacity.store(64, Ordering::Relaxed);
        s.stats.queue_depth.store(3, Ordering::Relaxed);
        s.stats.admission_wait_histo.record_us(250);
        let j = Json::parse(&get(&s, "/statz").body).unwrap();
        assert!(j.get("uptime_s").unwrap().as_u64().is_some());
        let adm = j.get("admission").unwrap();
        assert_eq!(adm.get("queue_depth").unwrap().as_u64(), Some(3));
        assert_eq!(adm.get("queue_capacity").unwrap().as_u64(), Some(64));
        let wait = adm.get("wait").unwrap();
        assert_eq!(wait.get("count").unwrap().as_u64(), Some(1));
        assert!(wait.get("p50_us").unwrap().as_u64().unwrap() >= 250);
    }

    #[test]
    fn metrics_exposition_is_valid_and_mirrors_stats() {
        let s = state();
        post(
            &s,
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 300, "k": 2}"#,
        );
        let r = get(&s, "/metrics");
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, seedb_obs::prom::CONTENT_TYPE);
        seedb_obs::prom::validate(&r.body).unwrap();
        assert!(r.body.contains("# TYPE seedbd_requests_total counter"));
        assert!(r.body.contains("# HELP seedbd_requests_total"));
        // The /recommend above plus this scrape's own increment race-free
        // lower bound: at least the recommend was counted.
        let line = r
            .body
            .lines()
            .find(|l| l.starts_with("seedbd_requests_total "))
            .unwrap();
        let value: f64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(value >= 1.0, "{line}");
        assert!(r.body.contains("seedbd_recommends_ok_total 1"));
        assert!(r.body.contains("seedbd_workers_total "));
        assert!(r.body.contains("seedbd_uptime_seconds "));
    }

    #[test]
    fn metrics_histogram_buckets_are_cumulative_and_match_the_histo() {
        let s = state();
        for us in [3, 5, 9, 17, 1000, 70_000] {
            s.stats.recommend_histo.record_us(us);
        }
        let body = get(&s, "/metrics").body;
        // Collect the recommend-route bucket series in order.
        let mut values = Vec::new();
        for line in body.lines() {
            if line.starts_with("seedbd_route_latency_us_bucket{route=\"recommend\"") {
                let v: f64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
                values.push(v as u64);
            }
        }
        // 40 finite buckets plus +Inf.
        assert_eq!(values.len(), seedb_obs::HISTO_BUCKETS + 1);
        assert!(
            values.windows(2).all(|w| w[0] <= w[1]),
            "le series must be cumulative: {values:?}"
        );
        assert_eq!(*values.last().unwrap(), 6, "+Inf equals the count");
        // De-cumulate the finite buckets and compare against the
        // histogram's raw counts; the final finite bucket is a catch-all,
        // so +Inf adds nothing beyond it.
        let raw = s.stats.recommend_histo.bucket_counts();
        for (i, pair) in values
            .windows(2)
            .take(seedb_obs::HISTO_BUCKETS - 1)
            .enumerate()
        {
            assert_eq!(pair[1] - pair[0], raw[i + 1], "bucket {}", i + 1);
        }
        assert_eq!(values[0], raw[0]);
        assert_eq!(
            values[seedb_obs::HISTO_BUCKETS - 1],
            *values.last().unwrap()
        );
        // _count and _sum agree with the histogram.
        assert!(body.contains("seedbd_route_latency_us_count{route=\"recommend\"} 6"));
        let sum_line = body
            .lines()
            .find(|l| l.starts_with("seedbd_route_latency_us_sum{route=\"recommend\"}"))
            .unwrap();
        let sum: f64 = sum_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert_eq!(sum as u64, s.stats.recommend_histo.total_us());
    }

    #[test]
    fn metrics_counters_are_monotonic_under_concurrent_clients() {
        let s = std::sync::Arc::new(state());
        // Warm once so worker threads mostly hit the response cache.
        post(
            &s,
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 300, "k": 2}"#,
        );
        let extract = |body: &str, name: &str| -> u64 {
            let prefix = format!("{name} ");
            body.lines()
                .find(|l| l.starts_with(&prefix))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse::<f64>().ok())
                .map(|v| v as u64)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut last_requests = 0u64;
                    let mut last_ok = 0u64;
                    for _ in 0..20 {
                        post(
                            &s,
                            "/recommend",
                            r#"{"dataset": "HOUSING", "rows": 300, "k": 2}"#,
                        );
                        let body = get(&s, "/metrics").body;
                        seedb_obs::prom::validate(&body).unwrap();
                        let requests = extract(&body, "seedbd_requests_total");
                        let ok = extract(&body, "seedbd_recommends_ok_total");
                        assert!(requests >= last_requests, "requests_total went backwards");
                        assert!(ok >= last_ok, "recommends_ok_total went backwards");
                        last_requests = requests;
                        last_ok = ok;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let final_body = get(&s, "/metrics").body;
        let ok = extract(&final_body, "seedbd_recommends_ok_total");
        assert_eq!(ok, 1 + 8 * 20);
    }

    #[test]
    fn debug_traces_index_and_export_round_trip() {
        let s = state();
        // Traced request: the flight recorder captures it end to end.
        let trace = s.obs.begin();
        assert!(trace.is_enabled());
        let req = Request::new(
            "POST",
            "/recommend",
            r#"{"dataset": "HOUSING", "rows": 300, "k": 2}"#,
        );
        let resp = handle_traced(&s, &req, &trace);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let rid = s.obs.request_id_for(&trace);
        assert_eq!(resp.request_id.as_deref(), Some(rid.as_str()));
        let envelope = Json::parse(&resp.body).unwrap();
        assert_eq!(
            envelope.get("request_id").unwrap().as_str(),
            Some(rid.as_str())
        );
        s.obs.finish(&trace, &rid, "/recommend", resp.status);

        // Index lists it.
        let idx = Json::parse(&get(&s, "/debug/traces").body).unwrap();
        let traces = idx.get("traces").unwrap().as_arr().unwrap();
        assert_eq!(traces.len(), 1);
        let entry = &traces[0];
        assert_eq!(entry.get("route").unwrap().as_str(), Some("/recommend"));
        assert_eq!(entry.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(
            entry.get("request_id").unwrap().as_str(),
            Some(rid.as_str())
        );
        let id = entry.get("id").unwrap().as_u64().unwrap();

        // Export is Chrome trace-event JSON with the expected spans, and
        // the phase spans sum to no more than the envelope's latency.
        let export = get(&s, &format!("/debug/traces/{id}"));
        assert_eq!(export.status, 200);
        let chrome = Json::parse(&export.body).unwrap();
        let events = chrome.get("traceEvents").unwrap().as_arr().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        for expected in ["catalog", "cache_probe", "plan", "admission", "phase"] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        let phase_sum: u64 = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("phase"))
            .map(|e| e.get("dur").unwrap().as_u64().unwrap())
            .sum();
        let elapsed = envelope.get("elapsed_us").unwrap().as_u64().unwrap();
        assert!(
            phase_sum <= elapsed,
            "phase spans ({phase_sum} µs) exceed the envelope total ({elapsed} µs)"
        );
        assert!(phase_sum > 0, "executed phases must record real durations");

        // Unknown and malformed ids are honest errors.
        assert_eq!(get(&s, "/debug/traces/999999").status, 404);
        assert_eq!(get(&s, "/debug/traces/nope").status, 400);
    }

    #[test]
    fn client_request_ids_are_echoed_and_traces_stay_disabled_without_obs() {
        let s = state();
        let mut req = Request::new("GET", "/healthz", "");
        req.request_id = Some("client-abc.1".to_owned());
        let resp = handle(&s, &req);
        assert_eq!(resp.request_id.as_deref(), Some("client-abc.1"));
        // Untraced requests without a client id carry no header at all.
        let resp = handle(&s, &Request::new("GET", "/healthz", ""));
        assert_eq!(resp.request_id, None);
    }

    #[test]
    fn bypass_mode_skips_the_cache_and_counts() {
        let s = state();
        let body = r#"{"dataset": "HOUSING", "rows": 300, "k": 3, "cache_mode": "bypass"}"#;
        let r1 = post(&s, "/recommend", body);
        assert_eq!(r1.status, 200, "{}", r1.body);
        let j1 = Json::parse(&r1.body).unwrap();
        assert_eq!(j1.get("cache").unwrap().as_str(), Some("bypass"));
        assert!(s.cache.is_empty(), "bypass must store nothing");
        assert_eq!(s.stats.response_bypass.load(Ordering::Relaxed), 1);
        assert_eq!(s.stats.response_hits.load(Ordering::Relaxed), 0);
        assert_eq!(s.stats.response_misses.load(Ordering::Relaxed), 0);

        // A bypass repeat is another engine run — and bit-identical.
        let j2 = Json::parse(&post(&s, "/recommend", body).body).unwrap();
        assert_eq!(j2.get("cache").unwrap().as_str(), Some("bypass"));
        assert_eq!(j1.get("views"), j2.get("views"));
        assert_eq!(s.stats.response_bypass.load(Ordering::Relaxed), 2);

        // Statz surfaces the counter.
        let statz = Json::parse(&get(&s, "/statz").body).unwrap();
        assert_eq!(
            statz
                .get("recommend")
                .unwrap()
                .get("bypass")
                .unwrap()
                .as_u64(),
            Some(2)
        );

        // The default configuration never bypasses: an auto repeat is a
        // response-cache hit and the bypass counter stays put.
        let auto_body = r#"{"dataset": "HOUSING", "rows": 300, "k": 3}"#;
        let _ = post(&s, "/recommend", auto_body);
        let j = Json::parse(&post(&s, "/recommend", auto_body).body).unwrap();
        assert_eq!(j.get("cache").unwrap().as_str(), Some("hit"));
        assert_eq!(j1.get("views"), j.get("views"), "bypass ≡ cached bits");
        assert_eq!(s.stats.response_bypass.load(Ordering::Relaxed), 2);
    }
}
