//! Deterministic fault injection for chaos-testing `seedbd`.
//!
//! A [`FaultPlan`] is parsed from a compact spec string (the `--faults`
//! flag) and decides, per accepted connection, which faults to apply.
//! Selection is a pure function of `(plan seed, connection index)` — a
//! splitmix64 hash — so a chaos run is reproducible: the same spec and
//! the same arrival order always fault the same connections. Faults model
//! the failure modes the overload machinery must absorb:
//!
//! * `slow_read` — the handler stalls before reading the request, as if
//!   the kernel drip-fed the bytes (a slow or malicious peer).
//! * `truncate_write` — the response socket accepts only the first N
//!   bytes, then errors, exercising the write-error accounting.
//! * `starve` — the handler seizes every free morsel-worker permit for a
//!   window, forcing concurrent `/recommend` runs down the degradation
//!   ladder (serial → cached-partial → shed).
//! * `slow_catalog` — every dataset build sleeps first, widening the
//!   window in which a deadline can expire mid-request.
//!
//! Spec grammar (comma-separated, all parts optional):
//!
//! ```text
//! seed=7,slow_read=3:50,truncate_write=5:64,starve=7:100,slow_catalog=30
//! ```
//!
//! `kind=P:X` faults connection `i` when `hash(seed, i) % P == 0` with
//! parameter `X` (milliseconds, or bytes for `truncate_write`);
//! `slow_catalog=MS` applies to every build unconditionally.

use std::io::{self, Write};

/// Deterministic per-connection fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Hash seed; distinct seeds fault distinct connection subsets.
    pub seed: u64,
    /// Every `P`-th hashed connection stalls `MS` ms before reading.
    pub slow_read: Option<(u64, u64)>,
    /// Every `P`-th hashed connection gets a socket that truncates the
    /// response after `BYTES` bytes and then errors.
    pub truncate_write: Option<(u64, u64)>,
    /// Every `P`-th hashed connection holds all free worker permits for
    /// `MS` ms before handling its own request.
    pub starve: Option<(u64, u64)>,
    /// Milliseconds every catalog build sleeps before generating.
    pub slow_catalog_ms: u64,
}

/// The faults resolved for one specific connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnFaults {
    /// Sleep this long before reading the request.
    pub slow_read_ms: Option<u64>,
    /// Cap response writes at this many bytes, then error.
    pub truncate_write_bytes: Option<u64>,
    /// Hold all free worker permits this long before handling.
    pub starve_ms: Option<u64>,
}

impl ConnFaults {
    /// True when no fault applies to this connection.
    pub fn is_clean(&self) -> bool {
        *self == ConnFaults::default()
    }
}

impl FaultPlan {
    /// Parses a spec string. Every error is a human-readable message for
    /// the `--faults` flag to print.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec part '{part}' is not key=value"))?;
            match key {
                "seed" => plan.seed = parse_u64(value, "seed")?,
                "slow_read" => plan.slow_read = Some(parse_period_param(value, "slow_read")?),
                "truncate_write" => {
                    plan.truncate_write = Some(parse_period_param(value, "truncate_write")?)
                }
                "starve" => plan.starve = Some(parse_period_param(value, "starve")?),
                "slow_catalog" => plan.slow_catalog_ms = parse_u64(value, "slow_catalog")?,
                other => {
                    return Err(format!(
                        "unknown fault '{other}' (expected seed, slow_read, \
                         truncate_write, starve, or slow_catalog)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// The faults that apply to connection number `conn` (the accept
    /// loop's monotonically increasing counter).
    pub fn for_conn(&self, conn: u64) -> ConnFaults {
        let hit = |fault: Option<(u64, u64)>, salt: u64| -> Option<u64> {
            let (period, param) = fault?;
            splitmix64(self.seed ^ salt ^ conn)
                .is_multiple_of(period)
                .then_some(param)
        };
        ConnFaults {
            slow_read_ms: hit(self.slow_read, 0x51),
            truncate_write_bytes: hit(self.truncate_write, 0x7c),
            starve_ms: hit(self.starve, 0xa3),
        }
    }
}

fn parse_u64(text: &str, key: &str) -> Result<u64, String> {
    text.parse()
        .map_err(|_| format!("fault '{key}' expects a number, got '{text}'"))
}

/// Parses `PERIOD:PARAM` with `PERIOD ≥ 1`.
fn parse_period_param(text: &str, key: &str) -> Result<(u64, u64), String> {
    let (period, param) = text
        .split_once(':')
        .ok_or_else(|| format!("fault '{key}' expects PERIOD:PARAM, got '{text}'"))?;
    let period = parse_u64(period, key)?;
    if period == 0 {
        return Err(format!("fault '{key}' period must be at least 1"));
    }
    Ok((period, parse_u64(param, key)?))
}

/// splitmix64: a full-period 64-bit mixer; consecutive connection indices
/// map to well-scattered hashes, so `% period` sampling is unbiased.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A writer that forwards at most `cap` bytes to the inner writer and
/// fails every write after that — the shape of a peer that vanished
/// mid-response. The error is `BrokenPipe`, what a real dead socket
/// raises, so the handler's write-error accounting sees the same thing
/// either way.
pub struct TruncatingWriter<W> {
    inner: W,
    remaining: u64,
}

impl<W: Write> TruncatingWriter<W> {
    /// Wraps `inner`, allowing `cap` bytes through.
    pub fn new(inner: W, cap: u64) -> Self {
        TruncatingWriter {
            inner,
            remaining: cap,
        }
    }
}

impl<W: Write> Write for TruncatingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected fault: write truncated",
            ));
        }
        let allowed = (self.remaining as usize).min(buf.len());
        let written = self.inner.write(&buf[..allowed])?;
        self.remaining -= written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec() {
        let plan = FaultPlan::parse(
            "seed=7,slow_read=3:50,truncate_write=5:64,starve=7:100,slow_catalog=30",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.slow_read, Some((3, 50)));
        assert_eq!(plan.truncate_write, Some((5, 64)));
        assert_eq!(plan.starve, Some((7, 100)));
        assert_eq!(plan.slow_catalog_ms, 30);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn rejects_malformed_specs_with_messages() {
        for (spec, needle) in [
            ("nonsense", "key=value"),
            ("warp=1:2", "unknown fault"),
            ("slow_read=abc", "PERIOD:PARAM"),
            ("slow_read=0:5", "at least 1"),
            ("seed=xyz", "number"),
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec '{spec}': {err}");
        }
    }

    #[test]
    fn fault_selection_is_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::parse("seed=7,slow_read=3:50").unwrap();
        let hits: Vec<bool> = (0..64)
            .map(|i| plan.for_conn(i).slow_read_ms.is_some())
            .collect();
        assert_eq!(
            hits,
            (0..64)
                .map(|i| plan.for_conn(i).slow_read_ms.is_some())
                .collect::<Vec<_>>(),
            "same plan, same connection order → same faults"
        );
        // Roughly a third of connections hit with period 3 — and at least
        // one side of the split is non-trivial.
        let count = hits.iter().filter(|&&h| h).count();
        assert!((8..=40).contains(&count), "period-3 hit count {count}");
        // A different seed faults a different subset.
        let other = FaultPlan::parse("seed=8,slow_read=3:50").unwrap();
        let other_hits: Vec<bool> = (0..64)
            .map(|i| other.for_conn(i).slow_read_ms.is_some())
            .collect();
        assert_ne!(hits, other_hits);
    }

    #[test]
    fn period_one_faults_every_connection() {
        let plan = FaultPlan::parse("truncate_write=1:16").unwrap();
        for i in 0..32 {
            assert_eq!(plan.for_conn(i).truncate_write_bytes, Some(16));
        }
        assert!(plan.for_conn(0).slow_read_ms.is_none());
    }

    #[test]
    fn truncating_writer_caps_then_errors() {
        let mut out = Vec::new();
        let mut w = TruncatingWriter::new(&mut out, 5);
        assert_eq!(w.write(b"abc").unwrap(), 3);
        assert_eq!(w.write(b"defg").unwrap(), 2);
        let err = w.write(b"h").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(out, b"abcde");
    }
}
