//! The ISSUE-mandated cache guarantees, tested end to end:
//!
//! 1. deterministic LRU eviction under a fixed memory budget,
//! 2. signature collision-freedom across differing predicates/configs
//!    (property-based),
//! 3. responses under 8 parallel clients bit-identical to direct
//!    `SeeDb::recommend` on the same inputs.

use proptest::prelude::*;
use seedb_core::{
    predicate_signature, DistanceKind, ExecutionStrategy, Knob, MemoryViewCache, Predicate,
    PruningKind, Recommendation, ReferenceSpec, SeeDb, SeeDbConfig,
};
use seedb_engine::CmpOp;
use seedb_server::{client, Server, ServerConfig};
use seedb_storage::ColumnId;
use seedb_util::Json;

fn boot(cache_bytes: usize) -> seedb_server::ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_rows: 3_000,
        default_rows: 800,
        cache_bytes,
        ..Default::default()
    };
    Server::bind(config).unwrap().spawn().unwrap()
}

/// 1a. Server-level: a cache squeezed far below the working set must
/// evict (deterministically, oldest first) yet stay correct — a re-issued
/// query recomputes and matches its original response exactly.
#[test]
fn tiny_budget_evicts_but_stays_correct() {
    let handle = boot(8 * 1024); // far too small for several responses
    let addr = handle.addr();

    let bodies: Vec<String> = (1..=6)
        .map(|k| format!(r#"{{"dataset": "HOUSING", "rows": 300, "k": {k}}}"#))
        .collect();
    let mut first: Vec<Json> = Vec::new();
    for body in &bodies {
        let (status, j) = client::request_json(addr, "POST", "/recommend", Some(body)).unwrap();
        assert_eq!(status, 200);
        first.push(j);
    }
    let state = handle.state();
    assert!(
        state
            .cache
            .stats()
            .evictions
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "six responses + partials cannot fit 8 KiB without eviction"
    );
    assert!(state.cache.bytes() <= state.cache.budget());

    // Replay: some will be misses (evicted), but every payload must be
    // byte-identical to the first pass.
    for (body, want) in bodies.iter().zip(&first) {
        let (status, j) = client::request_json(addr, "POST", "/recommend", Some(body)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(want.get("views"), j.get("views"));
        assert_eq!(want.get("all_utilities"), j.get("all_utilities"));
    }
    handle.shutdown();
}

/// 2. Property: distinct predicates and distinct result-affecting configs
///    never collide in signature space.
fn arb_leaf() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        Just(Predicate::True),
        Just(Predicate::False),
        (0u32..4, 0u32..5).prop_map(|(col, code)| Predicate::CatEq {
            col: ColumnId(col),
            code,
        }),
        (0u32..4, prop::collection::vec(0u32..6, 1..4)).prop_map(|(col, codes)| {
            Predicate::CatIn {
                col: ColumnId(col),
                codes,
            }
        }),
        (0u32..4, any::<bool>()).prop_map(|(col, value)| Predicate::BoolEq {
            col: ColumnId(col),
            value,
        }),
        (0u32..4, 0usize..6, -50.0f64..50.0).prop_map(|(col, op, value)| {
            let op = [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ][op];
            Predicate::NumCmp {
                col: ColumnId(col),
                op,
                value,
            }
        }),
        (0u32..4).prop_map(|col| Predicate::IsNull { col: ColumnId(col) }),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    // One level of structure on top of leaves.
    prop_oneof![
        arb_leaf().boxed(),
        prop::collection::vec(arb_leaf(), 2..4)
            .prop_map(Predicate::And)
            .boxed(),
        prop::collection::vec(arb_leaf(), 2..4)
            .prop_map(Predicate::Or)
            .boxed(),
        arb_leaf().prop_map(|p| Predicate::Not(Box::new(p))).boxed(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn signatures_collide_only_for_canonically_equal_predicates(
        a in arb_predicate(),
        b in arb_predicate(),
    ) {
        let sa = predicate_signature(&a);
        let sb = predicate_signature(&b);
        if sa == sb {
            // Equal signatures are only allowed for inputs the canonical
            // form identifies: re-canonicalizing must agree, and both
            // predicates must reference the same columns.
            let mut cols_a = Vec::new();
            let mut cols_b = Vec::new();
            a.collect_columns(&mut cols_a);
            b.collect_columns(&mut cols_b);
            cols_a.sort_unstable_by_key(|c| c.0);
            cols_b.sort_unstable_by_key(|c| c.0);
            cols_a.dedup();
            cols_b.dedup();
            prop_assert_eq!(cols_a, cols_b, "signature collided across columns");
        }
    }

    #[test]
    fn config_signatures_separate_result_affecting_knobs(
        k in 1usize..8,
        metric in 0usize..7,
        strategy in 0usize..3,
    ) {
        let mut cfg = SeeDbConfig::for_strategy(
            [ExecutionStrategy::NoOpt, ExecutionStrategy::Sharing, ExecutionStrategy::Comb][strategy],
        );
        cfg.k = k;
        cfg.metric = DistanceKind::ALL[metric];
        let sig = cfg.result_signature();

        // Any single result-affecting change must move the signature.
        let mut other = cfg.clone();
        other.k += 1;
        prop_assert_ne!(sig.clone(), other.result_signature());
        let mut other = cfg.clone();
        other.metric = DistanceKind::ALL[(metric + 1) % DistanceKind::ALL.len()];
        prop_assert_ne!(sig.clone(), other.result_signature());

        // Execution-shape changes must NOT move it.
        let mut same = cfg.clone();
        same.engine_mode = seedb_core::ExecMode::Scalar;
        same.sharing.parallelism = Knob::Fixed(5);
        same.sharing.morsel_rows = Knob::Fixed(3);
        same.sharing.combine_group_bys = false;
        prop_assert_eq!(sig, same.result_signature());
    }
}

/// 4. Property (the ISSUE's pruned-cache guarantee): `recommend_cached`
///    is bit-identical to `recommend` for *pruned* configurations, across
///    pruning scheme (CI/MAB), parallelism (1/8), and cache state
///    (cold / warm / prefix-resume — the cache warmed by a *different* k,
///    which leaves shorter prefixes that the run must resume, not
///    restart).
mod pruned_equivalence {
    use super::*;
    use seedb_storage::{BoxedTable, ColumnDef, StoreKind, TableBuilder, Value};

    /// A 6-view table whose `BY d0` views deviate maximally (EMD ≈ 1)
    /// while `d1`/`d2` are noise — separated enough for CI to discard
    /// noise views before the final phase, so prefix entries are real.
    fn table() -> BoxedTable {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("d0"),
            ColumnDef::dim("d1"),
            ColumnDef::dim("d2"),
            ColumnDef::measure("m0"),
            ColumnDef::measure("m1"),
        ]);
        for i in 0..240u32 {
            b.push_row(&[
                Value::str(format!("g{}", i % 4)),
                Value::str(format!("x{}", i % 3)),
                Value::str(format!("y{}", i % 5)),
                Value::Float(50.0),
                Value::Float((i % 11) as f64),
            ])
            .unwrap();
        }
        b.build(StoreKind::Column).unwrap()
    }

    fn target(t: &dyn seedb_storage::Table) -> Predicate {
        Predicate::Or(vec![
            Predicate::col_eq_str(t, "d0", "g0"),
            Predicate::col_eq_str(t, "d0", "g1"),
        ])
    }

    fn config(k: usize, pruning: PruningKind, parallelism: usize) -> SeeDbConfig {
        let mut cfg = SeeDbConfig::default(); // COMB
        cfg.k = k;
        cfg.pruning = pruning;
        cfg.num_phases = 6;
        cfg.sharing.parallelism = Knob::Fixed(parallelism);
        cfg
    }

    fn assert_bitwise_equal(a: &Recommendation, b: &Recommendation, ctx: &str) {
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(a.views.len(), b.views.len(), "{ctx}");
        for (x, y) in a.views.iter().zip(&b.views) {
            assert_eq!(x.spec, y.spec, "{ctx}");
            assert_eq!(x.utility.to_bits(), y.utility.to_bits(), "{ctx}");
            assert_eq!(x.group_labels, y.group_labels, "{ctx}");
            assert_eq!(bits(&x.target_values), bits(&y.target_values), "{ctx}");
            assert_eq!(
                bits(&x.reference_values),
                bits(&y.reference_values),
                "{ctx}"
            );
            assert_eq!(
                bits(&x.target_distribution),
                bits(&y.target_distribution),
                "{ctx}"
            );
            assert_eq!(
                bits(&x.reference_distribution),
                bits(&y.reference_distribution),
                "{ctx}"
            );
        }
        assert_eq!(bits(&a.all_utilities), bits(&b.all_utilities), "{ctx}");
        assert_eq!(a.phases_executed, b.phases_executed, "{ctx}");
        assert_eq!(a.early_stopped, b.early_stopped, "{ctx}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn recommend_cached_is_bit_identical_for_pruned_configs(
            k in 1usize..4,
            warm_k in 1usize..4,
            pruning in prop_oneof![Just(PruningKind::Ci), Just(PruningKind::Mab)],
            parallelism in prop_oneof![Just(1usize), Just(8usize)],
        ) {
            let table = table();
            let reference = ReferenceSpec::WholeTable;
            let t = target(table.as_ref());
            let cfg = config(k, pruning, parallelism);
            let seedb = SeeDb::with_config(table.clone(), cfg);
            let direct = seedb.recommend(&t, &reference).unwrap();

            // Cold: an empty cache.
            let cache = MemoryViewCache::new();
            let (cold, u) = seedb.recommend_cached(&t, &reference, &cache).unwrap();
            prop_assert!(u.eligible);
            assert_bitwise_equal(&direct, &cold, "cold");

            // Warm: the same configuration replays everything — zero rows
            // scanned — and still matches bit for bit.
            let (warm, u) = seedb.recommend_cached(&t, &reference, &cache).unwrap();
            prop_assert!(u.fully_cached(), "{u:?}");
            prop_assert_eq!(warm.stats.rows_scanned, 0);
            assert_bitwise_equal(&direct, &warm, "warm");

            // Prefix-resume: a cache warmed under a *different* k (and CI)
            // holds shorter prefixes for views that k prunes later; the
            // run must resume them mid-scan and still match bit for bit.
            let resume_cache = MemoryViewCache::new();
            let warm_cfg = config(warm_k, PruningKind::Ci, parallelism);
            let warmer = SeeDb::with_config(table.clone(), warm_cfg);
            let _ = warmer.recommend_cached(&t, &reference, &resume_cache).unwrap();
            let (resumed, u) = seedb.recommend_cached(&t, &reference, &resume_cache).unwrap();
            prop_assert_eq!(u.misses, 0, "every view has at least a prefix: {:?}", u);
            assert_bitwise_equal(&direct, &resumed, "prefix-resume");
        }
    }
}

/// 3. Eight parallel clients, mixed repeated/overlapping queries: every
///    response must be bit-identical to a direct `SeeDb::recommend` with
///    the same inputs (rendered through the same pipeline).
#[test]
fn concurrent_responses_match_direct_library_calls() {
    let handle = boot(32 << 20);
    let addr = handle.addr();

    // The server's exact dataset instance: same name/rows/seed/layout.
    let catalog = seedb_server::Catalog::new(3_000, 800, 17);
    let dataset = catalog.dataset("CENSUS", 800).unwrap();

    // Direct library ground truth for k = 1..4, rendered with the same
    // renderer the server uses.
    let truth: Vec<Json> = (1..=4)
        .map(|k| {
            let mut cfg = seedb_server::api::default_config();
            cfg.k = k;
            let seedb = SeeDb::with_config(dataset.table.clone(), cfg);
            let rec = seedb
                .recommend(&dataset.target, &ReferenceSpec::WholeTable)
                .unwrap();
            seedb_server::api::render_recommendation(&dataset, &rec)
        })
        .collect();

    let responses: Vec<(usize, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|client_id| {
                let truth = &truth;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for round in 0..3 {
                        // Overlapping ks: same partials, different top-k.
                        let k = 1 + (client_id + round) % truth.len();
                        let body = format!(r#"{{"dataset": "CENSUS", "rows": 800, "k": {k}}}"#);
                        let (status, j) =
                            client::request_json(addr, "POST", "/recommend", Some(&body)).unwrap();
                        assert_eq!(status, 200);
                        out.push((k, j));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    assert_eq!(responses.len(), 24);
    for (k, response) in responses {
        let want = &truth[k - 1];
        assert_eq!(
            want.get("views"),
            response.get("views"),
            "k={k}: server response diverged from direct SeeDb::recommend"
        );
        assert_eq!(want.get("all_utilities"), response.get("all_utilities"));
        assert_eq!(want.get("rows"), response.get("rows"));
    }
    handle.shutdown();
}
