//! End-to-end observability tests over real sockets: request-id
//! correlation, the flight recorder's Chrome-trace export, and the
//! Prometheus endpoint as a scraper would see them.

use seedb_server::{client, Server, ServerConfig};
use seedb_util::Json;

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_rows: 2_000,
        default_rows: 500,
        ..Default::default()
    }
}

const RECOMMEND: &str = r#"{"dataset": "HOUSING", "rows": 300, "k": 2}"#;

#[test]
fn request_ids_correlate_header_envelope_and_trace() {
    let handle = Server::bind(test_config()).unwrap().spawn().unwrap();
    let addr = handle.addr();

    // A client-sent id is echoed in the header and the envelope.
    let (status, headers, body) = client::request_with_headers(
        addr,
        "POST",
        "/recommend",
        Some(RECOMMEND),
        &[("X-Request-Id", "probe-42")],
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(client::header(&headers, "x-request-id"), Some("probe-42"));
    let envelope = Json::parse(&body).unwrap();
    assert_eq!(
        envelope.get("request_id").and_then(Json::as_str),
        Some("probe-42")
    );

    // Without a client id the server generates one — same in both places.
    let (_, headers, body) =
        client::request_with_headers(addr, "POST", "/recommend", Some(RECOMMEND), &[]).unwrap();
    let echoed = client::header(&headers, "x-request-id").expect("generated id echoed");
    assert!(echoed.starts_with("r-"), "{echoed}");
    let envelope = Json::parse(&body).unwrap();
    assert_eq!(
        envelope.get("request_id").and_then(Json::as_str),
        Some(echoed)
    );

    // The flight recorder indexed the traced request under that id.
    let (status, index) = client::request_json(addr, "GET", "/debug/traces", None).unwrap();
    assert_eq!(status, 200);
    let traces = index.get("traces").and_then(Json::as_arr).unwrap();
    assert!(
        traces.iter().any(|t| {
            t.get("request_id").and_then(Json::as_str) == Some("probe-42")
                && t.get("route").and_then(Json::as_str) == Some("/recommend")
        }),
        "probe-42 missing from {}",
        index.compact()
    );
    handle.shutdown();
}

#[test]
fn trace_export_covers_the_whole_request_life() {
    let handle = Server::bind(test_config()).unwrap().spawn().unwrap();
    let addr = handle.addr();

    let (status, headers, body) = client::request_with_headers(
        addr,
        "POST",
        "/recommend",
        Some(RECOMMEND),
        &[("X-Request-Id", "lifecycle")],
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(client::header(&headers, "x-request-id"), Some("lifecycle"));
    let envelope = Json::parse(&body).unwrap();
    let elapsed_us = envelope
        .get("elapsed_us")
        .and_then(Json::as_num)
        .expect("envelope elapsed_us");

    // Find the trace id for our request, then export it.
    let (_, index) = client::request_json(addr, "GET", "/debug/traces", None).unwrap();
    let id = index
        .get("traces")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .find(|t| t.get("request_id").and_then(Json::as_str) == Some("lifecycle"))
        .and_then(|t| t.get("id").and_then(Json::as_u64))
        .expect("traced request indexed");
    let (status, export) =
        client::request_json(addr, "GET", &format!("/debug/traces/{id}"), None).unwrap();
    assert_eq!(status, 200);

    // Chrome trace-event shape: a traceEvents array of "X" spans.
    let events = export.get("traceEvents").and_then(Json::as_arr).unwrap();
    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for expected in [
        "queue_wait",
        "http_read",
        "catalog",
        "cache_probe",
        "plan",
        "admission",
        "phase",
        "response_write",
    ] {
        assert!(
            span_names.contains(&expected),
            "missing span {expected} in {span_names:?}"
        );
    }

    // Executed-phase durations must fit inside the envelope's latency.
    let phase_us: f64 = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("phase"))
        .filter_map(|e| e.get("dur").and_then(Json::as_num))
        .sum();
    assert!(phase_us > 0.0, "phase spans carry durations");
    assert!(
        phase_us <= elapsed_us + 1_000.0,
        "phase spans ({phase_us} us) exceed envelope latency ({elapsed_us} us)"
    );
    handle.shutdown();
}

#[test]
fn metrics_scrape_over_tcp_reflects_served_traffic() {
    let handle = Server::bind(test_config()).unwrap().spawn().unwrap();
    let addr = handle.addr();
    let (status, body) = client::request(addr, "POST", "/recommend", Some(RECOMMEND)).unwrap();
    assert_eq!(status, 200, "{body}");

    let (status, headers, metrics) =
        client::request_with_headers(addr, "GET", "/metrics", None, &[]).unwrap();
    assert_eq!(status, 200);
    assert!(client::header(&headers, "content-type")
        .unwrap()
        .starts_with("text/plain"));
    seedb_obs::prom::validate(&metrics).unwrap();
    let value = |name: &str| -> f64 {
        metrics
            .lines()
            .find(|l| l.starts_with(&format!("{name} ")))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{name} missing from scrape"))
    };
    assert!(value("seedbd_requests_total") >= 1.0);
    assert!(value("seedbd_recommends_ok_total") >= 1.0);
    // The daemon path feeds the admission gauges and wait histogram.
    assert!(value("seedbd_admission_queue_capacity") >= 1.0);
    assert!(value("seedbd_admission_wait_us_count") >= 1.0);
    assert!(value("seedbd_uptime_seconds") >= 0.0);
    handle.shutdown();
}
