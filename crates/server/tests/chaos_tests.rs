//! Chaos tests: overload, slow peers, injected faults, and deadlines.
//!
//! The invariants under test, from the overload design:
//!
//! * shedding is immediate and structured — a full admission queue
//!   answers `503` + `Retry-After` in far less than a request takes;
//! * no request outlives its deadline by more than bounded overshoot;
//! * a deadline-cancelled run deposits **nothing** into the cache;
//! * client-attributable faults (malformed frames, vanished peers,
//!   truncated sockets) never produce a `500`;
//! * a slow-loris peer pins one worker, not the daemon.

use seedb_server::client;
use seedb_server::router::{handle, AppState, ServerStats};
use seedb_server::{Catalog, RecCache, Request, Server, ServerConfig};
use seedb_util::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_rows: 2_000,
        default_rows: 500,
        ..Default::default()
    }
}

/// Reads whatever the server sends until EOF (its own timeouts bound
/// this), tolerating read errors from injected faults.
fn drain(stream: &mut TcpStream) -> String {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(15)));
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    raw
}

#[test]
fn full_admission_queue_sheds_fast_with_retry_after() {
    let handle = Server::bind(ServerConfig {
        max_connections: 1,
        admission_queue: 1,
        ..config()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let addr = handle.addr();

    // Occupy the single worker with an idle connection (it blocks in
    // read_request), then fill the one-slot queue with another.
    let worker_pin = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let queue_pin = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The next connection must be shed inline — long before IO_TIMEOUT.
    let started = Instant::now();
    let mut shed = TcpStream::connect(addr).unwrap();
    let raw = drain(&mut shed);
    let elapsed = started.elapsed();
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    assert!(raw.contains("Retry-After: 1\r\n"), "{raw}");
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let j = Json::parse(body).unwrap();
    assert_eq!(j.get("code").unwrap().as_str(), Some("overloaded"));
    assert!(j.get("error").unwrap().as_str().is_some());
    assert!(j.get("retry_after_ms").unwrap().as_u64().unwrap() > 0);
    assert!(
        elapsed < Duration::from_secs(2),
        "shed took {elapsed:?}; it must not wait on a worker"
    );
    assert!(handle.state().stats.sheds.load(Ordering::Relaxed) >= 1);

    // Releasing the pins frees the worker; the daemon serves again.
    drop(worker_pin);
    drop(queue_pin);
    std::thread::sleep(Duration::from_millis(100));
    let (status, body) = client::request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{body}");
    handle.shutdown();
}

#[test]
fn slow_loris_pins_one_worker_not_the_daemon() {
    let handle = Server::bind(ServerConfig {
        max_connections: 2,
        ..config()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let addr = handle.addr();

    // The loris: complete headers declaring a 50-byte body, then a slow
    // drip that never finishes.
    let mut loris = TcpStream::connect(addr).unwrap();
    write!(
        loris,
        "POST /recommend HTTP/1.1\r\nHost: x\r\nContent-Length: 50\r\n\r\n"
    )
    .unwrap();
    loris.flush().unwrap();

    // While the loris occupies a worker, healthy requests on the other
    // worker keep meeting interactive latencies.
    for _ in 0..3 {
        let _ = loris.write(b"{");
        let started = Instant::now();
        let (status, _) = client::request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "healthy request stalled behind the loris"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Abandoning the loris reclaims its worker: with both workers free,
    // two fresh idle-then-closed connections are both served 4xx frames
    // (or dropped), and a real request still works.
    drop(loris);
    std::thread::sleep(Duration::from_millis(100));
    let (status, body) = client::request(
        addr,
        "POST",
        "/recommend",
        Some(r#"{"dataset": "HOUSING", "rows": 300, "k": 2}"#),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    handle.shutdown();
}

/// In-process state mirroring the daemon's, for deterministic deadline
/// tests without socket timing noise.
fn app_state(default_deadline_ms: u64) -> AppState {
    AppState {
        catalog: Catalog::new(2_000, 500, 17),
        cache: Arc::new(RecCache::new(4 << 20)),
        budget: seedb_engine::WorkerBudget::new(seedb_engine::parallel::default_parallelism()),
        stats: ServerStats::default(),
        seed: 17,
        default_deadline_ms,
        obs: Arc::new(seedb_obs::Obs::default()),
        start: Instant::now(),
    }
}

fn post(state: &AppState, path: &str, body: String) -> seedb_server::Response {
    handle(state, &Request::new("POST", path, body))
}

/// A tiny xorshift-style generator: enough spread for property-style
/// sweeps, fully deterministic.
fn mix(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

#[test]
fn property_deadline_cancelled_recommend_deposits_nothing() {
    // Property: across randomized request shapes, a /recommend whose
    // deadline expires leaves the cache exactly as it found it — here,
    // empty. The injected build delay (20 ms) dwarfs every deadline
    // (1–5 ms), so each run is cancelled before its first phase.
    let state = app_state(0);
    state.catalog.set_build_delay_ms(20);
    let metrics = ["EMD", "L1", "EUCLIDEAN"];
    let datasets = ["HOUSING", "CENSUS"];
    for case in 0..20u64 {
        let r = mix(0x5eedb ^ case.wrapping_mul(0x9e37_79b9));
        let body = format!(
            r#"{{"dataset": "{}", "rows": {}, "k": {}, "metric": "{}", "deadline_ms": {}}}"#,
            datasets[(r % 2) as usize],
            // Unique per case, so every build is cold and eats the
            // injected 20 ms — the deadline is always already expired.
            200 + case * 13,
            1 + (r >> 16) % 8,
            metrics[((r >> 24) % 3) as usize],
            1 + (r >> 32) % 5,
        );
        let resp = post(&state, "/recommend", body.clone());
        assert_eq!(resp.status, 504, "case {case} ({body}): {}", resp.body);
        let j = Json::parse(&resp.body).unwrap();
        assert_eq!(j.get("code").unwrap().as_str(), Some("deadline_exceeded"));
        assert!(
            state.cache.is_empty(),
            "case {case} ({body}) poisoned the cache"
        );
    }
    assert_eq!(state.stats.deadline_timeouts.load(Ordering::Relaxed), 20);

    // Control: with no deadline the same machinery computes and caches.
    let ok = post(
        &state,
        "/recommend",
        r#"{"dataset": "HOUSING", "rows": 300, "k": 2}"#.to_owned(),
    );
    assert_eq!(ok.status, 200, "{}", ok.body);
    assert!(!state.cache.is_empty());
}

#[test]
fn no_request_hangs_past_its_deadline() {
    // slow_catalog widens the run; the deadline must still bound the
    // response far below the fault's scale + IO timeouts.
    let handle = Server::bind(ServerConfig {
        faults: Some("slow_catalog=100".to_owned()),
        ..config()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let started = Instant::now();
    let (status, body) = client::request(
        handle.addr(),
        "POST",
        "/recommend",
        Some(r#"{"dataset": "HOUSING", "rows": 300, "k": 2, "deadline_ms": 10}"#),
    )
    .unwrap();
    let elapsed = started.elapsed();
    assert_eq!(status, 504, "{body}");
    // Budget: 100 ms injected build + morsel-boundary overshoot + frame
    // I/O. Anything near IO_TIMEOUT (10 s) would mean the deadline is
    // not actually enforced.
    assert!(
        elapsed < Duration::from_millis(1_500),
        "504 took {elapsed:?}"
    );
    assert_eq!(
        handle
            .state()
            .stats
            .deadline_timeouts
            .load(Ordering::Relaxed),
        1
    );
    handle.shutdown();
}

#[test]
fn truncated_writes_are_counted_never_500() {
    // Every connection's response socket dies after 32 bytes.
    let handle = Server::bind(ServerConfig {
        faults: Some("truncate_write=1:32".to_owned()),
        ..config()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let addr = handle.addr();
    for _ in 0..3 {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let raw = drain(&mut stream);
        // The peer sees a truncated frame — but whatever did arrive is
        // the head of a non-5xx response.
        assert!(raw.len() <= 32, "cap not enforced: {raw:?}");
        assert!(!raw.contains("500"), "{raw}");
    }
    let stats = handle.state();
    assert!(
        stats.stats.write_errors.load(Ordering::Relaxed) >= 3,
        "write errors must be counted"
    );
    handle.shutdown();
}

#[test]
fn client_faults_never_produce_500() {
    // A fault schedule that exercises slow reads on some connections
    // while clients misbehave in every way short of crashing the parser.
    let handle = Server::bind(ServerConfig {
        faults: Some("seed=3,slow_read=2:30".to_owned()),
        ..config()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let addr = handle.addr();
    let bad_frames: [&[u8]; 4] = [
        b"GARBAGE\r\n\r\n",
        b"GET /healthz SPDY/9\r\n\r\n",
        b"POST /recommend HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
        b"POST /recommend HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson",
    ];
    for (i, frame) in bad_frames.iter().cycle().take(8).enumerate() {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(frame).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let raw = drain(&mut stream);
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("frame {i}: unparseable response {raw:?}"));
        assert!(
            (400..500).contains(&status),
            "frame {i}: client fault answered {status}: {raw}"
        );
    }
    handle.shutdown();
}

#[test]
fn starve_fault_requests_still_complete() {
    // A starve fault seizes the worker budget before each faulted
    // connection handles its own request; the request itself must still
    // complete (the permits are released before routing).
    let handle = Server::bind(ServerConfig {
        faults: Some("starve=1:50".to_owned()),
        worker_budget: 2,
        ..config()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let (status, body) = client::request(
        handle.addr(),
        "POST",
        "/recommend",
        Some(r#"{"dataset": "HOUSING", "rows": 300, "k": 2, "deadline_ms": 5000}"#),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    handle.shutdown();
}

#[test]
fn shutdown_is_not_pinned_behind_busy_workers() {
    // Both workers blocked in reads; shutdown must still complete
    // promptly because the accept thread re-checks the stop flag on
    // every connection instead of blocking on a slot.
    let handle = Server::bind(ServerConfig {
        max_connections: 2,
        ..config()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let addr = handle.addr();
    let pin_a = TcpStream::connect(addr).unwrap();
    let pin_b = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let started = Instant::now();
    drop(pin_a);
    drop(pin_b);
    handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown waited on busy workers: {:?}",
        started.elapsed()
    );
}
