//! End-to-end smoke: boot `seedbd` on an ephemeral port and drive every
//! endpoint through real TCP connections.

use seedb_server::{client, Server, ServerConfig};

fn boot() -> seedb_server::ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_rows: 3_000,
        default_rows: 800,
        ..Default::default()
    };
    Server::bind(config).unwrap().spawn().unwrap()
}

#[test]
fn full_api_surface_over_tcp() {
    let handle = boot();
    let addr = handle.addr();

    // /healthz
    let (status, j) = client::request_json(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(j.get("status").unwrap().as_str(), Some("ok"));

    // /datasets lists all ten Table 1 entries.
    let (status, j) = client::request_json(addr, "GET", "/datasets", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(j.get("datasets").unwrap().as_arr().unwrap().len(), 10);

    // /recommend cold, then warm.
    let body = r#"{"dataset": "CENSUS", "rows": 800, "k": 4}"#;
    let (status, cold) = client::request_json(addr, "POST", "/recommend", Some(body)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(cold.get("cache").unwrap().as_str(), Some("miss"));
    let views = cold.get("views").unwrap().as_arr().unwrap();
    assert_eq!(views.len(), 4);
    for view in views {
        assert!(view.get("utility").unwrap().as_num().is_some());
        assert!(!view.get("groups").unwrap().as_arr().unwrap().is_empty());
    }

    let (status, warm) = client::request_json(addr, "POST", "/recommend", Some(body)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(warm.get("cache").unwrap().as_str(), Some("hit"));
    assert_eq!(cold.get("views"), warm.get("views"));
    assert_eq!(cold.get("all_utilities"), warm.get("all_utilities"));

    // /statz reflects the traffic.
    let (status, stats) = client::request_json(addr, "GET", "/statz", None).unwrap();
    assert_eq!(status, 200);
    let rec = stats.get("recommend").unwrap();
    assert_eq!(rec.get("response_hits").unwrap().as_u64(), Some(1));
    assert_eq!(rec.get("response_misses").unwrap().as_u64(), Some(1));
    assert!(
        stats
            .get("cache")
            .unwrap()
            .get("entries")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );

    // Errors: bad JSON, unknown dataset, bad SQL, unknown route.
    let (status, err) = client::request_json(addr, "POST", "/recommend", Some("{ nope")).unwrap();
    assert_eq!(status, 400);
    assert!(err.get("error").is_some());
    let (status, _) = client::request_json(
        addr,
        "POST",
        "/recommend",
        Some(r#"{"dataset": "MYSTERY"}"#),
    )
    .unwrap();
    assert_eq!(status, 400);
    let (status, err) = client::request_json(
        addr,
        "POST",
        "/recommend",
        Some(r#"{"dataset": "CENSUS", "where": "age >="}"#),
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(err
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("error"));
    let (status, _) = client::request_json(addr, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);

    handle.shutdown();
}

#[test]
fn recommend_honours_config_overrides() {
    let handle = boot();
    let addr = handle.addr();

    // COMB + CI pruning is accepted (it just bypasses the partials cache).
    let body = r#"{"dataset": "HOUSING", "rows": 400, "k": 2,
                   "strategy": "COMB", "pruning": "CI", "num_phases": 4}"#;
    let (status, j) = client::request_json(addr, "POST", "/recommend", Some(body)).unwrap();
    assert_eq!(status, 200, "{j:?}");
    assert_eq!(j.get("views").unwrap().as_arr().unwrap().len(), 2);
    assert_eq!(j.get("view_hits").unwrap().as_u64(), Some(0));

    // Scalar engine mode returns the same views as the default.
    let a = r#"{"dataset": "HOUSING", "rows": 400, "k": 3}"#;
    let b = r#"{"dataset": "HOUSING", "rows": 400, "k": 3, "exec_mode": "SCALAR"}"#;
    let (_, ja) = client::request_json(addr, "POST", "/recommend", Some(a)).unwrap();
    let (_, jb) = client::request_json(addr, "POST", "/recommend", Some(b)).unwrap();
    assert_eq!(ja.get("views"), jb.get("views"));
    // And the scalar request was itself a response-cache *hit*: exec_mode
    // is excluded from the result signature by the bit-identity contract.
    assert_eq!(jb.get("cache").unwrap().as_str(), Some("hit"));

    handle.shutdown();
}

#[test]
fn complement_and_query_references_work() {
    let handle = boot();
    let addr = handle.addr();
    for reference in ["whole", "complement", "age >= 30"] {
        let body = format!(
            r#"{{"dataset": "CENSUS", "rows": 600, "k": 2,
                "where": "sex = 'female'", "reference": "{reference}"}}"#
        );
        let (status, j) = client::request_json(addr, "POST", "/recommend", Some(&body)).unwrap();
        assert_eq!(status, 200, "reference {reference}: {j:?}");
        assert_eq!(j.get("views").unwrap().as_arr().unwrap().len(), 2);
    }
    handle.shutdown();
}
