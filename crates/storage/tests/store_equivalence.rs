//! Property tests: the row store and the column store are observationally
//! equivalent — same cells, same stats, same scan output — for arbitrary
//! tables. The entire engine relies on this invariant (the paper's ROW/COL
//! comparison is meaningful only if both layouts compute identical answers).

use proptest::prelude::*;
use seedb_storage::{
    Cell, ColumnDef, ColumnId, ColumnRole, ColumnType, Table, TableBuilder, Value,
};

#[derive(Debug, Clone)]
struct ArbTable {
    defs: Vec<ColumnDef>,
    rows: Vec<Vec<Value>>,
}

fn arb_value(ty: ColumnType) -> BoxedStrategy<Value> {
    match ty {
        ColumnType::Int64 => prop_oneof![
            3 => any::<i64>().prop_map(Value::Int),
            1 => Just(Value::Null),
        ]
        .boxed(),
        ColumnType::Float64 => prop_oneof![
            3 => (-1e9f64..1e9).prop_map(Value::Float),
            1 => Just(Value::Null),
        ]
        .boxed(),
        ColumnType::Categorical => prop_oneof![
            3 => "[a-e]{1,3}".prop_map(Value::Str),
            1 => Just(Value::Null),
        ]
        .boxed(),
        ColumnType::Bool => prop_oneof![
            3 => any::<bool>().prop_map(Value::Bool),
            1 => Just(Value::Null),
        ]
        .boxed(),
    }
}

fn arb_table() -> impl Strategy<Value = ArbTable> {
    let col_types = prop::collection::vec(
        prop_oneof![
            Just(ColumnType::Int64),
            Just(ColumnType::Float64),
            Just(ColumnType::Categorical),
            Just(ColumnType::Bool),
        ],
        1..6,
    );
    (col_types, 0usize..40).prop_flat_map(|(types, nrows)| {
        let defs: Vec<ColumnDef> = types
            .iter()
            .enumerate()
            .map(|(i, &ty)| {
                let role = if matches!(ty, ColumnType::Int64 | ColumnType::Float64) {
                    ColumnRole::Measure
                } else {
                    ColumnRole::Dimension
                };
                ColumnDef::new(format!("c{i}"), ty, role)
            })
            .collect();
        let row_strategy: Vec<BoxedStrategy<Value>> =
            types.iter().map(|&ty| arb_value(ty)).collect();
        prop::collection::vec(row_strategy, nrows).prop_map(move |rows| ArbTable {
            defs: defs.clone(),
            rows,
        })
    })
}

fn build_both(t: &ArbTable) -> (Box<dyn Table>, Box<dyn Table>) {
    let mut b1 = TableBuilder::new(t.defs.clone());
    let mut b2 = TableBuilder::new(t.defs.clone());
    for r in &t.rows {
        b1.push_row(r).unwrap();
        b2.push_row(r).unwrap();
    }
    (
        Box::new(b1.build_row_store().unwrap()),
        Box::new(b2.build_column_store().unwrap()),
    )
}

fn cells_eq(a: Cell, b: Cell) -> bool {
    match (a, b) {
        (Cell::Float(x), Cell::Float(y)) => x == y || (x.is_nan() && y.is_nan()),
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cell_level_equivalence(t in arb_table()) {
        let (row_t, col_t) = build_both(&t);
        prop_assert_eq!(row_t.num_rows(), col_t.num_rows());
        for row in 0..row_t.num_rows() {
            for col in 0..t.defs.len() {
                let id = ColumnId(col as u32);
                prop_assert!(
                    cells_eq(row_t.cell(row, id), col_t.cell(row, id)),
                    "cell mismatch at ({}, {})", row, col
                );
            }
        }
    }

    #[test]
    fn stats_equivalence(t in arb_table()) {
        let (row_t, col_t) = build_both(&t);
        for col in 0..t.defs.len() {
            let id = ColumnId(col as u32);
            prop_assert_eq!(row_t.stats(id).distinct, col_t.stats(id).distinct);
            prop_assert_eq!(row_t.stats(id).null_count, col_t.stats(id).null_count);
            prop_assert_eq!(row_t.distinct_count(id), col_t.distinct_count(id));
        }
    }

    #[test]
    fn scan_equivalence_on_random_projection(
        t in arb_table(),
        proj_seed in any::<u64>(),
        lo_frac in 0.0f64..1.0,
        hi_frac in 0.0f64..1.0,
    ) {
        let (row_t, col_t) = build_both(&t);
        // Derive a projection deterministically from the seed: a rotation of
        // a subset of column ids.
        let ncols = t.defs.len();
        let take = (proj_seed as usize % ncols) + 1;
        let start = (proj_seed >> 8) as usize % ncols;
        let projection: Vec<ColumnId> =
            (0..take).map(|i| ColumnId(((start + i) % ncols) as u32)).collect();

        let n = row_t.num_rows();
        let lo = (lo_frac * n as f64) as usize;
        let hi = (hi_frac * n as f64) as usize;
        let range = lo.min(hi)..lo.max(hi);

        let mut row_out: Vec<Vec<Cell>> = Vec::new();
        row_t.scan_range(&projection, range.clone(), &mut |cells| {
            row_out.push(cells.to_vec());
        });
        let mut col_out: Vec<Vec<Cell>> = Vec::new();
        col_t.scan_range(&projection, range, &mut |cells| {
            col_out.push(cells.to_vec());
        });
        prop_assert_eq!(row_out.len(), col_out.len());
        for (a, b) in row_out.iter().zip(&col_out) {
            for (&x, &y) in a.iter().zip(b) {
                prop_assert!(cells_eq(x, y));
            }
        }
    }

    #[test]
    fn batched_scan_matches_row_scan(
        t in arb_table(),
        batch_size in 1usize..70,
        lo_frac in 0.0f64..1.0,
        hi_frac in 0.0f64..1.0,
    ) {
        // scan_batches (zero-copy for COL, materialized fallback for ROW)
        // must reconstruct exactly what scan_range yields, cell for cell,
        // for any batch size and sub-range.
        let (row_t, col_t) = build_both(&t);
        let projection: Vec<ColumnId> = (0..t.defs.len()).map(|i| ColumnId(i as u32)).collect();
        let n = row_t.num_rows();
        let lo = (lo_frac * n as f64) as usize;
        let hi = (hi_frac * n as f64) as usize;
        let range = lo.min(hi)..lo.max(hi);

        for table in [&row_t, &col_t] {
            let mut scan_out: Vec<Vec<Cell>> = Vec::new();
            table.scan_range(&projection, range.clone(), &mut |cells| {
                scan_out.push(cells.to_vec());
            });

            let mut batch_out: Vec<Vec<Cell>> = Vec::new();
            let mut next_start = range.start;
            table.scan_batches(&projection, range.clone(), batch_size, &mut |batch| {
                assert_eq!(batch.start_row, next_start, "batches must be contiguous");
                assert!(batch.len() <= batch_size && !batch.is_empty());
                assert_eq!(batch.num_columns(), projection.len());
                next_start += batch.len();
                for i in 0..batch.len() {
                    batch_out.push(
                        (0..projection.len()).map(|slot| batch.column(slot).cell(i)).collect(),
                    );
                }
            });

            prop_assert_eq!(scan_out.len(), batch_out.len(), "{} row count", table.kind());
            for (a, b) in scan_out.iter().zip(&batch_out) {
                for (&x, &y) in a.iter().zip(b) {
                    prop_assert!(cells_eq(x, y), "{} cell mismatch", table.kind());
                }
            }
        }
    }

    #[test]
    fn scan_full_range_matches_random_access(t in arb_table()) {
        let (row_t, _) = build_both(&t);
        let projection: Vec<ColumnId> = (0..t.defs.len()).map(|i| ColumnId(i as u32)).collect();
        let mut row_idx = 0usize;
        row_t.scan_range(&projection, 0..row_t.num_rows(), &mut |cells| {
            for (col, &cell) in cells.iter().enumerate() {
                assert!(cells_eq(cell, row_t.cell(row_idx, ColumnId(col as u32))));
            }
            row_idx += 1;
        });
        prop_assert_eq!(row_idx, row_t.num_rows());
    }
}
