//! Table schema: column names, types, and SeeDB roles.
//!
//! SeeDB partitions a table's attributes into *dimension* attributes `A`
//! (eligible for GROUP BY) and *measure* attributes `M` (eligible for
//! aggregation). The role is declared per column here; the view generator in
//! `seedb-core` enumerates `A × M × F` from this metadata, exactly as the
//! paper's view generator reads DBMS metadata (§3).

use crate::error::StorageError;
use rustc_hash::FxHashMap;
use std::fmt;

/// Physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integers.
    Int64,
    /// 64-bit floats.
    Float64,
    /// Dictionary-encoded strings.
    Categorical,
    /// Booleans.
    Bool,
}

impl ColumnType {
    /// Name used in error messages and schema printing.
    pub fn name(&self) -> &'static str {
        match self {
            ColumnType::Int64 => "Int64",
            ColumnType::Float64 => "Float64",
            ColumnType::Categorical => "Categorical",
            ColumnType::Bool => "Bool",
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// SeeDB role of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnRole {
    /// Group-by candidate (`a ∈ A`).
    Dimension,
    /// Aggregation candidate (`m ∈ M`).
    Measure,
    /// Present in the table but excluded from view enumeration
    /// (e.g. primary keys, free-text fields).
    Ignore,
}

/// Identifier of a column within one table: its ordinal position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

impl ColumnId {
    /// The ordinal as a `usize` index.
    #[inline]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Declaration of a single column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within a schema).
    pub name: String,
    /// Physical type.
    pub ty: ColumnType,
    /// SeeDB role.
    pub role: ColumnRole,
}

impl ColumnDef {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>, ty: ColumnType, role: ColumnRole) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            role,
        }
    }

    /// Shorthand for a categorical dimension.
    pub fn dim(name: impl Into<String>) -> Self {
        Self::new(name, ColumnType::Categorical, ColumnRole::Dimension)
    }

    /// Shorthand for a float measure.
    pub fn measure(name: impl Into<String>) -> Self {
        Self::new(name, ColumnType::Float64, ColumnRole::Measure)
    }
}

/// Per-column statistics collected at build time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ColumnStats {
    /// Number of distinct non-NULL values (`|a_i|` in the paper).
    pub distinct: usize,
    /// Number of NULLs.
    pub null_count: usize,
    /// Minimum numeric value, if the column is numeric and non-empty.
    pub min: Option<f64>,
    /// Maximum numeric value, if the column is numeric and non-empty.
    pub max: Option<f64>,
}

/// An ordered collection of column definitions with by-name lookup.
#[derive(Debug, Clone)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    by_name: FxHashMap<String, ColumnId>,
}

impl Schema {
    /// Builds a schema, validating non-emptiness and name uniqueness.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self, StorageError> {
        if columns.is_empty() {
            return Err(StorageError::EmptySchema);
        }
        let mut by_name = FxHashMap::default();
        for (i, c) in columns.iter().enumerate() {
            if by_name.insert(c.name.clone(), ColumnId(i as u32)).is_some() {
                return Err(StorageError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns, by_name })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns (never true for a built schema).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The definition of column `id`. Panics if out of range.
    pub fn column(&self, id: ColumnId) -> &ColumnDef {
        &self.columns[id.index()]
    }

    /// All column definitions in ordinal order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Resolves a column by name.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.by_name.get(name).copied()
    }

    /// Resolves a column by name, or returns an [`StorageError::UnknownColumn`].
    pub fn require(&self, name: &str) -> Result<ColumnId, StorageError> {
        self.column_id(name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_owned()))
    }

    /// Ids of all dimension columns, in ordinal order.
    pub fn dimensions(&self) -> Vec<ColumnId> {
        self.ids_with_role(ColumnRole::Dimension)
    }

    /// Ids of all measure columns, in ordinal order.
    pub fn measures(&self) -> Vec<ColumnId> {
        self.ids_with_role(ColumnRole::Measure)
    }

    fn ids_with_role(&self, role: ColumnRole) -> Vec<ColumnId> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.role == role)
            .map(|(i, _)| ColumnId(i as u32))
            .collect()
    }

    /// Iterator over `(ColumnId, &ColumnDef)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ColumnId, &ColumnDef)> {
        self.columns
            .iter()
            .enumerate()
            .map(|(i, c)| (ColumnId(i as u32), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnDef::dim("sex"),
            ColumnDef::dim("race"),
            ColumnDef::measure("capital_gain"),
            ColumnDef::new("id", ColumnType::Int64, ColumnRole::Ignore),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = sample();
        let id = s.column_id("race").unwrap();
        assert_eq!(id, ColumnId(1));
        assert_eq!(s.column(id).name, "race");
        assert!(s.column_id("missing").is_none());
    }

    #[test]
    fn require_reports_unknown_column() {
        let s = sample();
        assert_eq!(
            s.require("nope"),
            Err(StorageError::UnknownColumn("nope".into()))
        );
        assert!(s.require("sex").is_ok());
    }

    #[test]
    fn roles_partition_columns() {
        let s = sample();
        assert_eq!(s.dimensions(), vec![ColumnId(0), ColumnId(1)]);
        assert_eq!(s.measures(), vec![ColumnId(2)]);
        // Ignore columns appear in neither.
        assert_eq!(s.dimensions().len() + s.measures().len(), 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![ColumnDef::dim("a"), ColumnDef::dim("a")]).unwrap_err();
        assert_eq!(err, StorageError::DuplicateColumn("a".into()));
    }

    #[test]
    fn empty_schema_rejected() {
        assert_eq!(Schema::new(vec![]).unwrap_err(), StorageError::EmptySchema);
    }

    #[test]
    fn column_type_display() {
        assert_eq!(ColumnType::Int64.to_string(), "Int64");
        assert_eq!(ColumnType::Categorical.to_string(), "Categorical");
    }

    #[test]
    fn iter_covers_all_columns_in_order() {
        let s = sample();
        let names: Vec<_> = s.iter().map(|(_, c)| c.name.clone()).collect();
        assert_eq!(names, vec!["sex", "race", "capital_gain", "id"]);
    }
}
