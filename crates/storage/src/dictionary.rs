//! Per-column string dictionary for categorical data.
//!
//! Categorical columns store `u32` codes; the dictionary maps codes back to
//! labels and labels to codes. Dictionary size doubles as the column's
//! distinct-value count `|a_i|`, which the engine's bin-packing optimizer
//! (Problem 4.1 in the paper) uses as its item weight.

use rustc_hash::FxHashMap;

/// An append-only string interner: label ⇄ dense `u32` code.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    labels: Vec<String>,
    codes: FxHashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `label`, returning its code (existing or freshly assigned).
    pub fn intern(&mut self, label: &str) -> u32 {
        if let Some(&code) = self.codes.get(label) {
            return code;
        }
        let code = self.labels.len() as u32;
        self.labels.push(label.to_owned());
        self.codes.insert(label.to_owned(), code);
        code
    }

    /// Looks up the code for `label`, if present.
    pub fn code(&self, label: &str) -> Option<u32> {
        self.codes.get(label).copied()
    }

    /// Looks up the label for `code`, if in range.
    pub fn label(&self, code: u32) -> Option<&str> {
        self.labels.get(code as usize).map(|s| s.as_str())
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterator over `(code, label)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("c"), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let c1 = d.intern("x");
        let c2 = d.intern("x");
        assert_eq!(c1, c2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn code_and_label_round_trip() {
        let mut d = Dictionary::new();
        for s in ["red", "green", "blue"] {
            d.intern(s);
        }
        for s in ["red", "green", "blue"] {
            let code = d.code(s).unwrap();
            assert_eq!(d.label(code), Some(s));
        }
        assert_eq!(d.code("purple"), None);
        assert_eq!(d.label(99), None);
    }

    #[test]
    fn iter_yields_code_order() {
        let mut d = Dictionary::new();
        d.intern("z");
        d.intern("a");
        let pairs: Vec<_> = d.iter().map(|(c, l)| (c, l.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "z".to_owned()), (1, "a".to_owned())]);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.code("anything"), None);
    }
}
