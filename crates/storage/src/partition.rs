//! Fixed-size table partitions (segments) with per-column zone maps.
//!
//! The table builder seals a [`Partition`] every [`DEFAULT_PARTITION_ROWS`]
//! rows (configurable via `TableBuilder::with_partition_rows`): a
//! contiguous row range plus one [`ColumnZone`] per schema column, computed
//! during load. Partitions are *logical* — both storage layouts keep their
//! physical representation unchanged and expose the partition directory
//! through [`crate::Table::partitions`] — but they are the engine's unit of
//! pruning and parallelism: a scan consults the zones to skip partitions no
//! contributing row can live in, and fans the surviving partitions out over
//! the morsel scheduler.

use crate::schema::ColumnId;
use crate::zonemap::ColumnZone;
use std::ops::Range;

/// Default number of rows per partition. A multiple of the default batch
/// size (1024) so batch boundaries stay aligned inside a partition, and
/// small enough that zone maps get selective on clustered data.
pub const DEFAULT_PARTITION_ROWS: usize = 8192;

/// One sealed partition: a contiguous row range and its zone maps.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The rows this partition covers (contiguous, non-empty).
    pub rows: Range<usize>,
    /// One zone per schema column, in schema order.
    pub zones: Vec<ColumnZone>,
}

impl Partition {
    /// Number of rows in the partition.
    pub fn len(&self) -> usize {
        self.rows.end - self.rows.start
    }

    /// Whether the partition covers no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Zone map of column `col`, if the column exists.
    pub fn zone(&self, col: ColumnId) -> Option<&ColumnZone> {
        self.zones.get(col.index())
    }

    /// Intersection of this partition's rows with `range` (possibly empty).
    pub fn clip(&self, range: &Range<usize>) -> Range<usize> {
        let start = self.rows.start.max(range.start);
        let end = self.rows.end.min(range.end);
        start..end.max(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::zonemap::ZoneBuilder;

    fn partition(rows: Range<usize>) -> Partition {
        let mut zb = ZoneBuilder::new(ColumnType::Float64);
        for r in rows.clone() {
            zb.observe((r as f64).to_bits(), r as f64);
        }
        Partition {
            rows,
            zones: vec![zb.seal()],
        }
    }

    #[test]
    fn clip_intersects_ranges() {
        let p = partition(10..20);
        assert_eq!(p.clip(&(0..100)), 10..20);
        assert_eq!(p.clip(&(15..17)), 15..17);
        assert_eq!(p.clip(&(0..12)), 10..12);
        assert_eq!(p.clip(&(18..40)), 18..20);
        assert!(p.clip(&(0..5)).is_empty());
        assert!(p.clip(&(25..30)).is_empty());
    }

    #[test]
    fn len_and_zone_access() {
        let p = partition(0..7);
        assert_eq!(p.len(), 7);
        assert!(!p.is_empty());
        assert!(p.zone(ColumnId(0)).is_some());
        assert!(p.zone(ColumnId(9)).is_none());
        assert_eq!(p.zone(ColumnId(0)).unwrap().min, Some(0.0));
        assert_eq!(p.zone(ColumnId(0)).unwrap().max, Some(6.0));
    }
}
