//! [`TableBuilder`]: validated row-at-a-time ingestion that can materialize
//! either storage layout from the same staged data.
//!
//! The builder stages data column-wise (cheap to convert to a
//! [`ColumnStore`], and a single packing pass away from a [`RowStore`]),
//! interns categorical labels, and maintains the per-column statistics
//! (distinct counts, null counts, min/max) that the engine's memory-budget
//! planner needs.

use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnData};
use crate::column_store::ColumnStore;
use crate::dictionary::Dictionary;
use crate::error::StorageError;
use crate::partition::{Partition, DEFAULT_PARTITION_ROWS};
use crate::row_store::{encode_payload, RowStore};
use crate::schema::{ColumnDef, ColumnStats, ColumnType, Schema};
use crate::table::{BoxedTable, StoreKind};
use crate::value::{Cell, Value};
use crate::zonemap::ZoneBuilder;
use rustc_hash::FxHashSet;
use std::sync::Arc;

/// Staging state for one column.
struct StagedColumn {
    data: ColumnData,
    validity: Bitmap,
    distinct: FxHashSet<u64>,
    null_count: usize,
    min: Option<f64>,
    max: Option<f64>,
}

impl StagedColumn {
    fn new(ty: ColumnType) -> Self {
        let data = match ty {
            ColumnType::Int64 => ColumnData::Int64(Vec::new()),
            ColumnType::Float64 => ColumnData::Float64(Vec::new()),
            ColumnType::Categorical => ColumnData::Categorical(Vec::new()),
            ColumnType::Bool => ColumnData::Bool(Bitmap::new()),
        };
        StagedColumn {
            data,
            validity: Bitmap::new(),
            distinct: FxHashSet::default(),
            null_count: 0,
            min: None,
            max: None,
        }
    }

    fn push_null(&mut self) {
        match &mut self.data {
            ColumnData::Int64(v) => v.push(0),
            ColumnData::Float64(v) => v.push(0.0),
            ColumnData::Categorical(v) => v.push(0),
            ColumnData::Bool(b) => b.push(false),
        }
        self.validity.push(false);
        self.null_count += 1;
    }

    fn observe_numeric(&mut self, x: f64) {
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    fn stats(&self) -> ColumnStats {
        ColumnStats {
            distinct: self.distinct.len(),
            null_count: self.null_count,
            min: self.min,
            max: self.max,
        }
    }
}

/// Row-at-a-time table builder; see module docs.
pub struct TableBuilder {
    schema: Schema,
    staged: Vec<StagedColumn>,
    dictionaries: Vec<Option<Dictionary>>,
    num_rows: usize,
    /// Partition sealing interval (rows per partition).
    partition_rows: usize,
    /// Zone accumulators for the partition currently being filled.
    zones: Vec<ZoneBuilder>,
    /// Partitions sealed so far.
    partitions: Vec<Partition>,
    /// First row of the partition currently being filled.
    partition_start: usize,
}

impl TableBuilder {
    /// Creates a builder for `columns`.
    ///
    /// # Panics
    /// Panics if the schema is invalid (empty or duplicate names); use
    /// [`TableBuilder::try_new`] to handle that as an error.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Self::try_new(columns).expect("invalid schema")
    }

    /// Fallible constructor.
    pub fn try_new(columns: Vec<ColumnDef>) -> Result<Self, StorageError> {
        let schema = Schema::new(columns)?;
        let staged = schema
            .columns()
            .iter()
            .map(|c| StagedColumn::new(c.ty))
            .collect();
        let dictionaries = schema
            .columns()
            .iter()
            .map(|c| {
                if c.ty == ColumnType::Categorical {
                    Some(Dictionary::new())
                } else {
                    None
                }
            })
            .collect();
        let zones = schema
            .columns()
            .iter()
            .map(|c| ZoneBuilder::new(c.ty))
            .collect();
        Ok(TableBuilder {
            schema,
            staged,
            dictionaries,
            num_rows: 0,
            partition_rows: DEFAULT_PARTITION_ROWS,
            zones,
            partitions: Vec::new(),
            partition_start: 0,
        })
    }

    /// Sets the partition sealing interval (rows per partition), clamped to
    /// at least 1. Must be configured before the first row is pushed so
    /// every partition has the same nominal size.
    ///
    /// # Panics
    /// Panics if rows have already been staged.
    pub fn with_partition_rows(mut self, rows: usize) -> Self {
        assert_eq!(
            self.num_rows, 0,
            "partition size must be set before rows are pushed"
        );
        self.partition_rows = rows.max(1);
        self
    }

    /// The schema under construction.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows staged so far.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Appends one row. Values must match the schema's arity and types;
    /// `Value::Null` is accepted in any column.
    pub fn push_row(&mut self, row: &[Value]) -> Result<(), StorageError> {
        if row.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        // Validate all values before mutating any column so a failed push
        // leaves the builder unchanged.
        for (i, value) in row.iter().enumerate() {
            let def = &self.schema.columns()[i];
            let ok = matches!(
                (def.ty, value),
                (_, Value::Null)
                    | (ColumnType::Int64, Value::Int(_))
                    | (ColumnType::Float64, Value::Float(_))
                    | (ColumnType::Float64, Value::Int(_))
                    | (ColumnType::Categorical, Value::Str(_))
                    | (ColumnType::Bool, Value::Bool(_))
            );
            if !ok {
                return Err(StorageError::TypeMismatch {
                    column: def.name.clone(),
                    expected: def.ty.name(),
                    got: value.type_name(),
                });
            }
        }
        for (i, value) in row.iter().enumerate() {
            let staged = &mut self.staged[i];
            let zone = &mut self.zones[i];
            match value {
                Value::Null => {
                    staged.push_null();
                    zone.observe_null();
                }
                Value::Int(v) => match &mut staged.data {
                    ColumnData::Int64(vec) => {
                        vec.push(*v);
                        staged.validity.push(true);
                        staged.distinct.insert(Cell::Int(*v).group_code());
                        staged.observe_numeric(*v as f64);
                        zone.observe(Cell::Int(*v).group_code(), *v as f64);
                    }
                    ColumnData::Float64(vec) => {
                        // Int literals are accepted into float columns.
                        vec.push(*v as f64);
                        staged.validity.push(true);
                        staged.distinct.insert((*v as f64).to_bits());
                        staged.observe_numeric(*v as f64);
                        zone.observe((*v as f64).to_bits(), *v as f64);
                    }
                    _ => unreachable!("validated above"),
                },
                Value::Float(v) => match &mut staged.data {
                    ColumnData::Float64(vec) => {
                        vec.push(*v);
                        staged.validity.push(true);
                        staged.distinct.insert(v.to_bits());
                        staged.observe_numeric(*v);
                        zone.observe(v.to_bits(), *v);
                    }
                    _ => unreachable!("validated above"),
                },
                Value::Str(s) => {
                    let dict = self.dictionaries[i].as_mut().expect("categorical column");
                    let code = dict.intern(s);
                    match &mut staged.data {
                        ColumnData::Categorical(vec) => {
                            vec.push(code);
                            staged.validity.push(true);
                            staged.distinct.insert(code as u64);
                            zone.observe(code as u64, code as f64);
                        }
                        _ => unreachable!("validated above"),
                    }
                }
                Value::Bool(b) => match &mut staged.data {
                    ColumnData::Bool(bits) => {
                        bits.push(*b);
                        staged.validity.push(true);
                        staged.distinct.insert(*b as u64);
                        zone.observe(*b as u64, if *b { 1.0 } else { 0.0 });
                    }
                    _ => unreachable!("validated above"),
                },
            }
        }
        self.num_rows += 1;
        if self.num_rows - self.partition_start >= self.partition_rows {
            self.seal_partition();
        }
        Ok(())
    }

    /// Seals the partition currently being filled (rows
    /// `partition_start..num_rows`) and starts a new one.
    fn seal_partition(&mut self) {
        debug_assert!(self.num_rows > self.partition_start);
        self.partitions.push(Partition {
            rows: self.partition_start..self.num_rows,
            zones: self.zones.iter_mut().map(ZoneBuilder::seal).collect(),
        });
        self.partition_start = self.num_rows;
    }

    /// Seals the trailing partial partition (if any) and returns the full
    /// partition directory.
    fn finish_partitions(&mut self) -> Vec<Partition> {
        if self.num_rows > self.partition_start {
            self.seal_partition();
        }
        std::mem::take(&mut self.partitions)
    }

    /// Materializes the staged data as the requested layout.
    pub fn build(self, kind: StoreKind) -> Result<BoxedTable, StorageError> {
        match kind {
            StoreKind::Row => Ok(Arc::new(self.build_row_store()?)),
            StoreKind::Column => Ok(Arc::new(self.build_column_store()?)),
        }
    }

    /// Materializes a [`ColumnStore`].
    pub fn build_column_store(mut self) -> Result<ColumnStore, StorageError> {
        let partitions = self.finish_partitions();
        let stats: Vec<ColumnStats> = self.staged.iter().map(StagedColumn::stats).collect();
        let columns: Vec<Column> = self
            .staged
            .into_iter()
            .map(|s| Column::with_validity(s.data, s.validity))
            .collect();
        Ok(ColumnStore::from_parts(
            self.schema,
            columns,
            self.dictionaries,
            stats,
            partitions,
        ))
    }

    /// Materializes a [`RowStore`] by packing the staged columns row-wise.
    pub fn build_row_store(mut self) -> Result<RowStore, StorageError> {
        let partitions = self.finish_partitions();
        let stats: Vec<ColumnStats> = self.staged.iter().map(StagedColumn::stats).collect();
        let (stride, null_bytes) = RowStore::layout(&self.schema);
        let mut data = vec![0u8; self.num_rows * stride];
        for (col_idx, staged) in self.staged.iter().enumerate() {
            for row in 0..self.num_rows {
                let base = row * stride;
                if staged.validity.get(row) {
                    data[base + col_idx / 8] |= 1 << (col_idx % 8);
                    let payload = encode_payload(&staged.data.raw_cell(row));
                    let off = base + null_bytes + col_idx * 8;
                    data[off..off + 8].copy_from_slice(&payload.to_le_bytes());
                }
            }
        }
        Ok(RowStore::from_parts(
            self.schema,
            data,
            self.num_rows,
            self.dictionaries,
            stats,
            partitions,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRole;
    use crate::table::Table;

    fn defs() -> Vec<ColumnDef> {
        vec![
            ColumnDef::dim("cat"),
            ColumnDef::new("i", ColumnType::Int64, ColumnRole::Measure),
            ColumnDef::new("f", ColumnType::Float64, ColumnRole::Measure),
            ColumnDef::new("b", ColumnType::Bool, ColumnRole::Dimension),
        ]
    }

    #[test]
    fn arity_mismatch_rejected_without_mutation() {
        let mut b = TableBuilder::new(defs());
        let err = b.push_row(&[Value::str("x")]).unwrap_err();
        assert!(matches!(
            err,
            StorageError::ArityMismatch {
                expected: 4,
                got: 1
            }
        ));
        assert_eq!(b.num_rows(), 0);
    }

    #[test]
    fn type_mismatch_rejected_without_partial_write() {
        let mut b = TableBuilder::new(defs());
        // Third value has the wrong type; the first two must NOT be staged.
        let err = b
            .push_row(&[
                Value::str("x"),
                Value::Int(1),
                Value::str("oops"),
                Value::Bool(true),
            ])
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
        assert_eq!(b.num_rows(), 0);
        // A subsequent valid push works and the table is consistent.
        b.push_row(&[
            Value::str("x"),
            Value::Int(1),
            Value::Float(1.0),
            Value::Bool(true),
        ])
        .unwrap();
        let t = b.build_column_store().unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn int_literals_coerce_into_float_columns() {
        let mut b = TableBuilder::new(vec![ColumnDef::measure("f")]);
        b.push_row(&[Value::Int(3)]).unwrap();
        let t = b.build_column_store().unwrap();
        assert_eq!(t.cell(0, crate::ColumnId(0)), Cell::Float(3.0));
    }

    #[test]
    fn both_layouts_agree_cell_for_cell() {
        let rows = vec![
            vec![
                Value::str("a"),
                Value::Int(1),
                Value::Float(0.1),
                Value::Bool(true),
            ],
            vec![Value::str("b"), Value::Null, Value::Float(0.2), Value::Null],
            vec![
                Value::str("a"),
                Value::Int(3),
                Value::Null,
                Value::Bool(false),
            ],
        ];
        let mut b1 = TableBuilder::new(defs());
        let mut b2 = TableBuilder::new(defs());
        for r in &rows {
            b1.push_row(r).unwrap();
            b2.push_row(r).unwrap();
        }
        let row_t = b1.build_row_store().unwrap();
        let col_t = b2.build_column_store().unwrap();
        assert_eq!(row_t.num_rows(), col_t.num_rows());
        for row in 0..rows.len() {
            for col in 0..defs().len() {
                let id = crate::ColumnId(col as u32);
                assert_eq!(
                    row_t.cell(row, id),
                    col_t.cell(row, id),
                    "mismatch at ({row},{col})"
                );
            }
        }
    }

    #[test]
    fn build_boxed_dispatches_kind() {
        let mut b = TableBuilder::new(defs());
        b.push_row(&[
            Value::str("a"),
            Value::Int(1),
            Value::Float(0.1),
            Value::Bool(true),
        ])
        .unwrap();
        let t = b.build(StoreKind::Row).unwrap();
        assert_eq!(t.kind(), StoreKind::Row);
    }

    #[test]
    fn stats_track_distinct_and_nulls() {
        let mut b = TableBuilder::new(defs());
        for (s, i) in [("a", 1), ("b", 2), ("a", 2)] {
            b.push_row(&[Value::str(s), Value::Int(i), Value::Null, Value::Null])
                .unwrap();
        }
        let t = b.build_column_store().unwrap();
        assert_eq!(t.stats(crate::ColumnId(0)).distinct, 2);
        assert_eq!(t.stats(crate::ColumnId(1)).distinct, 2);
        assert_eq!(t.stats(crate::ColumnId(2)).null_count, 3);
        assert_eq!(t.stats(crate::ColumnId(2)).distinct, 0);
    }

    #[test]
    fn try_new_surfaces_schema_errors() {
        assert!(TableBuilder::try_new(vec![]).is_err());
        assert!(TableBuilder::try_new(vec![ColumnDef::dim("a"), ColumnDef::dim("a")]).is_err());
    }

    #[test]
    fn partitions_seal_at_configured_interval() {
        for kind in [StoreKind::Row, StoreKind::Column] {
            let mut b = TableBuilder::new(vec![ColumnDef::dim("d"), ColumnDef::measure("m")])
                .with_partition_rows(4);
            for i in 0..10 {
                b.push_row(&[Value::str(format!("v{}", i % 3)), Value::Float(i as f64)])
                    .unwrap();
            }
            let t = b.build(kind).unwrap();
            let parts = t.partitions();
            assert_eq!(parts.len(), 3); // 4 + 4 + 2 (trailing partial)
            assert_eq!(parts[0].rows, 0..4);
            assert_eq!(parts[1].rows, 4..8);
            assert_eq!(parts[2].rows, 8..10);
            // Zone maps reflect each partition's slice, not the table.
            let m = crate::ColumnId(1);
            assert_eq!(parts[0].zone(m).unwrap().min, Some(0.0));
            assert_eq!(parts[0].zone(m).unwrap().max, Some(3.0));
            assert_eq!(parts[2].zone(m).unwrap().min, Some(8.0));
            assert_eq!(parts[2].zone(m).unwrap().rows, 2);
            // Partition zones carry per-partition distinct counts.
            assert_eq!(parts[0].zone(crate::ColumnId(0)).unwrap().distinct, 3);
        }
    }

    #[test]
    fn whole_table_fits_one_partition_by_default() {
        let mut b = TableBuilder::new(vec![ColumnDef::measure("m")]);
        for i in 0..100 {
            b.push_row(&[Value::Float(i as f64)]).unwrap();
        }
        let t = b.build_column_store().unwrap();
        let parts = <ColumnStore as crate::Table>::partitions(&t);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].rows, 0..100);
    }

    #[test]
    fn empty_table_has_no_partitions() {
        let b = TableBuilder::new(vec![ColumnDef::dim("d")]);
        let t = b.build(StoreKind::Column).unwrap();
        assert!(t.partitions().is_empty());
    }

    #[test]
    fn zone_null_counts_are_per_partition() {
        let mut b = TableBuilder::new(vec![ColumnDef::measure("m")]).with_partition_rows(2);
        b.push_row(&[Value::Null]).unwrap();
        b.push_row(&[Value::Null]).unwrap();
        b.push_row(&[Value::Float(1.0)]).unwrap();
        let t = b.build(StoreKind::Row).unwrap();
        let parts = t.partitions();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].zone(crate::ColumnId(0)).unwrap().null_count, 2);
        assert_eq!(parts[0].zone(crate::ColumnId(0)).unwrap().min, None);
        assert_eq!(parts[1].zone(crate::ColumnId(0)).unwrap().null_count, 0);
    }
}
