//! A simple dense bitmap used for column validity (NULL tracking) and
//! boolean column payloads.

/// Fixed-length bitmap backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitmap of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let word = if value { u64::MAX } else { 0 };
        let mut bm = Bitmap {
            words: vec![word; nwords],
            len,
        };
        bm.clear_trailing();
        bm
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, value: bool) {
        let bit = self.len;
        self.len += 1;
        if self.words.len() * 64 < self.len {
            self.words.push(0);
        }
        if value {
            self.words[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// Reads bit `idx`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of bounds (len {})",
            self.len
        );
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Writes bit `idx`. Panics if out of bounds.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of bounds (len {})",
            self.len
        );
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Zeroes any bits beyond `len` in the last word (keeps `count_ones` honest).
    fn clear_trailing(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut bm = Bitmap::new();
        for b in iter {
            bm.push(b);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new();
        assert_eq!(bm.len(), 0);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn push_and_get_across_word_boundary() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn filled_true_counts_exactly_len() {
        let bm = Bitmap::filled(100, true);
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 100);
        let bm = Bitmap::filled(64, true);
        assert_eq!(bm.count_ones(), 64);
        let bm = Bitmap::filled(0, true);
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn filled_false_is_all_zero() {
        let bm = Bitmap::filled(77, false);
        assert_eq!(bm.count_ones(), 0);
        assert!(!bm.get(0));
        assert!(!bm.get(76));
    }

    #[test]
    fn set_flips_bits() {
        let mut bm = Bitmap::filled(10, false);
        bm.set(3, true);
        bm.set(9, true);
        assert!(bm.get(3));
        assert!(bm.get(9));
        assert_eq!(bm.count_ones(), 2);
        bm.set(3, false);
        assert!(!bm.get(3));
        assert_eq!(bm.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let bm = Bitmap::filled(8, true);
        bm.get(8);
    }

    #[test]
    fn from_iterator_round_trips() {
        let bits = vec![true, false, true, true, false];
        let bm: Bitmap = bits.iter().copied().collect();
        let back: Vec<bool> = bm.iter().collect();
        assert_eq!(bits, back);
    }

    #[test]
    fn iter_matches_get() {
        let bm: Bitmap = (0..200).map(|i| i % 7 == 0).collect();
        for (i, b) in bm.iter().enumerate() {
            assert_eq!(b, bm.get(i));
        }
    }
}
