//! A simple dense bitmap used for column validity (NULL tracking) and
//! boolean column payloads.

/// Fixed-length bitmap backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitmap of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let word = if value { u64::MAX } else { 0 };
        let mut bm = Bitmap {
            words: vec![word; nwords],
            len,
        };
        bm.clear_trailing();
        bm
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, value: bool) {
        let bit = self.len;
        self.len += 1;
        if self.words.len() * 64 < self.len {
            self.words.push(0);
        }
        if value {
            self.words[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// Reads bit `idx`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of bounds (len {})",
            self.len
        );
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Writes bit `idx`. Panics if out of bounds.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of bounds (len {})",
            self.len
        );
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Re-initializes the bitmap to `len` bits all set to `value`, reusing
    /// the word allocation. The engine's vectorized scan resets one
    /// selection bitmap per batch with this.
    pub fn reset(&mut self, len: usize, value: bool) {
        let nwords = len.div_ceil(64);
        let word = if value { u64::MAX } else { 0 };
        self.words.clear();
        self.words.resize(nwords, word);
        self.len = len;
        self.clear_trailing();
    }

    /// Overwrites this bitmap with `other`'s bits, reusing the allocation.
    pub fn copy_from(&mut self, other: &Bitmap) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// `self &= other`. Panics if lengths differ.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch in and_assign");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// `self |= other`. Panics if lengths differ.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch in or_assign");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Flips every bit in place (trailing bits beyond `len` stay zero).
    pub fn invert(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_trailing();
    }

    /// Overwrites `out` with the bits of `range` as plain `bool`s (used to
    /// materialize per-batch validity slices for batched scans).
    pub fn fill_bools(&self, range: std::ops::Range<usize>, out: &mut Vec<bool>) {
        out.clear();
        out.extend(range.map(|i| self.get(i)));
    }

    /// The backing `u64` words, least-significant bit first. Bits at
    /// positions `>= len` are always zero. Exposed for word-at-a-time
    /// consumers (the engine's vectorized selection loops).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words, for word-at-a-time producers.
    ///
    /// Callers must keep bits at positions `>= len` zero, or `count_ones`
    /// (and everything built on it) silently miscounts.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Iterator over all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Zeroes any bits beyond `len` in the last word (keeps `count_ones` honest).
    fn clear_trailing(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut bm = Bitmap::new();
        for b in iter {
            bm.push(b);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new();
        assert_eq!(bm.len(), 0);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn push_and_get_across_word_boundary() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn filled_true_counts_exactly_len() {
        let bm = Bitmap::filled(100, true);
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 100);
        let bm = Bitmap::filled(64, true);
        assert_eq!(bm.count_ones(), 64);
        let bm = Bitmap::filled(0, true);
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn filled_false_is_all_zero() {
        let bm = Bitmap::filled(77, false);
        assert_eq!(bm.count_ones(), 0);
        assert!(!bm.get(0));
        assert!(!bm.get(76));
    }

    #[test]
    fn set_flips_bits() {
        let mut bm = Bitmap::filled(10, false);
        bm.set(3, true);
        bm.set(9, true);
        assert!(bm.get(3));
        assert!(bm.get(9));
        assert_eq!(bm.count_ones(), 2);
        bm.set(3, false);
        assert!(!bm.get(3));
        assert_eq!(bm.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let bm = Bitmap::filled(8, true);
        bm.get(8);
    }

    #[test]
    fn from_iterator_round_trips() {
        let bits = vec![true, false, true, true, false];
        let bm: Bitmap = bits.iter().copied().collect();
        let back: Vec<bool> = bm.iter().collect();
        assert_eq!(bits, back);
    }

    #[test]
    fn reset_reuses_and_clears_trailing() {
        let mut bm = Bitmap::filled(100, true);
        bm.reset(70, true);
        assert_eq!(bm.len(), 70);
        assert_eq!(bm.count_ones(), 70);
        bm.reset(10, false);
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.len(), 10);
    }

    #[test]
    fn logical_ops_combine_wordwise() {
        let a0: Bitmap = (0..130).map(|i| i % 2 == 0).collect();
        let b: Bitmap = (0..130).map(|i| i % 3 == 0).collect();

        let mut a = a0.clone();
        a.and_assign(&b);
        for i in 0..130 {
            assert_eq!(a.get(i), i % 2 == 0 && i % 3 == 0, "and bit {i}");
        }

        let mut a = a0.clone();
        a.or_assign(&b);
        for i in 0..130 {
            assert_eq!(a.get(i), i % 2 == 0 || i % 3 == 0, "or bit {i}");
        }

        let mut a = a0.clone();
        a.invert();
        for i in 0..130 {
            assert_eq!(a.get(i), i % 2 != 0, "not bit {i}");
        }
        // Trailing bits beyond len stay zero after inversion.
        assert_eq!(a.count_ones(), 65);
    }

    #[test]
    fn fill_bools_extracts_range() {
        let bm: Bitmap = (0..20).map(|i| i % 4 == 0).collect();
        let mut out = vec![true; 3]; // stale content must be cleared
        bm.fill_bools(4..9, &mut out);
        assert_eq!(out, vec![true, false, false, false, true]);
    }

    #[test]
    fn iter_matches_get() {
        let bm: Bitmap = (0..200).map(|i| i % 7 == 0).collect();
        for (i, b) in bm.iter().enumerate() {
            assert_eq!(b, bm.get(i));
        }
    }
}
