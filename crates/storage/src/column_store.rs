//! Column-oriented storage: one typed vector per column.
//!
//! A projected scan touches only the projected columns' vectors, so its
//! memory traffic is proportional to the projection width — the reason the
//! paper's COL baseline is ~5× faster than ROW on SeeDB's narrow view
//! queries (§5.2), and the reason sharing optimizations help COL less.

use crate::batch::{Batch, BatchColumn, BatchData};
use crate::column::{Column, ColumnData};
use crate::dictionary::Dictionary;
use crate::partition::Partition;
use crate::schema::{ColumnId, ColumnStats, Schema};
use crate::table::{StoreKind, Table};
use crate::value::Cell;
use std::ops::Range;

/// Immutable column-oriented table.
pub struct ColumnStore {
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
    dictionaries: Vec<Option<Dictionary>>,
    stats: Vec<ColumnStats>,
    partitions: Vec<Partition>,
}

impl ColumnStore {
    /// Assembles a column store from pre-validated parts (used by the builder).
    pub(crate) fn from_parts(
        schema: Schema,
        columns: Vec<Column>,
        dictionaries: Vec<Option<Dictionary>>,
        stats: Vec<ColumnStats>,
        partitions: Vec<Partition>,
    ) -> Self {
        let num_rows = columns.first().map_or(0, Column::len);
        debug_assert!(columns.iter().all(|c| c.len() == num_rows));
        debug_assert_eq!(
            partitions.iter().map(Partition::len).sum::<usize>(),
            num_rows
        );
        ColumnStore {
            schema,
            columns,
            num_rows,
            dictionaries,
            stats,
            partitions,
        }
    }

    /// Direct access to a column (tests and micro-benches).
    pub fn column(&self, col: ColumnId) -> &Column {
        &self.columns[col.index()]
    }
}

impl Table for ColumnStore {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn num_rows(&self) -> usize {
        self.num_rows
    }

    fn kind(&self) -> StoreKind {
        StoreKind::Column
    }

    fn dictionary(&self, col: ColumnId) -> Option<&Dictionary> {
        self.dictionaries[col.index()].as_ref()
    }

    fn stats(&self, col: ColumnId) -> &ColumnStats {
        &self.stats[col.index()]
    }

    fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    fn cell(&self, row: usize, col: ColumnId) -> Cell {
        assert!(row < self.num_rows, "row {row} out of bounds");
        self.columns[col.index()].cell(row)
    }

    fn scan_range(
        &self,
        projection: &[ColumnId],
        range: Range<usize>,
        visitor: &mut dyn FnMut(&[Cell]),
    ) {
        let start = range.start.min(self.num_rows);
        let end = range.end.min(self.num_rows);
        let cols: Vec<&Column> = projection
            .iter()
            .map(|c| &self.columns[c.index()])
            .collect();
        let mut buf = vec![Cell::Null; projection.len()];
        for row in start..end {
            for (slot, col) in cols.iter().enumerate() {
                buf[slot] = col.cell(row);
            }
            visitor(&buf);
        }
    }

    /// Zero-copy batches: numeric and categorical payloads are served as
    /// subslices of the column vectors. Only bit-packed data (bool payloads
    /// and validity bitmaps) is unpacked into per-batch scratch buffers.
    fn scan_batches(
        &self,
        projection: &[ColumnId],
        range: Range<usize>,
        batch_size: usize,
        visitor: &mut dyn FnMut(&Batch<'_>),
    ) {
        let batch_size = batch_size.max(1);
        let start = range.start.min(self.num_rows);
        let end = range.end.min(self.num_rows);
        let cols: Vec<&Column> = projection
            .iter()
            .map(|c| &self.columns[c.index()])
            .collect();
        let mut bool_scratch: Vec<Vec<bool>> = vec![Vec::new(); projection.len()];
        let mut valid_scratch: Vec<Vec<bool>> = vec![Vec::new(); projection.len()];

        let mut lo = start;
        while lo < end {
            let hi = (lo + batch_size).min(end);
            for (slot, col) in cols.iter().enumerate() {
                if let ColumnData::Bool(bits) = &col.data {
                    bits.fill_bools(lo..hi, &mut bool_scratch[slot]);
                }
                if let Some(v) = &col.validity {
                    v.fill_bools(lo..hi, &mut valid_scratch[slot]);
                }
            }
            let columns: Vec<BatchColumn<'_>> = cols
                .iter()
                .enumerate()
                .map(|(slot, col)| {
                    let data = match &col.data {
                        ColumnData::Int64(v) => BatchData::Int(&v[lo..hi]),
                        ColumnData::Float64(v) => BatchData::Float(&v[lo..hi]),
                        ColumnData::Categorical(v) => BatchData::Cat(&v[lo..hi]),
                        ColumnData::Bool(_) => BatchData::Bool(&bool_scratch[slot]),
                    };
                    let validity = col
                        .validity
                        .as_ref()
                        .map(|_| valid_scratch[slot].as_slice());
                    BatchColumn { data, validity }
                })
                .collect();
            visitor(&Batch::new(lo, hi - lo, columns));
            lo = hi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;
    use crate::schema::{ColumnDef, ColumnRole, ColumnType};
    use crate::value::Value;

    fn small_table() -> ColumnStore {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("color"),
            ColumnDef::new("n", ColumnType::Int64, ColumnRole::Measure),
        ]);
        b.push_row(&[Value::str("red"), Value::Int(10)]).unwrap();
        b.push_row(&[Value::str("blue"), Value::Null]).unwrap();
        b.push_row(&[Value::str("blue"), Value::Int(30)]).unwrap();
        b.build_column_store().unwrap()
    }

    #[test]
    fn random_access() {
        let t = small_table();
        assert_eq!(t.cell(0, ColumnId(0)), Cell::Cat(0));
        assert_eq!(t.cell(1, ColumnId(1)), Cell::Null);
        assert_eq!(t.cell(2, ColumnId(1)), Cell::Int(30));
        assert_eq!(t.kind(), StoreKind::Column);
    }

    #[test]
    fn scan_touches_projection_only() {
        let t = small_table();
        let mut codes = Vec::new();
        t.scan_range(&[ColumnId(0)], 0..t.num_rows(), &mut |cells| {
            assert_eq!(cells.len(), 1);
            codes.push(cells[0]);
        });
        assert_eq!(codes, vec![Cell::Cat(0), Cell::Cat(1), Cell::Cat(1)]);
    }

    #[test]
    fn scan_partial_range() {
        let t = small_table();
        let mut n = 0;
        t.scan_range(&[ColumnId(1)], 1..2, &mut |cells| {
            assert_eq!(cells[0], Cell::Null);
            n += 1;
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn stats_and_dictionary() {
        let t = small_table();
        assert_eq!(t.stats(ColumnId(0)).distinct, 2);
        assert_eq!(t.stats(ColumnId(1)).null_count, 1);
        assert_eq!(t.dictionary(ColumnId(0)).unwrap().label(1), Some("blue"));
    }

    #[test]
    fn distinct_count_floor_is_one() {
        // An empty table still reports >= 1 so log-weights stay finite.
        let b = TableBuilder::new(vec![ColumnDef::dim("c")]);
        let t = b.build_column_store().unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.distinct_count(ColumnId(0)), 1);
    }
}
