//! Typed column vectors used by the column store and the table builder's
//! staging area.

use crate::bitmap::Bitmap;
use crate::value::Cell;

/// Dense, typed payload of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Integer payload.
    Int64(Vec<i64>),
    /// Float payload.
    Float64(Vec<f64>),
    /// Dictionary codes of a categorical column.
    Categorical(Vec<u32>),
    /// Boolean payload (bit-packed).
    Bool(Bitmap),
}

impl ColumnData {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Categorical(v) => v.len(),
            ColumnData::Bool(b) => b.len(),
        }
    }

    /// True if the column holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw (validity-ignorant) cell at `idx`.
    #[inline]
    pub fn raw_cell(&self, idx: usize) -> Cell {
        match self {
            ColumnData::Int64(v) => Cell::Int(v[idx]),
            ColumnData::Float64(v) => Cell::Float(v[idx]),
            ColumnData::Categorical(v) => Cell::Cat(v[idx]),
            ColumnData::Bool(b) => Cell::Bool(b.get(idx)),
        }
    }
}

/// A column: typed payload plus optional validity bitmap.
///
/// `validity == None` means every entry is valid (the common case); this
/// keeps fully-dense columns free of per-row branching cost in scans that
/// check a shared `Option` once.
#[derive(Debug, Clone)]
pub struct Column {
    /// Payload vector.
    pub data: ColumnData,
    /// Validity bitmap; bit set ⇒ value present, unset ⇒ NULL.
    pub validity: Option<Bitmap>,
}

impl Column {
    /// Creates a column with no NULLs.
    pub fn dense(data: ColumnData) -> Self {
        Column {
            data,
            validity: None,
        }
    }

    /// Creates a column with the given validity bitmap. Panics if lengths differ.
    pub fn with_validity(data: ColumnData, validity: Bitmap) -> Self {
        assert_eq!(
            data.len(),
            validity.len(),
            "validity bitmap length must match column length"
        );
        // Normalize: an all-valid bitmap is represented as None.
        if validity.count_ones() == validity.len() {
            Column {
                data,
                validity: None,
            }
        } else {
            Column {
                data,
                validity: Some(validity),
            }
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column holds no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Cell at `idx`, observing validity.
    #[inline]
    pub fn cell(&self, idx: usize) -> Cell {
        match &self.validity {
            Some(v) if !v.get(idx) => Cell::Null,
            _ => self.data.raw_cell(idx),
        }
    }

    /// Number of NULL entries.
    pub fn null_count(&self) -> usize {
        match &self.validity {
            None => 0,
            Some(v) => v.len() - v.count_ones(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_column_has_no_nulls() {
        let c = Column::dense(ColumnData::Int64(vec![1, 2, 3]));
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 0);
        assert_eq!(c.cell(1), Cell::Int(2));
    }

    #[test]
    fn validity_masks_nulls() {
        let validity: Bitmap = [true, false, true].into_iter().collect();
        let c = Column::with_validity(ColumnData::Float64(vec![1.0, 2.0, 3.0]), validity);
        assert_eq!(c.cell(0), Cell::Float(1.0));
        assert_eq!(c.cell(1), Cell::Null);
        assert_eq!(c.cell(2), Cell::Float(3.0));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn all_valid_bitmap_normalized_away() {
        let validity = Bitmap::filled(3, true);
        let c = Column::with_validity(ColumnData::Int64(vec![1, 2, 3]), validity);
        assert!(c.validity.is_none());
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_validity_length_panics() {
        let validity = Bitmap::filled(2, true);
        Column::with_validity(ColumnData::Int64(vec![1, 2, 3]), validity);
    }

    #[test]
    fn bool_columns_bitpack() {
        let bits: Bitmap = [true, false, true].into_iter().collect();
        let c = Column::dense(ColumnData::Bool(bits));
        assert_eq!(c.cell(0), Cell::Bool(true));
        assert_eq!(c.cell(1), Cell::Bool(false));
    }

    #[test]
    fn categorical_cells_carry_codes() {
        let c = Column::dense(ColumnData::Categorical(vec![0, 1, 0]));
        assert_eq!(c.cell(2), Cell::Cat(0));
    }
}
