//! Batched (vectorized) scan views.
//!
//! [`crate::Table::scan_batches`] yields fixed-size [`Batch`]es instead of
//! one visitor call per row. Each batch exposes the projected columns as
//! dense typed slices — dictionary code slices for categorical columns,
//! `i64`/`f64` slices for numeric ones — so the engine's hot
//! scan→aggregate loop can run without materializing a [`Cell`] per value
//! or paying a virtual call per row. The column store serves batches
//! zero-copy straight out of its column vectors; the row store (and any
//! other [`crate::Table`] implementation) falls back to materializing each
//! batch through its row-at-a-time scan.

use crate::value::Cell;
use std::ops::Range;

/// Default number of rows per batch. Chosen so a handful of projected
/// `f64` columns stay comfortably inside L1/L2 while amortizing per-batch
/// overhead.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Default number of rows per **morsel** — the unit of work the engine's
/// morsel-driven scheduler hands to pool workers. A multiple of
/// [`DEFAULT_BATCH_SIZE`] so every batch of a morsel-granular scan is full
/// (except the last), i.e. morsel boundaries are batch-aligned; large
/// enough to amortize per-morsel scheduling, small enough that a ~100 K-row
/// scan still splits across 8 workers.
pub const DEFAULT_MORSEL_ROWS: usize = 16 * DEFAULT_BATCH_SIZE;

/// Splits a row `range` into contiguous morsels of at most `morsel_rows`
/// rows (clamped to ≥ 1; pass `usize::MAX` for a single whole-range
/// morsel). An empty range yields no morsels.
///
/// Morsel boundaries fall at fixed offsets from `range.start`, so the
/// partitioning depends only on `(range, morsel_rows)` — never on worker
/// count or scheduling — which is what keeps morsel-parallel execution
/// deterministic.
pub fn morsel_ranges(range: Range<usize>, morsel_rows: usize) -> Vec<Range<usize>> {
    let step = morsel_rows.max(1);
    let mut out = Vec::new();
    let mut lo = range.start;
    while lo < range.end {
        let hi = lo.saturating_add(step).min(range.end);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// One column's payload within a batch: a dense typed slice.
#[derive(Debug, Clone, Copy)]
pub enum BatchData<'a> {
    /// Integer payload.
    Int(&'a [i64]),
    /// Float payload.
    Float(&'a [f64]),
    /// Dictionary codes of a categorical column.
    Cat(&'a [u32]),
    /// Boolean payload (unpacked from the bit-packed column).
    Bool(&'a [bool]),
}

impl BatchData<'_> {
    /// Number of rows in the slice.
    pub fn len(&self) -> usize {
        match self {
            BatchData::Int(v) => v.len(),
            BatchData::Float(v) => v.len(),
            BatchData::Cat(v) => v.len(),
            BatchData::Bool(v) => v.len(),
        }
    }

    /// True if the slice holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One projected column of a [`Batch`]: typed payload plus optional
/// per-row validity (`None` = every row valid, the common dense case).
#[derive(Debug, Clone, Copy)]
pub struct BatchColumn<'a> {
    /// Payload slice, one entry per batch row.
    pub data: BatchData<'a>,
    /// Validity per batch row; `validity[i] == false` ⇒ row `i` is NULL.
    pub validity: Option<&'a [bool]>,
}

impl BatchColumn<'_> {
    /// Whether row `i` holds a non-NULL value.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.is_none_or(|v| v[i])
    }

    /// Cell view of row `i`, observing validity. Matches what a
    /// row-at-a-time scan of the same projection would yield.
    #[inline]
    pub fn cell(&self, i: usize) -> Cell {
        if !self.is_valid(i) {
            return Cell::Null;
        }
        match self.data {
            BatchData::Int(v) => Cell::Int(v[i]),
            BatchData::Float(v) => Cell::Float(v[i]),
            BatchData::Cat(v) => Cell::Cat(v[i]),
            BatchData::Bool(v) => Cell::Bool(v[i]),
        }
    }

    /// Numeric view of row `i`; same semantics as [`Cell::as_f64`]
    /// (integers and booleans widen, NULL and categorical codes are `None`).
    #[inline]
    pub fn value_f64(&self, i: usize) -> Option<f64> {
        if !self.is_valid(i) {
            return None;
        }
        match self.data {
            BatchData::Int(v) => Some(v[i] as f64),
            BatchData::Float(v) => Some(v[i]),
            BatchData::Bool(v) => Some(if v[i] { 1.0 } else { 0.0 }),
            BatchData::Cat(_) => None,
        }
    }

    /// Grouping code of row `i`; same semantics as [`Cell::group_code`].
    #[inline]
    pub fn group_code(&self, i: usize) -> u64 {
        if !self.is_valid(i) {
            return u64::MAX;
        }
        match self.data {
            BatchData::Int(v) => v[i] as u64,
            BatchData::Float(v) => v[i].to_bits(),
            BatchData::Cat(v) => v[i] as u64,
            BatchData::Bool(v) => v[i] as u64,
        }
    }
}

/// A fixed-size horizontal slice of a projected scan: `len` consecutive
/// rows of every projected column, in projection order.
#[derive(Debug)]
pub struct Batch<'a> {
    /// Absolute row index of the batch's first row within the table.
    pub start_row: usize,
    len: usize,
    columns: Vec<BatchColumn<'a>>,
}

impl<'a> Batch<'a> {
    /// Assembles a batch. Panics if any column's length differs from `len`.
    pub fn new(start_row: usize, len: usize, columns: Vec<BatchColumn<'a>>) -> Self {
        for (slot, col) in columns.iter().enumerate() {
            assert_eq!(col.data.len(), len, "batch column {slot} length mismatch");
            if let Some(v) = col.validity {
                assert_eq!(v.len(), len, "batch column {slot} validity mismatch");
            }
        }
        Batch {
            start_row,
            len,
            columns,
        }
    }

    /// Number of rows in this batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column at projection slot `slot`.
    #[inline]
    pub fn column(&self, slot: usize) -> &BatchColumn<'a> {
        &self.columns[slot]
    }

    /// Number of projected columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }
}

/// Typed staging buffers used by the materializing fallback implementation
/// of [`crate::Table::scan_batches`].
#[derive(Debug)]
pub(crate) enum Staging {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Cat(Vec<u32>),
    Bool(Vec<bool>),
}

impl Staging {
    pub(crate) fn for_type(ty: crate::schema::ColumnType) -> Staging {
        match ty {
            crate::schema::ColumnType::Int64 => Staging::Int(Vec::new()),
            crate::schema::ColumnType::Float64 => Staging::Float(Vec::new()),
            crate::schema::ColumnType::Categorical => Staging::Cat(Vec::new()),
            crate::schema::ColumnType::Bool => Staging::Bool(Vec::new()),
        }
    }

    /// Appends one cell (NULL pushes a placeholder payload).
    pub(crate) fn push(&mut self, cell: Cell) {
        match (self, cell) {
            (Staging::Int(v), Cell::Int(x)) => v.push(x),
            (Staging::Int(v), Cell::Null) => v.push(0),
            (Staging::Float(v), Cell::Float(x)) => v.push(x),
            (Staging::Float(v), Cell::Null) => v.push(0.0),
            (Staging::Cat(v), Cell::Cat(x)) => v.push(x),
            (Staging::Cat(v), Cell::Null) => v.push(0),
            (Staging::Bool(v), Cell::Bool(x)) => v.push(x),
            (Staging::Bool(v), Cell::Null) => v.push(false),
            (staging, cell) => panic!("cell {cell:?} does not match staging {staging:?}"),
        }
    }

    /// Appends one raw 8-byte payload (as the row store packs it),
    /// decoding per staging type. Invalid rows push a placeholder.
    pub(crate) fn push_raw(&mut self, bits: u64, valid: bool) {
        match self {
            Staging::Int(v) => v.push(if valid { bits as i64 } else { 0 }),
            Staging::Float(v) => v.push(if valid { f64::from_bits(bits) } else { 0.0 }),
            Staging::Cat(v) => v.push(if valid { bits as u32 } else { 0 }),
            Staging::Bool(v) => v.push(valid && bits != 0),
        }
    }

    pub(crate) fn clear(&mut self) {
        match self {
            Staging::Int(v) => v.clear(),
            Staging::Float(v) => v.clear(),
            Staging::Cat(v) => v.clear(),
            Staging::Bool(v) => v.clear(),
        }
    }

    pub(crate) fn as_data(&self) -> BatchData<'_> {
        match self {
            Staging::Int(v) => BatchData::Int(v),
            Staging::Float(v) => BatchData::Float(v),
            Staging::Cat(v) => BatchData::Cat(v),
            Staging::Bool(v) => BatchData::Bool(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_ranges_partition_exactly() {
        for (range, morsel) in [
            (0..100, 7usize),
            (3..103, 10),
            (0..1, 1),
            (5..5, 4),
            (0..100_000, DEFAULT_MORSEL_ROWS),
            (0..10, usize::MAX),
        ] {
            let morsels = morsel_ranges(range.clone(), morsel);
            let mut expected = range.start;
            for m in &morsels {
                assert_eq!(m.start, expected);
                assert!(m.end > m.start && m.end - m.start <= morsel);
                expected = m.end;
            }
            assert_eq!(expected, range.end.max(range.start));
        }
    }

    #[test]
    fn morsel_ranges_clamp_zero_to_one() {
        assert_eq!(morsel_ranges(0..3, 0).len(), 3);
    }

    #[test]
    fn default_morsel_is_batch_aligned() {
        assert_eq!(DEFAULT_MORSEL_ROWS % DEFAULT_BATCH_SIZE, 0);
    }

    #[test]
    fn batch_column_views_match_cell_semantics() {
        let data = [1.5f64, 2.5, 3.5];
        let validity = [true, false, true];
        let col = BatchColumn {
            data: BatchData::Float(&data),
            validity: Some(&validity),
        };
        assert_eq!(col.cell(0), Cell::Float(1.5));
        assert_eq!(col.cell(1), Cell::Null);
        assert_eq!(col.value_f64(1), None);
        assert_eq!(col.value_f64(2), Some(3.5));
        assert_eq!(col.group_code(1), u64::MAX);
        assert_eq!(col.group_code(2), 3.5f64.to_bits());
    }

    #[test]
    fn batch_column_widens_like_cell_as_f64() {
        let ints = [4i64, -1];
        let col = BatchColumn {
            data: BatchData::Int(&ints),
            validity: None,
        };
        for i in 0..2 {
            assert_eq!(col.value_f64(i), col.cell(i).as_f64());
            assert_eq!(col.group_code(i), col.cell(i).group_code());
        }
        let bools = [true, false];
        let col = BatchColumn {
            data: BatchData::Bool(&bools),
            validity: None,
        };
        assert_eq!(col.value_f64(0), Some(1.0));
        assert_eq!(col.value_f64(1), Some(0.0));
        let cats = [7u32];
        let col = BatchColumn {
            data: BatchData::Cat(&cats),
            validity: None,
        };
        assert_eq!(col.value_f64(0), None);
        assert_eq!(col.group_code(0), 7);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn batch_rejects_ragged_columns() {
        let data = [1i64, 2];
        Batch::new(
            0,
            3,
            vec![BatchColumn {
                data: BatchData::Int(&data),
                validity: None,
            }],
        );
    }
}
