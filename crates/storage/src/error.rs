//! Error type for storage operations.

use std::fmt;

/// Errors raised while building or reading tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A row was pushed whose arity does not match the schema.
    ArityMismatch { expected: usize, got: usize },
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        column: String,
        expected: &'static str,
        got: &'static str,
    },
    /// A column name was referenced that does not exist in the schema.
    UnknownColumn(String),
    /// Two columns in a schema share the same name.
    DuplicateColumn(String),
    /// A schema with zero columns was supplied.
    EmptySchema,
    /// A row index beyond `num_rows` was accessed.
    RowOutOfBounds { row: usize, num_rows: usize },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(
                    f,
                    "type mismatch in column '{column}': expected {expected}, got {got}"
                )
            }
            StorageError::UnknownColumn(name) => write!(f, "unknown column '{name}'"),
            StorageError::DuplicateColumn(name) => write!(f, "duplicate column '{name}'"),
            StorageError::EmptySchema => write!(f, "schema must contain at least one column"),
            StorageError::RowOutOfBounds { row, num_rows } => {
                write!(
                    f,
                    "row index {row} out of bounds (table has {num_rows} rows)"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("2"));

        let e = StorageError::TypeMismatch {
            column: "age".into(),
            expected: "Int64",
            got: "Float64",
        };
        assert!(e.to_string().contains("age"));
        assert!(e.to_string().contains("Int64"));

        let e = StorageError::UnknownColumn("ghost".into());
        assert!(e.to_string().contains("ghost"));

        let e = StorageError::RowOutOfBounds {
            row: 10,
            num_rows: 5,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StorageError::EmptySchema, StorageError::EmptySchema);
        assert_ne!(
            StorageError::UnknownColumn("a".into()),
            StorageError::UnknownColumn("b".into())
        );
    }
}
