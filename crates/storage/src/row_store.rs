//! Row-oriented storage: all columns of a row packed contiguously.
//!
//! Layout per row (fixed stride):
//!
//! ```text
//! [ null bitmap: ceil(ncols/8) bytes ][ col0: 8 bytes ][ col1: 8 bytes ] ...
//! ```
//!
//! Every column occupies eight bytes regardless of type (i64 / f64-bits /
//! zero-extended dictionary code / bool), so cell offsets are computable
//! without per-row metadata. A projected scan must stride over the full row
//! width, which is what gives a row store its characteristic scan cost —
//! exactly the behaviour SeeDB's sharing optimizations exploit (one shared
//! scan amortizes the full-row cost across many views).

use crate::batch::{Batch, BatchColumn, Staging};
use crate::dictionary::Dictionary;
use crate::partition::Partition;
use crate::schema::{ColumnId, ColumnStats, ColumnType, Schema};
use crate::table::{StoreKind, Table};
use crate::value::Cell;
use std::ops::Range;

/// Immutable row-oriented table.
pub struct RowStore {
    schema: Schema,
    /// Packed row data, `num_rows * stride` bytes.
    data: Vec<u8>,
    stride: usize,
    null_bytes: usize,
    num_rows: usize,
    dictionaries: Vec<Option<Dictionary>>,
    stats: Vec<ColumnStats>,
    partitions: Vec<Partition>,
}

impl RowStore {
    /// Assembles a row store from pre-validated parts (used by the builder).
    pub(crate) fn from_parts(
        schema: Schema,
        data: Vec<u8>,
        num_rows: usize,
        dictionaries: Vec<Option<Dictionary>>,
        stats: Vec<ColumnStats>,
        partitions: Vec<Partition>,
    ) -> Self {
        let (stride, null_bytes) = Self::layout(&schema);
        debug_assert_eq!(data.len(), num_rows * stride);
        debug_assert_eq!(
            partitions.iter().map(Partition::len).sum::<usize>(),
            num_rows
        );
        RowStore {
            schema,
            data,
            stride,
            null_bytes,
            num_rows,
            dictionaries,
            stats,
            partitions,
        }
    }

    /// Computes `(stride, null_bytes)` for a schema.
    pub(crate) fn layout(schema: &Schema) -> (usize, usize) {
        let ncols = schema.len();
        let null_bytes = ncols.div_ceil(8);
        (null_bytes + ncols * 8, null_bytes)
    }

    /// Byte stride of one row (useful for memory accounting in benches).
    pub fn row_stride(&self) -> usize {
        self.stride
    }

    #[inline]
    fn is_valid(&self, row_base: usize, col: usize) -> bool {
        let byte = self.data[row_base + col / 8];
        (byte >> (col % 8)) & 1 == 1
    }

    #[inline]
    fn decode(&self, row_base: usize, col: usize) -> Cell {
        if !self.is_valid(row_base, col) {
            return Cell::Null;
        }
        let off = row_base + self.null_bytes + col * 8;
        let bytes: [u8; 8] = self.data[off..off + 8].try_into().unwrap();
        let bits = u64::from_le_bytes(bytes);
        match self.schema.columns()[col].ty {
            ColumnType::Int64 => Cell::Int(bits as i64),
            ColumnType::Float64 => Cell::Float(f64::from_bits(bits)),
            ColumnType::Categorical => Cell::Cat(bits as u32),
            ColumnType::Bool => Cell::Bool(bits != 0),
        }
    }
}

impl Table for RowStore {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn num_rows(&self) -> usize {
        self.num_rows
    }

    fn kind(&self) -> StoreKind {
        StoreKind::Row
    }

    fn dictionary(&self, col: ColumnId) -> Option<&Dictionary> {
        self.dictionaries[col.index()].as_ref()
    }

    fn stats(&self, col: ColumnId) -> &ColumnStats {
        &self.stats[col.index()]
    }

    fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    fn cell(&self, row: usize, col: ColumnId) -> Cell {
        assert!(row < self.num_rows, "row {row} out of bounds");
        self.decode(row * self.stride, col.index())
    }

    fn scan_range(
        &self,
        projection: &[ColumnId],
        range: Range<usize>,
        visitor: &mut dyn FnMut(&[Cell]),
    ) {
        let start = range.start.min(self.num_rows);
        let end = range.end.min(self.num_rows);
        let mut buf = vec![Cell::Null; projection.len()];
        let cols: Vec<usize> = projection.iter().map(|c| c.index()).collect();
        for row in start..end {
            let base = row * self.stride;
            for (slot, &col) in cols.iter().enumerate() {
                buf[slot] = self.decode(base, col);
            }
            visitor(&buf);
        }
    }

    /// Materializing batches is the row store's only option (its payloads
    /// are row-interleaved), but this override decodes the packed bytes
    /// straight into typed staging vectors — no per-row visitor call and no
    /// intermediate `Cell` — which roughly halves the batching overhead
    /// versus the generic `scan_range`-based fallback.
    fn scan_batches(
        &self,
        projection: &[ColumnId],
        range: Range<usize>,
        batch_size: usize,
        visitor: &mut dyn FnMut(&Batch<'_>),
    ) {
        let batch_size = batch_size.max(1);
        let start = range.start.min(self.num_rows);
        let end = range.end.min(self.num_rows);
        let cols: Vec<usize> = projection.iter().map(|c| c.index()).collect();
        let mut staging: Vec<Staging> = projection
            .iter()
            .map(|c| Staging::for_type(self.schema.column(*c).ty))
            .collect();
        let mut validity: Vec<Vec<bool>> = vec![Vec::new(); projection.len()];
        let mut has_null: Vec<bool> = vec![false; projection.len()];

        let mut lo = start;
        while lo < end {
            let hi = (lo + batch_size).min(end);
            for (slot, s) in staging.iter_mut().enumerate() {
                s.clear();
                validity[slot].clear();
                has_null[slot] = false;
            }
            for row in lo..hi {
                let base = row * self.stride;
                for (slot, &col) in cols.iter().enumerate() {
                    let valid = self.is_valid(base, col);
                    let bits = if valid {
                        let off = base + self.null_bytes + col * 8;
                        u64::from_le_bytes(self.data[off..off + 8].try_into().unwrap())
                    } else {
                        0
                    };
                    staging[slot].push_raw(bits, valid);
                    validity[slot].push(valid);
                    has_null[slot] |= !valid;
                }
            }
            let columns: Vec<BatchColumn<'_>> = staging
                .iter()
                .enumerate()
                .map(|(slot, s)| BatchColumn {
                    data: s.as_data(),
                    validity: has_null[slot].then_some(validity[slot].as_slice()),
                })
                .collect();
            visitor(&Batch::new(lo, hi - lo, columns));
            lo = hi;
        }
    }
}

/// Encodes one cell's payload into its 8-byte slot (validity handled by caller).
pub(crate) fn encode_payload(cell: &Cell) -> u64 {
    match cell {
        Cell::Null => 0,
        Cell::Int(v) => *v as u64,
        Cell::Float(v) => v.to_bits(),
        Cell::Cat(c) => *c as u64,
        Cell::Bool(b) => *b as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;
    use crate::schema::{ColumnDef, ColumnRole};
    use crate::value::Value;

    fn small_table() -> RowStore {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("color"),
            ColumnDef::new("n", ColumnType::Int64, ColumnRole::Measure),
            ColumnDef::new("x", ColumnType::Float64, ColumnRole::Measure),
            ColumnDef::new("flag", ColumnType::Bool, ColumnRole::Dimension),
        ]);
        b.push_row(&[
            Value::str("red"),
            Value::Int(1),
            Value::Float(0.5),
            Value::Bool(true),
        ])
        .unwrap();
        b.push_row(&[
            Value::str("blue"),
            Value::Int(-2),
            Value::Null,
            Value::Bool(false),
        ])
        .unwrap();
        b.push_row(&[
            Value::str("red"),
            Value::Null,
            Value::Float(2.25),
            Value::Null,
        ])
        .unwrap();
        b.build_row_store().unwrap()
    }

    #[test]
    fn layout_stride() {
        let t = small_table();
        // 4 columns -> 1 null byte + 32 payload bytes.
        assert_eq!(t.row_stride(), 33);
    }

    #[test]
    fn random_access_round_trips_all_types() {
        let t = small_table();
        assert_eq!(t.cell(0, ColumnId(0)), Cell::Cat(0)); // "red" interned first
        assert_eq!(t.cell(1, ColumnId(0)), Cell::Cat(1)); // "blue"
        assert_eq!(t.cell(0, ColumnId(1)), Cell::Int(1));
        assert_eq!(t.cell(1, ColumnId(1)), Cell::Int(-2));
        assert_eq!(t.cell(2, ColumnId(1)), Cell::Null);
        assert_eq!(t.cell(1, ColumnId(2)), Cell::Null);
        assert_eq!(t.cell(2, ColumnId(2)), Cell::Float(2.25));
        assert_eq!(t.cell(0, ColumnId(3)), Cell::Bool(true));
        assert_eq!(t.cell(2, ColumnId(3)), Cell::Null);
    }

    #[test]
    fn scan_projects_in_projection_order() {
        let t = small_table();
        let mut seen = Vec::new();
        t.scan_range(&[ColumnId(1), ColumnId(0)], 0..3, &mut |cells| {
            seen.push((cells[0], cells[1]));
        });
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], (Cell::Int(1), Cell::Cat(0)));
        assert_eq!(seen[1], (Cell::Int(-2), Cell::Cat(1)));
    }

    #[test]
    fn scan_range_clamps_to_table() {
        let t = small_table();
        let mut n = 0;
        t.scan_range(&[ColumnId(0)], 1..99, &mut |_| n += 1);
        assert_eq!(n, 2);
        t.scan_range(&[ColumnId(0)], 5..9, &mut |_| n += 1);
        assert_eq!(n, 2); // empty clamped range adds nothing
    }

    #[test]
    fn dictionary_resolves_codes() {
        let t = small_table();
        let d = t.dictionary(ColumnId(0)).unwrap();
        assert_eq!(d.label(0), Some("red"));
        assert_eq!(d.label(1), Some("blue"));
        assert!(t.dictionary(ColumnId(1)).is_none());
    }

    #[test]
    fn stats_reflect_data() {
        let t = small_table();
        let s = t.stats(ColumnId(0));
        assert_eq!(s.distinct, 2);
        assert_eq!(s.null_count, 0);
        let s = t.stats(ColumnId(1));
        assert_eq!(s.distinct, 2);
        assert_eq!(s.null_count, 1);
        assert_eq!(s.min, Some(-2.0));
        assert_eq!(s.max, Some(1.0));
    }

    #[test]
    fn cell_label_decodes_categorical() {
        let t = small_table();
        assert_eq!(t.cell_label(ColumnId(0), Cell::Cat(1)), "blue");
        assert_eq!(t.cell_label(ColumnId(1), Cell::Int(7)), "7");
        assert_eq!(t.cell_label(ColumnId(0), Cell::Null), "NULL");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn cell_out_of_bounds_panics() {
        let t = small_table();
        t.cell(3, ColumnId(0));
    }
}
