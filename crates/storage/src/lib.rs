//! # seedb-storage
//!
//! In-memory storage substrate for the SeeDB reproduction.
//!
//! The SeeDB paper (Vartak et al., VLDB 2015) evaluates its middleware on a
//! row-oriented DBMS (`ROW`, PostgreSQL in the paper) and a column-oriented
//! DBMS (`COL`, a commercial column store). This crate provides both layouts
//! behind the common [`Table`] trait:
//!
//! * [`RowStore`] — rows are packed contiguously into a byte buffer with a
//!   fixed stride. A scan that projects two columns out of thirty still walks
//!   the full row stride, so memory traffic is proportional to the *row*
//!   width. This mirrors the access pattern of a row-oriented DBMS.
//! * [`ColumnStore`] — each column is a dense, typed vector (with optional
//!   validity bitmap). A scan touches only the projected columns, so memory
//!   traffic is proportional to the *projection* width.
//!
//! Categorical data is dictionary-encoded per column ([`Dictionary`]), which
//! both compresses storage and gives the engine cheap distinct-value counts
//! for its memory-budget planning (Problem 4.1 in the paper).
//!
//! Scans come in two granularities: the row-at-a-time
//! [`Table::scan_range`] (a visitor call per row with a [`Cell`] slice) and
//! the batched [`Table::scan_batches`], which yields fixed-size
//! [`Batch`]es of typed per-column slices (dictionary codes for
//! categoricals, raw `i64`/`f64` for numerics). The column store serves
//! batches zero-copy from its column vectors; the row store materializes
//! them as a fallback. The batched form is what the engine's vectorized
//! execution mode runs on.
//!
//! ## Quick example
//!
//! ```
//! use seedb_storage::{ColumnDef, ColumnRole, ColumnType, StoreKind, TableBuilder, Value};
//!
//! let mut b = TableBuilder::new(vec![
//!     ColumnDef::new("sex", ColumnType::Categorical, ColumnRole::Dimension),
//!     ColumnDef::new("capital_gain", ColumnType::Float64, ColumnRole::Measure),
//! ]);
//! b.push_row(&[Value::str("F"), Value::Float(510.0)]).unwrap();
//! b.push_row(&[Value::str("M"), Value::Float(485.0)]).unwrap();
//! let table = b.build(StoreKind::Column).unwrap();
//! assert_eq!(table.num_rows(), 2);
//! ```

mod batch;
mod bitmap;
mod builder;
mod column;
mod column_store;
mod dictionary;
mod error;
mod partition;
mod row_store;
mod schema;
mod table;
mod value;
mod zonemap;

pub use batch::{
    morsel_ranges, Batch, BatchColumn, BatchData, DEFAULT_BATCH_SIZE, DEFAULT_MORSEL_ROWS,
};
pub use bitmap::Bitmap;
pub use builder::TableBuilder;
pub use column::{Column, ColumnData};
pub use column_store::ColumnStore;
pub use dictionary::Dictionary;
pub use error::StorageError;
pub use partition::{Partition, DEFAULT_PARTITION_ROWS};
pub use row_store::RowStore;
pub use schema::{ColumnDef, ColumnId, ColumnRole, ColumnStats, ColumnType, Schema};
pub use table::{BoxedTable, ColumnSummary, StoreKind, Table, TableStats};
pub use value::{Cell, Value};
pub use zonemap::{ColumnZone, ZoneBuilder, ZoneMatch};
