//! Per-partition zone maps: small-footprint column summaries that let a
//! scan prove "no row in this partition can match" without touching the
//! partition's rows.
//!
//! A [`ColumnZone`] summarizes one column over one partition: row count,
//! NULL count, NaN count, distinct-value count, and the min/max of the
//! column's numeric view (integers and booleans widen to `f64`, categorical
//! values use their dictionary code — exactly the domain row-level
//! predicates compare in, so interval reasoning over a zone is sound by
//! construction).
//!
//! Zone verdicts are tri-state ([`ZoneMatch`]): a predicate either matches
//! **no** row of the partition (`Never`), **every** row (`Always`), or the
//! zone cannot decide (`Maybe`). `Never`/`Always` are hard guarantees —
//! the planner prunes partitions only on `Never`, and `Always` exists so
//! negation stays exact (`NOT always` = `never`). `Maybe` is always a safe
//! answer.
//!
//! NULL and NaN handling mirror the engine's row-level semantics: SQL
//! comparisons against NULL are false (so NULL rows can never satisfy a
//! comparison, only `IS NULL`), `NaN` fails every comparison except `<>`,
//! and min/max never include NULL or NaN (they are counted separately).

use crate::schema::ColumnType;

/// Tri-state verdict of a zone-map check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneMatch {
    /// No row in the partition can satisfy the predicate.
    Never,
    /// The zone cannot decide; the partition must be scanned.
    Maybe,
    /// Every row in the partition satisfies the predicate.
    Always,
}

impl ZoneMatch {
    /// Conjunction: `Never` dominates, `Always` requires both sides.
    #[inline]
    pub fn and(self, other: ZoneMatch) -> ZoneMatch {
        match (self, other) {
            (ZoneMatch::Never, _) | (_, ZoneMatch::Never) => ZoneMatch::Never,
            (ZoneMatch::Always, ZoneMatch::Always) => ZoneMatch::Always,
            _ => ZoneMatch::Maybe,
        }
    }

    /// Disjunction: `Always` dominates, `Never` requires both sides.
    #[inline]
    pub fn or(self, other: ZoneMatch) -> ZoneMatch {
        match (self, other) {
            (ZoneMatch::Always, _) | (_, ZoneMatch::Always) => ZoneMatch::Always,
            (ZoneMatch::Never, ZoneMatch::Never) => ZoneMatch::Never,
            _ => ZoneMatch::Maybe,
        }
    }

    /// Negation: swaps the two certain verdicts, keeps `Maybe`.
    #[inline]
    pub fn negate(self) -> ZoneMatch {
        match self {
            ZoneMatch::Never => ZoneMatch::Always,
            ZoneMatch::Maybe => ZoneMatch::Maybe,
            ZoneMatch::Always => ZoneMatch::Never,
        }
    }
}

/// Zone-map summary of one column over one partition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnZone {
    /// The column's declared type (verdicts about typed predicates need it).
    pub ty: ColumnType,
    /// Rows in the partition (NULLs included).
    pub rows: usize,
    /// NULL rows.
    pub null_count: usize,
    /// Non-NULL `NaN` rows (only ever non-zero for `Float64` columns).
    /// Tracked separately because NaN fails every comparison except `<>`
    /// and is excluded from `min`/`max`.
    pub nan_count: usize,
    /// Distinct non-NULL values (bit-pattern distinct for floats).
    pub distinct: usize,
    /// Minimum of the column's numeric view over non-NULL, non-NaN rows
    /// (`None` when there are none).
    pub min: Option<f64>,
    /// Maximum of the column's numeric view over non-NULL, non-NaN rows.
    pub max: Option<f64>,
}

impl ColumnZone {
    /// Count of rows that are neither NULL nor NaN — the rows covered by
    /// the `[min, max]` interval.
    #[inline]
    fn interval_rows(&self) -> usize {
        self.rows - self.null_count - self.nan_count
    }

    /// Verdict for `column IS NULL`.
    pub fn match_is_null(&self) -> ZoneMatch {
        if self.null_count == 0 {
            ZoneMatch::Never
        } else if self.null_count == self.rows {
            ZoneMatch::Always
        } else {
            ZoneMatch::Maybe
        }
    }

    /// Verdict for `column = value` on the numeric view.
    ///
    /// NULL rows never match; NaN rows never match; `value = NaN` matches
    /// nothing.
    pub fn match_eq(&self, value: f64) -> ZoneMatch {
        if value.is_nan() || self.interval_rows() == 0 {
            return ZoneMatch::Never;
        }
        let (min, max) = (self.min.unwrap(), self.max.unwrap());
        if value < min || value > max {
            return ZoneMatch::Never;
        }
        if self.null_count == 0 && self.nan_count == 0 && min == max && min == value {
            return ZoneMatch::Always;
        }
        ZoneMatch::Maybe
    }

    /// Verdict for `column <> value` on the numeric view.
    ///
    /// NULL rows never match; NaN rows **always** match (`NaN <> x` is
    /// true); `value = NaN` is matched by every non-NULL row.
    pub fn match_ne(&self, value: f64) -> ZoneMatch {
        if value.is_nan() {
            // Every non-NULL row satisfies `x <> NaN`.
            return if self.null_count == self.rows {
                ZoneMatch::Never
            } else if self.null_count == 0 {
                ZoneMatch::Always
            } else {
                ZoneMatch::Maybe
            };
        }
        let all_interval_eq = match (self.min, self.max) {
            (Some(min), Some(max)) => min == max && min == value,
            // No interval rows: vacuously "all equal".
            _ => true,
        };
        if self.nan_count == 0 && all_interval_eq {
            // Every non-NULL row equals `value` (or there are none): no
            // row matches `<>`.
            return ZoneMatch::Never;
        }
        let no_interval_eq = match (self.min, self.max) {
            (Some(min), Some(max)) => value < min || value > max,
            _ => true,
        };
        if self.null_count == 0 && no_interval_eq {
            // Interval rows all differ from `value`, NaN rows always match.
            return ZoneMatch::Always;
        }
        ZoneMatch::Maybe
    }

    /// Verdict for `column < value` on the numeric view.
    pub fn match_lt(&self, value: f64) -> ZoneMatch {
        self.match_interval(value, |min, _max, v| min < v, |_min, max, v| max < v)
    }

    /// Verdict for `column <= value` on the numeric view.
    pub fn match_le(&self, value: f64) -> ZoneMatch {
        self.match_interval(value, |min, _max, v| min <= v, |_min, max, v| max <= v)
    }

    /// Verdict for `column > value` on the numeric view.
    pub fn match_gt(&self, value: f64) -> ZoneMatch {
        self.match_interval(value, |_min, max, v| max > v, |min, _max, v| min > v)
    }

    /// Verdict for `column >= value` on the numeric view.
    pub fn match_ge(&self, value: f64) -> ZoneMatch {
        self.match_interval(value, |_min, max, v| max >= v, |min, _max, v| min >= v)
    }

    /// Shared shape of the four ordering comparisons: `some` decides whether
    /// *any* interval row can match, `all` whether *every* interval row
    /// must. NULL and NaN rows never satisfy an ordering comparison, so
    /// `Always` additionally requires the partition to contain neither.
    fn match_interval(
        &self,
        value: f64,
        some: impl Fn(f64, f64, f64) -> bool,
        all: impl Fn(f64, f64, f64) -> bool,
    ) -> ZoneMatch {
        if value.is_nan() || self.interval_rows() == 0 {
            return ZoneMatch::Never;
        }
        let (min, max) = (self.min.unwrap(), self.max.unwrap());
        if !some(min, max, value) {
            return ZoneMatch::Never;
        }
        if self.null_count == 0 && self.nan_count == 0 && all(min, max, value) {
            return ZoneMatch::Always;
        }
        ZoneMatch::Maybe
    }
}

/// Incremental [`ColumnZone`] accumulator used by the table builder: one
/// per column, reset at each partition boundary.
#[derive(Debug)]
pub struct ZoneBuilder {
    ty: ColumnType,
    rows: usize,
    null_count: usize,
    nan_count: usize,
    distinct: rustc_hash::FxHashSet<u64>,
    min: Option<f64>,
    max: Option<f64>,
}

impl ZoneBuilder {
    /// Fresh accumulator for a column of type `ty`.
    pub fn new(ty: ColumnType) -> Self {
        ZoneBuilder {
            ty,
            rows: 0,
            null_count: 0,
            nan_count: 0,
            distinct: rustc_hash::FxHashSet::default(),
            min: None,
            max: None,
        }
    }

    /// Records a NULL row.
    pub fn observe_null(&mut self) {
        self.rows += 1;
        self.null_count += 1;
    }

    /// Records a non-NULL row: `bits` is the value's distinct-identity
    /// (bit-cast for floats, code for categoricals), `numeric` its numeric
    /// view (the same view row-level predicates compare in).
    pub fn observe(&mut self, bits: u64, numeric: f64) {
        self.rows += 1;
        self.distinct.insert(bits);
        if numeric.is_nan() {
            self.nan_count += 1;
        } else {
            self.min = Some(self.min.map_or(numeric, |m| m.min(numeric)));
            self.max = Some(self.max.map_or(numeric, |m| m.max(numeric)));
        }
    }

    /// Seals the accumulated state into a [`ColumnZone`] and resets the
    /// accumulator for the next partition.
    pub fn seal(&mut self) -> ColumnZone {
        let zone = ColumnZone {
            ty: self.ty,
            rows: self.rows,
            null_count: self.null_count,
            nan_count: self.nan_count,
            distinct: self.distinct.len(),
            min: self.min,
            max: self.max,
        };
        self.rows = 0;
        self.null_count = 0;
        self.nan_count = 0;
        self.distinct.clear();
        self.min = None;
        self.max = None;
        zone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone(values: &[f64], nulls: usize) -> ColumnZone {
        let mut b = ZoneBuilder::new(ColumnType::Float64);
        for &v in values {
            b.observe(v.to_bits(), v);
        }
        for _ in 0..nulls {
            b.observe_null();
        }
        b.seal()
    }

    #[test]
    fn tri_state_algebra() {
        use ZoneMatch::*;
        assert_eq!(Never.and(Always), Never);
        assert_eq!(Always.and(Always), Always);
        assert_eq!(Maybe.and(Always), Maybe);
        assert_eq!(Always.or(Never), Always);
        assert_eq!(Never.or(Never), Never);
        assert_eq!(Maybe.or(Never), Maybe);
        assert_eq!(Never.negate(), Always);
        assert_eq!(Always.negate(), Never);
        assert_eq!(Maybe.negate(), Maybe);
    }

    #[test]
    fn eq_interval_reasoning() {
        let z = zone(&[1.0, 5.0, 3.0], 0);
        assert_eq!(z.match_eq(0.5), ZoneMatch::Never);
        assert_eq!(z.match_eq(6.0), ZoneMatch::Never);
        assert_eq!(z.match_eq(3.0), ZoneMatch::Maybe);
        let constant = zone(&[2.0, 2.0], 0);
        assert_eq!(constant.match_eq(2.0), ZoneMatch::Always);
        let with_null = zone(&[2.0], 1);
        assert_eq!(with_null.match_eq(2.0), ZoneMatch::Maybe);
    }

    #[test]
    fn ne_requires_nan_awareness() {
        let constant = zone(&[2.0, 2.0], 0);
        assert_eq!(constant.match_ne(2.0), ZoneMatch::Never);
        assert_eq!(constant.match_ne(9.0), ZoneMatch::Always);
        // A NaN row *does* satisfy `<> 2.0`, so Never must not fire.
        let with_nan = zone(&[2.0, f64::NAN], 0);
        assert_eq!(with_nan.match_ne(2.0), ZoneMatch::Maybe);
        // NULL rows never match `<>`.
        let with_null = zone(&[9.0], 1);
        assert_eq!(with_null.match_ne(2.0), ZoneMatch::Maybe);
    }

    #[test]
    fn ordering_comparisons() {
        let z = zone(&[10.0, 20.0], 0);
        assert_eq!(z.match_lt(10.0), ZoneMatch::Never);
        assert_eq!(z.match_lt(15.0), ZoneMatch::Maybe);
        assert_eq!(z.match_lt(25.0), ZoneMatch::Always);
        assert_eq!(z.match_le(9.0), ZoneMatch::Never);
        assert_eq!(z.match_le(20.0), ZoneMatch::Always);
        assert_eq!(z.match_gt(20.0), ZoneMatch::Never);
        assert_eq!(z.match_gt(5.0), ZoneMatch::Always);
        assert_eq!(z.match_ge(21.0), ZoneMatch::Never);
        assert_eq!(z.match_ge(10.0), ZoneMatch::Always);
    }

    #[test]
    fn nan_value_and_nan_rows() {
        let z = zone(&[1.0, 2.0], 0);
        assert_eq!(z.match_eq(f64::NAN), ZoneMatch::Never);
        assert_eq!(z.match_lt(f64::NAN), ZoneMatch::Never);
        // Every non-NULL row satisfies `<> NaN`.
        assert_eq!(z.match_ne(f64::NAN), ZoneMatch::Always);
        // NaN rows block Always for ordering comparisons.
        let with_nan = zone(&[1.0, f64::NAN], 0);
        assert_eq!(with_nan.match_lt(5.0), ZoneMatch::Maybe);
        assert_eq!(with_nan.nan_count, 1);
    }

    #[test]
    fn all_null_partition() {
        let z = zone(&[], 3);
        assert_eq!(z.match_is_null(), ZoneMatch::Always);
        assert_eq!(z.match_eq(0.0), ZoneMatch::Never);
        assert_eq!(z.match_lt(0.0), ZoneMatch::Never);
        assert_eq!(z.match_ne(0.0), ZoneMatch::Never);
        let mixed = zone(&[1.0], 1);
        assert_eq!(mixed.match_is_null(), ZoneMatch::Maybe);
        let no_null = zone(&[1.0], 0);
        assert_eq!(no_null.match_is_null(), ZoneMatch::Never);
    }

    #[test]
    fn builder_resets_between_partitions() {
        let mut b = ZoneBuilder::new(ColumnType::Float64);
        b.observe(1.0f64.to_bits(), 1.0);
        b.observe_null();
        let first = b.seal();
        assert_eq!(first.rows, 2);
        assert_eq!(first.distinct, 1);
        b.observe(7.0f64.to_bits(), 7.0);
        let second = b.seal();
        assert_eq!(second.rows, 1);
        assert_eq!(second.null_count, 0);
        assert_eq!(second.min, Some(7.0));
    }

    #[test]
    fn negative_zero_equality_is_sound() {
        // -0.0 == 0.0 in f64 comparison, and row-level predicates compare
        // with ==, so an all-negative-zero partition must answer Always
        // for `= 0.0` and Never for `<> 0.0`.
        let z = zone(&[-0.0, -0.0], 0);
        assert_eq!(z.match_eq(0.0), ZoneMatch::Always);
        assert_eq!(z.match_ne(0.0), ZoneMatch::Never);
    }
}
