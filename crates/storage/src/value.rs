//! Logical values ([`Value`]) used at the ingestion boundary and compact
//! runtime cells ([`Cell`]) used during scans.
//!
//! `Value` owns its data (strings in particular) and is what callers push
//! into a [`crate::TableBuilder`]. `Cell` is the fixed-size representation a
//! scan yields per projected column: categorical strings appear as dictionary
//! codes, so a `Cell` is always `Copy` and fits in 16 bytes.

use std::fmt;

/// An owned logical value, as supplied by data generators or SQL literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string (stored dictionary-encoded for categorical columns).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Human-readable name of this value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int(_) => "Int64",
            Value::Float(_) => "Float64",
            Value::Str(_) => "Str",
            Value::Bool(_) => "Bool",
        }
    }

    /// Returns `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A compact, `Copy` cell produced by table scans.
///
/// Categorical values are represented by their per-column dictionary code;
/// use [`crate::Table::dictionary`] to map codes back to labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    /// NULL (column validity bit unset).
    Null,
    /// Integer payload.
    Int(i64),
    /// Float payload.
    Float(f64),
    /// Dictionary code of a categorical value.
    Cat(u32),
    /// Boolean payload.
    Bool(bool),
}

impl Cell {
    /// Returns `true` if the cell is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// Numeric view of the cell: integers and booleans widen to `f64`,
    /// NULL and categorical codes yield `None`.
    ///
    /// Aggregates over measures use this; grouping never does.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(v) => Some(*v as f64),
            Cell::Float(v) => Some(*v),
            Cell::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Cell::Null | Cell::Cat(_) => None,
        }
    }

    /// Grouping key view: a compact `u64` identifying the cell's group.
    ///
    /// NULL gets its own group (`u64::MAX`); integers are bit-cast (so the
    /// mapping is injective); categorical codes and booleans map directly.
    /// Floats are bit-cast, which groups by exact bit pattern — acceptable
    /// because grouping on raw float measures is not meaningful in SeeDB.
    #[inline]
    pub fn group_code(&self) -> u64 {
        match self {
            Cell::Null => u64::MAX,
            Cell::Int(v) => *v as u64,
            Cell::Float(v) => v.to_bits(),
            Cell::Cat(c) => *c as u64,
            Cell::Bool(b) => *b as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_type_names() {
        assert_eq!(Value::Null.type_name(), "Null");
        assert_eq!(Value::Int(1).type_name(), "Int64");
        assert_eq!(Value::Float(1.0).type_name(), "Float64");
        assert_eq!(Value::str("x").type_name(), "Str");
        assert_eq!(Value::Bool(true).type_name(), "Bool");
    }

    #[test]
    fn value_display_formats_sql_style() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("ab").to_string(), "'ab'");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn value_from_conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn cell_as_f64_widens_numerics_only() {
        assert_eq!(Cell::Int(4).as_f64(), Some(4.0));
        assert_eq!(Cell::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Cell::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Cell::Bool(false).as_f64(), Some(0.0));
        assert_eq!(Cell::Null.as_f64(), None);
        assert_eq!(Cell::Cat(7).as_f64(), None);
    }

    #[test]
    fn cell_group_codes_are_distinct_for_distinct_ints() {
        let a = Cell::Int(-1).group_code();
        let b = Cell::Int(1).group_code();
        let c = Cell::Int(0).group_code();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn cell_null_group_is_reserved() {
        assert_eq!(Cell::Null.group_code(), u64::MAX);
        assert_ne!(Cell::Cat(0).group_code(), Cell::Null.group_code());
    }

    #[test]
    fn cell_is_copy_and_small() {
        // The scan hot loop copies cells into a reusable buffer; keep them small.
        assert!(std::mem::size_of::<Cell>() <= 16);
        let c = Cell::Int(3);
        let d = c; // Copy
        assert_eq!(c, d);
    }
}
