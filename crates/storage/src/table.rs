//! The [`Table`] trait: the scan interface every SeeDB component runs on.
//!
//! SeeDB's phased execution framework (§3 of the paper) processes the *i*-th
//! of *n* equal partitions of the table per phase; [`Table::scan_range`]
//! exposes exactly that: a projected scan over a contiguous row range.
//! Both storage layouts implement it, with costs characteristic of their
//! layout (see crate docs).

use crate::batch::{Batch, BatchColumn, Staging};
use crate::dictionary::Dictionary;
use crate::partition::Partition;
use crate::schema::{ColumnId, ColumnStats, Schema};
use crate::value::Cell;
use std::ops::Range;
use std::sync::Arc;

/// Which physical layout a table uses. Mirrors the paper's ROW vs COL axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Row-oriented layout (paper: "ROW", PostgreSQL).
    Row,
    /// Column-oriented layout (paper: "COL").
    Column,
}

impl StoreKind {
    /// Paper-style label ("ROW" / "COL").
    pub fn label(&self) -> &'static str {
        match self {
            StoreKind::Row => "ROW",
            StoreKind::Column => "COL",
        }
    }
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Read interface over an immutable, fully-loaded table.
pub trait Table: Send + Sync {
    /// The table's schema.
    fn schema(&self) -> &Schema;

    /// Total number of rows.
    fn num_rows(&self) -> usize;

    /// Physical layout of this table.
    fn kind(&self) -> StoreKind;

    /// Dictionary of a categorical column (`None` for non-categorical).
    fn dictionary(&self, col: ColumnId) -> Option<&Dictionary>;

    /// Build-time statistics for a column.
    fn stats(&self, col: ColumnId) -> &ColumnStats;

    /// The table's partition directory: fixed-size row segments with
    /// per-column zone maps, sealed during load. An empty slice means the
    /// table carries no partition metadata — callers must then treat the
    /// whole table as one unprunable segment (see
    /// [`Table::partition_ranges`], which does exactly that).
    fn partitions(&self) -> &[Partition] {
        &[]
    }

    /// Partition-iterator view of a scan: intersects `range` (clamped to
    /// the table) with the partition directory and yields one
    /// `(partition_index, clipped_rows)` pair per overlapping partition,
    /// in ascending row order. Tables without partition metadata yield a
    /// single pseudo-segment covering the clamped range, whose index has
    /// no corresponding [`Table::partitions`] entry.
    fn partition_ranges(&self, range: Range<usize>) -> Vec<(usize, Range<usize>)> {
        let start = range.start.min(self.num_rows());
        let end = range.end.min(self.num_rows());
        if start >= end {
            return Vec::new();
        }
        let parts = self.partitions();
        if parts.is_empty() {
            return vec![(0, start..end)];
        }
        parts
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let clipped = p.clip(&(start..end));
                (!clipped.is_empty()).then_some((i, clipped))
            })
            .collect()
    }

    /// Random access to a single cell (intended for tests and result
    /// labelling, not hot loops).
    fn cell(&self, row: usize, col: ColumnId) -> Cell;

    /// Scans rows `range`, invoking `visitor` once per row with the cells of
    /// `projection`, in projection order.
    ///
    /// The cell slice passed to the visitor is only valid for the duration of
    /// the call (implementations reuse an internal buffer).
    fn scan_range(
        &self,
        projection: &[ColumnId],
        range: Range<usize>,
        visitor: &mut dyn FnMut(&[Cell]),
    );

    /// Scans rows `range` in fixed-size [`Batch`]es of up to `batch_size`
    /// rows, invoking `visitor` once per batch with typed per-column slices
    /// (see [`crate::batch`]).
    ///
    /// The default implementation materializes each batch through
    /// [`Table::scan_range`], which is correct for any layout; the column
    /// store overrides it to serve numeric and categorical columns
    /// zero-copy. Batches and their slices are only valid for the duration
    /// of the visitor call.
    fn scan_batches(
        &self,
        projection: &[ColumnId],
        range: Range<usize>,
        batch_size: usize,
        visitor: &mut dyn FnMut(&Batch<'_>),
    ) {
        let batch_size = batch_size.max(1);
        let start = range.start.min(self.num_rows());
        let end = range.end.min(self.num_rows());
        let schema = self.schema();
        let mut staging: Vec<Staging> = projection
            .iter()
            .map(|c| Staging::for_type(schema.column(*c).ty))
            .collect();
        let mut validity: Vec<Vec<bool>> = vec![Vec::new(); projection.len()];
        let mut has_null: Vec<bool> = vec![false; projection.len()];

        let mut lo = start;
        while lo < end {
            let hi = (lo + batch_size).min(end);
            for (slot, s) in staging.iter_mut().enumerate() {
                s.clear();
                validity[slot].clear();
                has_null[slot] = false;
            }
            self.scan_range(projection, lo..hi, &mut |cells| {
                for (slot, cell) in cells.iter().enumerate() {
                    staging[slot].push(*cell);
                    validity[slot].push(!cell.is_null());
                    has_null[slot] |= cell.is_null();
                }
            });
            let columns: Vec<BatchColumn<'_>> = staging
                .iter()
                .enumerate()
                .map(|(slot, s)| BatchColumn {
                    data: s.as_data(),
                    validity: has_null[slot].then_some(validity[slot].as_slice()),
                })
                .collect();
            visitor(&Batch::new(lo, hi - lo, columns));
            lo = hi;
        }
    }

    /// Distinct non-NULL value count of a column, `|a_i|` in the paper.
    /// Never returns 0 (empty columns report 1) so that bin-packing weights
    /// `log2(|a_i|)` stay finite.
    fn distinct_count(&self, col: ColumnId) -> usize {
        self.stats(col).distinct.max(1)
    }

    /// Human-readable label for a cell of column `col` (dictionary decoding
    /// for categoricals, plain formatting otherwise).
    fn cell_label(&self, col: ColumnId, cell: Cell) -> String {
        match cell {
            Cell::Null => "NULL".to_owned(),
            Cell::Cat(code) => self
                .dictionary(col)
                .and_then(|d| d.label(code))
                .map(str::to_owned)
                .unwrap_or_else(|| format!("cat#{code}")),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format!("{v}"),
            Cell::Bool(b) => b.to_string(),
        }
    }
}

/// Shared, dynamically-typed table handle.
pub type BoxedTable = Arc<dyn Table>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_kind_labels_match_paper() {
        assert_eq!(StoreKind::Row.label(), "ROW");
        assert_eq!(StoreKind::Column.label(), "COL");
        assert_eq!(StoreKind::Row.to_string(), "ROW");
    }
}
