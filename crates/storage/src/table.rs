//! The [`Table`] trait: the scan interface every SeeDB component runs on.
//!
//! SeeDB's phased execution framework (§3 of the paper) processes the *i*-th
//! of *n* equal partitions of the table per phase; [`Table::scan_range`]
//! exposes exactly that: a projected scan over a contiguous row range.
//! Both storage layouts implement it, with costs characteristic of their
//! layout (see crate docs).

use crate::batch::{Batch, BatchColumn, Staging};
use crate::dictionary::Dictionary;
use crate::partition::Partition;
use crate::schema::{ColumnId, ColumnStats, Schema};
use crate::value::Cell;
use std::ops::Range;
use std::sync::Arc;

/// Which physical layout a table uses. Mirrors the paper's ROW vs COL axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Row-oriented layout (paper: "ROW", PostgreSQL).
    Row,
    /// Column-oriented layout (paper: "COL").
    Column,
}

impl StoreKind {
    /// Paper-style label ("ROW" / "COL").
    pub fn label(&self) -> &'static str {
        match self {
            StoreKind::Row => "ROW",
            StoreKind::Column => "COL",
        }
    }
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Read interface over an immutable, fully-loaded table.
pub trait Table: Send + Sync {
    /// The table's schema.
    fn schema(&self) -> &Schema;

    /// Total number of rows.
    fn num_rows(&self) -> usize;

    /// Physical layout of this table.
    fn kind(&self) -> StoreKind;

    /// Dictionary of a categorical column (`None` for non-categorical).
    fn dictionary(&self, col: ColumnId) -> Option<&Dictionary>;

    /// Build-time statistics for a column.
    fn stats(&self, col: ColumnId) -> &ColumnStats;

    /// The table's partition directory: fixed-size row segments with
    /// per-column zone maps, sealed during load. An empty slice means the
    /// table carries no partition metadata — callers must then treat the
    /// whole table as one unprunable segment (see
    /// [`Table::partition_ranges`], which does exactly that).
    fn partitions(&self) -> &[Partition] {
        &[]
    }

    /// Partition-iterator view of a scan: intersects `range` (clamped to
    /// the table) with the partition directory and yields one
    /// `(partition_index, clipped_rows)` pair per overlapping partition,
    /// in ascending row order. Tables without partition metadata yield a
    /// single pseudo-segment covering the clamped range, whose index has
    /// no corresponding [`Table::partitions`] entry.
    fn partition_ranges(&self, range: Range<usize>) -> Vec<(usize, Range<usize>)> {
        let start = range.start.min(self.num_rows());
        let end = range.end.min(self.num_rows());
        if start >= end {
            return Vec::new();
        }
        let parts = self.partitions();
        if parts.is_empty() {
            return vec![(0, start..end)];
        }
        parts
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let clipped = p.clip(&(start..end));
                (!clipped.is_empty()).then_some((i, clipped))
            })
            .collect()
    }

    /// Random access to a single cell (intended for tests and result
    /// labelling, not hot loops).
    fn cell(&self, row: usize, col: ColumnId) -> Cell;

    /// Scans rows `range`, invoking `visitor` once per row with the cells of
    /// `projection`, in projection order.
    ///
    /// The cell slice passed to the visitor is only valid for the duration of
    /// the call (implementations reuse an internal buffer).
    fn scan_range(
        &self,
        projection: &[ColumnId],
        range: Range<usize>,
        visitor: &mut dyn FnMut(&[Cell]),
    );

    /// Scans rows `range` in fixed-size [`Batch`]es of up to `batch_size`
    /// rows, invoking `visitor` once per batch with typed per-column slices
    /// (see [`crate::batch`]).
    ///
    /// The default implementation materializes each batch through
    /// [`Table::scan_range`], which is correct for any layout; the column
    /// store overrides it to serve numeric and categorical columns
    /// zero-copy. Batches and their slices are only valid for the duration
    /// of the visitor call.
    fn scan_batches(
        &self,
        projection: &[ColumnId],
        range: Range<usize>,
        batch_size: usize,
        visitor: &mut dyn FnMut(&Batch<'_>),
    ) {
        let batch_size = batch_size.max(1);
        let start = range.start.min(self.num_rows());
        let end = range.end.min(self.num_rows());
        let schema = self.schema();
        let mut staging: Vec<Staging> = projection
            .iter()
            .map(|c| Staging::for_type(schema.column(*c).ty))
            .collect();
        let mut validity: Vec<Vec<bool>> = vec![Vec::new(); projection.len()];
        let mut has_null: Vec<bool> = vec![false; projection.len()];

        let mut lo = start;
        while lo < end {
            let hi = (lo + batch_size).min(end);
            for (slot, s) in staging.iter_mut().enumerate() {
                s.clear();
                validity[slot].clear();
                has_null[slot] = false;
            }
            self.scan_range(projection, lo..hi, &mut |cells| {
                for (slot, cell) in cells.iter().enumerate() {
                    staging[slot].push(*cell);
                    validity[slot].push(!cell.is_null());
                    has_null[slot] |= cell.is_null();
                }
            });
            let columns: Vec<BatchColumn<'_>> = staging
                .iter()
                .enumerate()
                .map(|(slot, s)| BatchColumn {
                    data: s.as_data(),
                    validity: has_null[slot].then_some(validity[slot].as_slice()),
                })
                .collect();
            visitor(&Batch::new(lo, hi - lo, columns));
            lo = hi;
        }
    }

    /// Distinct non-NULL value count of a column, `|a_i|` in the paper.
    /// Never returns 0 (empty columns report 1) so that bin-packing weights
    /// `log2(|a_i|)` stay finite.
    fn distinct_count(&self, col: ColumnId) -> usize {
        self.stats(col).distinct.max(1)
    }

    /// Human-readable label for a cell of column `col` (dictionary decoding
    /// for categoricals, plain formatting otherwise).
    fn cell_label(&self, col: ColumnId, cell: Cell) -> String {
        match cell {
            Cell::Null => "NULL".to_owned(),
            Cell::Cat(code) => self
                .dictionary(col)
                .and_then(|d| d.label(code))
                .map(str::to_owned)
                .unwrap_or_else(|| format!("cat#{code}")),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format!("{v}"),
            Cell::Bool(b) => b.to_string(),
        }
    }
}

/// Table-level summary of one column, used by the planner's cost model.
///
/// Folded from the sealed per-partition [`crate::ColumnZone`]s when the
/// table carries a partition directory; tables without partitions fall back
/// to the build-time [`ColumnStats`]. `dictionary_size` is the exact
/// decision input for dense-vs-hash group indexing (zone maps only see
/// per-partition distinct counts, which under-count the table-wide domain).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Distinct non-NULL values table-wide (build-time exact count).
    pub distinct: usize,
    /// NULL rows table-wide.
    pub null_count: usize,
    /// Minimum of the column's numeric view (`None` when all-NULL/NaN).
    pub min: Option<f64>,
    /// Maximum of the column's numeric view.
    pub max: Option<f64>,
    /// Dictionary cardinality for categorical columns, `None` otherwise.
    pub dictionary_size: Option<usize>,
}

/// Compact statistical summary of a whole table, aggregated from its
/// sealed partition zone maps (see [`Table::table_stats`]). This is the
/// cost-model input: the planner reads it instead of re-scanning data.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Total rows.
    pub rows: usize,
    /// Number of sealed partitions (0 when the table has no directory).
    pub partitions: usize,
    /// Rows in the largest partition (= `rows` when unpartitioned).
    pub max_partition_rows: usize,
    /// One summary per schema column, in ordinal order.
    pub columns: Vec<ColumnSummary>,
}

impl TableStats {
    /// Summary of column `col`. Panics if out of range.
    pub fn column(&self, col: ColumnId) -> &ColumnSummary {
        &self.columns[col.index()]
    }
}

impl dyn Table + '_ {
    /// Builds the table's [`TableStats`] by folding its sealed partition
    /// zone maps: per column, NULL counts sum and min/max intervals union
    /// across partitions. Distinct counts come from the build-time
    /// [`ColumnStats`] (exact table-wide; per-partition distincts cannot be
    /// unioned), as do all three when the table has no partition directory.
    pub fn table_stats(&self) -> TableStats {
        let schema = self.schema();
        let parts = self.partitions();
        let columns = (0..schema.len())
            .map(|i| {
                let col = ColumnId(i as u32);
                let dictionary_size = self.dictionary(col).map(|d| d.len());
                let distinct = self.distinct_count(col);
                if parts.is_empty() {
                    let s = self.stats(col);
                    return ColumnSummary {
                        distinct,
                        null_count: s.null_count,
                        min: s.min,
                        max: s.max,
                        dictionary_size,
                    };
                }
                let mut null_count = 0usize;
                let mut min: Option<f64> = None;
                let mut max: Option<f64> = None;
                for p in parts {
                    if let Some(z) = p.zone(col) {
                        null_count += z.null_count;
                        min = match (min, z.min) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        max = match (max, z.max) {
                            (Some(a), Some(b)) => Some(a.max(b)),
                            (a, b) => a.or(b),
                        };
                    }
                }
                ColumnSummary {
                    distinct,
                    null_count,
                    min,
                    max,
                    dictionary_size,
                }
            })
            .collect();
        TableStats {
            rows: self.num_rows(),
            partitions: parts.len(),
            max_partition_rows: parts
                .iter()
                .map(Partition::len)
                .max()
                .unwrap_or_else(|| self.num_rows()),
            columns,
        }
    }
}

/// Shared, dynamically-typed table handle.
pub type BoxedTable = Arc<dyn Table>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_kind_labels_match_paper() {
        assert_eq!(StoreKind::Row.label(), "ROW");
        assert_eq!(StoreKind::Column.label(), "COL");
        assert_eq!(StoreKind::Row.to_string(), "ROW");
    }

    #[test]
    fn table_stats_fold_zones_across_partitions() {
        use crate::builder::TableBuilder;
        use crate::schema::ColumnDef;
        use crate::value::Value;

        let mut b = TableBuilder::new(vec![ColumnDef::dim("d"), ColumnDef::measure("m")])
            .with_partition_rows(4);
        for i in 0..10 {
            b.push_row(&[
                Value::str(format!("v{}", i % 3)),
                if i == 5 {
                    Value::Null
                } else {
                    Value::Float(i as f64)
                },
            ])
            .unwrap();
        }
        let t = b.build(StoreKind::Column).unwrap();
        let stats = t.as_ref().table_stats();
        assert_eq!(stats.rows, 10);
        assert_eq!(stats.partitions, 3); // 4 + 4 + 2
        assert_eq!(stats.max_partition_rows, 4);
        let d = stats.column(ColumnId(0));
        assert_eq!(d.distinct, 3);
        assert_eq!(d.dictionary_size, Some(3));
        let m = stats.column(ColumnId(1));
        assert_eq!(m.null_count, 1);
        assert_eq!(m.min, Some(0.0));
        assert_eq!(m.max, Some(9.0));
        assert_eq!(m.dictionary_size, None);
    }

    #[test]
    fn table_stats_without_partitions_use_build_time_stats() {
        use crate::builder::TableBuilder;
        use crate::schema::ColumnDef;
        use crate::value::Value;

        // Default partition size far exceeds the row count, so the table
        // still has a (single-partition) directory; exercise the no-parts
        // fallback through a minimal hand-rolled Table instead.
        let mut b = TableBuilder::new(vec![ColumnDef::dim("d"), ColumnDef::measure("m")]);
        b.push_row(&[Value::str("a"), Value::Float(2.5)]).unwrap();
        b.push_row(&[Value::str("b"), Value::Float(7.5)]).unwrap();
        let t = b.build(StoreKind::Row).unwrap();
        let stats = t.as_ref().table_stats();
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.column(ColumnId(1)).min, Some(2.5));
        assert_eq!(stats.column(ColumnId(1)).max, Some(7.5));
        assert!(stats.max_partition_rows >= 2);
    }
}
