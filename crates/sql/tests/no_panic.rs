//! Fuzz-ish property tests: no input — random bytes or adversarial token
//! soup — may panic the SQL front-end. `seedbd` feeds raw HTTP request
//! bodies through `lex → parse → plan`, so a reachable panic here is a
//! remote crash of the daemon. Every function must return `Ok` or a
//! positioned `SqlError`, never unwind (and never abort via stack
//! overflow — nesting is depth-capped).

use proptest::prelude::*;
use seedb_sql::lexer::lex;
use seedb_sql::parser::{parse_expr, parse_query};
use seedb_sql::Planner;
use seedb_storage::{
    BoxedTable, ColumnDef, ColumnRole, ColumnType, StoreKind, TableBuilder, Value,
};

/// A small schema covering every column type the planner branches on.
fn table() -> BoxedTable {
    let mut b = TableBuilder::new(vec![
        ColumnDef::dim("sex"),
        ColumnDef::dim("marital"),
        ColumnDef::measure("gain"),
        ColumnDef::new("age", ColumnType::Int64, ColumnRole::Measure),
        ColumnDef::new("citizen", ColumnType::Bool, ColumnRole::Dimension),
    ]);
    for (s, m, g, a, c) in [
        ("F", "unmarried", 500.0, 30, true),
        ("M", "married", 700.0, 50, false),
    ] {
        b.push_row(&[
            Value::str(s),
            Value::str(m),
            Value::Float(g),
            Value::Int(a),
            Value::Bool(c),
        ])
        .unwrap();
    }
    b.build(StoreKind::Column).unwrap()
}

/// Runs one input through every user-reachable entry point. The results
/// are ignored — only reaching the end without unwinding matters.
fn exercise(table: &BoxedTable, src: &str) {
    let _ = lex(src);
    let _ = parse_query(src);
    if let Ok(expr) = parse_expr(src) {
        let _ = Planner::new(table.as_ref()).plan_predicate(&expr);
        // The printer is part of the error-reporting path.
        let _ = expr.to_string();
    }
    if let Ok(query) = parse_query(src) {
        let _ = Planner::new(table.as_ref()).plan(&query);
        let _ = query.to_string();
    }
}

/// Fragments that compose into near-miss SQL: real keywords, operators,
/// schema column names, literals, and junk — far more likely to reach
/// deep parser/planner states than uniform noise.
const FRAGMENTS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "AND",
    "OR",
    "NOT",
    "IN",
    "IS",
    "NULL",
    "TRUE",
    "FALSE",
    "AVG",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "(",
    ")",
    ",",
    "*",
    ";",
    "=",
    "<>",
    "!=",
    "<",
    "<=",
    ">",
    ">=",
    "sex",
    "marital",
    "gain",
    "age",
    "citizen",
    "ghost",
    "t",
    "'F'",
    "'x''y'",
    "''",
    "'unterminated",
    "0",
    "1",
    "-7",
    "3.25",
    "1e3",
    "1e999",
    "9999999999999999999999",
    "-",
    ".",
    "!",
    "@",
    "_id",
    "é",
];

fn arb_token_soup() -> impl Strategy<Value = String> {
    prop::collection::vec((0usize..FRAGMENTS.len(), any::<bool>()), 0..40).prop_map(|picks| {
        let mut out = String::new();
        for (idx, space) in picks {
            out.push_str(FRAGMENTS[idx]);
            if space {
                out.push(' ');
            }
        }
        out
    })
}

fn arb_raw_bytes() -> impl Strategy<Value = String> {
    prop::collection::vec(0u16..256, 0..120).prop_map(|words| {
        let bytes: Vec<u8> = words.into_iter().map(|w| w as u8).collect();
        String::from_utf8_lossy(&bytes).into_owned()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn token_soup_never_panics(src in arb_token_soup()) {
        let t = table();
        exercise(&t, &src);
    }

    #[test]
    fn raw_bytes_never_panic(src in arb_raw_bytes()) {
        let t = table();
        exercise(&t, &src);
    }
}

#[test]
fn adversarial_regressions_never_panic() {
    let t = table();
    for src in [
        // Stack-depth attacks (would abort, not unwind, without the cap).
        &format!("{}x = 1{}", "(".repeat(200_000), ")".repeat(200_000)),
        &format!("{}TRUE", "NOT ".repeat(200_000)),
        &format!("SELECT * FROM t WHERE {}", "(".repeat(50_000)),
        // Numeric edges.
        "age = 99999999999999999999999999",
        "gain = 1e99999",
        "gain = -1e-99999",
        // Type confusion against every column type.
        "citizen IN (TRUE)",
        "sex IN (1, 2)",
        "marital < 'a'",
        "gain = NULL",
        // Truncations at every clause boundary.
        "SELECT",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t GROUP",
        "SELECT a FROM t GROUP BY",
        "SELECT AVG( FROM t",
        // Unicode in and out of strings.
        "sex = '日本語'",
        "日本語 = 1",
        "sex = '\u{0}'",
    ] {
        exercise(&t, src);
    }
}
