//! SQL tokenizer.
//!
//! Produces a flat token stream with byte offsets (used for caret
//! diagnostics). Keywords are case-insensitive; identifiers preserve case.

use crate::error::SqlError;

/// Kinds of tokens the parser consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased spelling): SELECT, FROM, WHERE, GROUP, BY, AND,
    /// OR, NOT, IN, IS, NULL, TRUE, FALSE, AS, CASE, WHEN, THEN, ELSE, END.
    Keyword(String),
    /// Identifier (column/table name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation / operators: `( ) , * = <> != < <= > >= ;`
    Symbol(&'static str),
    /// End of input.
    Eof,
}

/// A token plus its starting byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub pos: usize,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AND", "OR", "NOT", "IN", "IS", "NULL", "TRUE",
    "FALSE", "AS", "CASE", "WHEN", "THEN", "ELSE", "END",
];

/// Tokenizes `src` into a vector ending with [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '(' | ')' | ',' | '*' | ';' => {
                let sym = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    _ => ";",
                };
                tokens.push(Token {
                    kind: TokenKind::Symbol(sym),
                    pos: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Symbol("="),
                    pos: start,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Symbol("<>"),
                        pos: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Symbol("<="),
                        pos: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Symbol("<"),
                        pos: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Symbol(">="),
                        pos: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Symbol(">"),
                        pos: start,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Symbol("!="),
                        pos: start,
                    });
                    i += 2;
                } else {
                    return Err(SqlError::new(start, "unexpected '!'"));
                }
            }
            '\'' => {
                // String literal with '' escaping. Content is consumed one
                // UTF-8 scalar at a time so multi-byte labels survive
                // intact (byte-wise `as char` would mangle them).
                let mut out = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::new(start, "unterminated string literal")),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                out.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            let ch = src[i..]
                                .chars()
                                .next()
                                .ok_or_else(|| SqlError::new(i, "invalid UTF-8 in string"))?;
                            out.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(out),
                    pos: start,
                });
            }
            _ if c.is_ascii_digit()
                || (c == '-'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())) =>
            {
                let mut j = i + 1;
                let mut is_float = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !is_float {
                        is_float = true;
                        j += 1;
                    } else if (d == 'e' || d == 'E')
                        && bytes.get(j + 1).is_some_and(|b| {
                            (*b as char).is_ascii_digit() || *b == b'-' || *b == b'+'
                        })
                    {
                        is_float = true;
                        j += 2;
                    } else {
                        break;
                    }
                }
                let text = &src[i..j];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| SqlError::new(start, format!("bad float '{text}'")))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| SqlError::new(start, format!("bad integer '{text}'")))?,
                    )
                };
                tokens.push(Token { kind, pos: start });
                i = j;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[i..j];
                let upper = word.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(word.to_owned())
                };
                tokens.push(Token { kind, pos: start });
                i = j;
            }
            other => {
                return Err(SqlError::new(
                    start,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: src.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_select() {
        let k = kinds("SELECT a, AVG(m) FROM t");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Symbol(","),
                TokenKind::Ident("AVG".into()),
                TokenKind::Symbol("("),
                TokenKind::Ident("m".into()),
                TokenKind::Symbol(")"),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive_idents_preserved() {
        let k = kinds("select MyCol from T");
        assert_eq!(k[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(k[1], TokenKind::Ident("MyCol".into()));
        assert_eq!(k[2], TokenKind::Keyword("FROM".into()));
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("-7")[0], TokenKind::Int(-7));
        assert_eq!(kinds("3.25")[0], TokenKind::Float(3.25));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-2")[0], TokenKind::Float(0.025));
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(kinds("'hello'")[0], TokenKind::Str("hello".into()));
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
        assert_eq!(kinds("''")[0], TokenKind::Str(String::new()));
    }

    #[test]
    fn comparison_operators() {
        let k = kinds("= <> != < <= > >=");
        let syms: Vec<_> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["=", "<>", "!=", "<", "<=", ">", ">="]);
    }

    #[test]
    fn multibyte_string_content_survives() {
        assert_eq!(kinds("'café'")[0], TokenKind::Str("café".into()));
        assert_eq!(kinds("'日本語'")[0], TokenKind::Str("日本語".into()));
    }

    #[test]
    fn multibyte_outside_strings_is_a_clean_error() {
        let err = lex("a = é").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = lex("'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.pos, 0);
    }

    #[test]
    fn unexpected_character_reports_position() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.pos, 2);
    }

    #[test]
    fn positions_track_byte_offsets() {
        let toks = lex("SELECT a").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 7);
    }

    #[test]
    fn eof_token_always_present() {
        let toks = lex("").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Eof);
    }
}
