//! Positioned SQL errors with caret rendering.

use std::fmt;

/// An error raised while lexing, parsing, or planning SQL.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    /// Byte offset into the source text where the error was detected.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl SqlError {
    /// Creates an error at `pos`.
    pub fn new(pos: usize, message: impl Into<String>) -> Self {
        SqlError {
            pos,
            message: message.into(),
        }
    }

    /// Renders the error with the offending source line and a caret, e.g.
    ///
    /// ```text
    /// error: expected FROM
    ///   SELECT x WHERE y
    ///            ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let pos = self.pos.min(source.len());
        let line_start = source[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = source[pos..]
            .find('\n')
            .map(|i| pos + i)
            .unwrap_or(source.len());
        let line = &source[line_start..line_end];
        let col = source[line_start..pos].chars().count();
        format!(
            "error: {}\n  {}\n  {}^",
            self.message,
            line,
            " ".repeat(col)
        )
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.pos)
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_offending_column() {
        let src = "SELECT x FRM t";
        let err = SqlError::new(9, "expected FROM");
        let rendered = err.render(src);
        assert!(rendered.contains("expected FROM"));
        assert!(rendered.contains("SELECT x FRM t"));
        // Caret under column 9, after the 2-space indent both lines share.
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(caret_line, format!("  {}^", " ".repeat(9)));
    }

    #[test]
    fn render_handles_out_of_range_pos() {
        let err = SqlError::new(999, "eof");
        let rendered = err.render("short");
        assert!(rendered.contains("eof"));
    }

    #[test]
    fn render_multiline_source() {
        let src = "SELECT x\nFROM\nWHERE";
        let err = SqlError::new(14, "expected table name");
        let rendered = err.render(src);
        assert!(rendered.contains("WHERE"));
    }

    #[test]
    fn display_includes_position() {
        let err = SqlError::new(3, "boom");
        assert!(err.to_string().contains("byte 3"));
    }
}
