//! Binding parsed queries against a table schema.
//!
//! The planner lowers AST expressions into engine
//! [`Predicate`]s (resolving string literals through per-column
//! dictionaries) and aggregate select lists into engine
//! [`CombinedQuery`]s. This is the layer at which SeeDB's generated view
//! queries become executable plans.

use crate::ast::{Expr, Literal, Query, SelectItem};
use crate::error::SqlError;
use seedb_engine::{AggFunc, AggSpec, CmpOp, CombinedQuery, Predicate, SplitSpec};
use seedb_storage::{ColumnId, ColumnType, Table};

/// A validated, schema-bound aggregate query.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// Grouping columns (resolved).
    pub group_by: Vec<ColumnId>,
    /// Aggregates (resolved).
    pub aggregates: Vec<AggSpec>,
    /// Bare (non-aggregate) select columns.
    pub projection: Vec<ColumnId>,
    /// Lowered WHERE clause.
    pub filter: Option<Predicate>,
}

impl PlannedQuery {
    /// Converts into an engine query with a plain `TargetOnly` split (the
    /// form the unoptimized baseline issues).
    pub fn into_combined(self) -> CombinedQuery {
        CombinedQuery {
            group_by: self.group_by,
            aggregates: self.aggregates,
            filter: None,
            split: SplitSpec::TargetOnly(self.filter.unwrap_or(Predicate::True)),
        }
    }
}

/// Schema-aware lowering of parsed SQL.
pub struct Planner<'a> {
    table: &'a dyn Table,
}

impl<'a> Planner<'a> {
    /// Creates a planner over `table`'s schema and dictionaries.
    pub fn new(table: &'a dyn Table) -> Self {
        Planner { table }
    }

    /// Plans a full `SELECT` statement.
    ///
    /// Enforces the SQL aggregation rule: when any aggregate appears in the
    /// select list, every bare select column must also appear in `GROUP BY`.
    pub fn plan(&self, q: &Query) -> Result<PlannedQuery, SqlError> {
        let schema = self.table.schema();
        let mut group_by = Vec::new();
        for name in &q.group_by {
            group_by.push(
                schema
                    .column_id(name)
                    .ok_or_else(|| SqlError::new(0, format!("unknown column '{name}'")))?,
            );
        }

        let mut aggregates = Vec::new();
        let mut projection = Vec::new();
        for item in &q.select {
            match item {
                SelectItem::Star => {
                    for (id, _) in schema.iter() {
                        projection.push(id);
                    }
                }
                SelectItem::Column(name) => {
                    let id = schema
                        .column_id(name)
                        .ok_or_else(|| SqlError::new(0, format!("unknown column '{name}'")))?;
                    projection.push(id);
                }
                SelectItem::Aggregate { func, arg } => {
                    let id = schema
                        .column_id(arg)
                        .ok_or_else(|| SqlError::new(0, format!("unknown column '{arg}'")))?;
                    let ty = schema.column(id).ty;
                    let numeric = matches!(ty, ColumnType::Int64 | ColumnType::Float64);
                    if !numeric && *func != AggFunc::Count {
                        return Err(SqlError::new(
                            0,
                            format!("{func} requires a numeric column, '{arg}' is {ty}"),
                        ));
                    }
                    aggregates.push(AggSpec::new(*func, id));
                }
            }
        }

        if !aggregates.is_empty() {
            for &col in &projection {
                if !group_by.contains(&col) {
                    return Err(SqlError::new(
                        0,
                        format!(
                            "column '{}' must appear in GROUP BY or an aggregate",
                            schema.column(col).name
                        ),
                    ));
                }
            }
        }

        let filter = q
            .where_clause
            .as_ref()
            .map(|e| self.plan_predicate(e))
            .transpose()?;

        Ok(PlannedQuery {
            group_by,
            aggregates,
            projection,
            filter,
        })
    }

    /// Lowers a boolean expression to an engine predicate.
    pub fn plan_predicate(&self, e: &Expr) -> Result<Predicate, SqlError> {
        let schema = self.table.schema();
        match e {
            Expr::BoolLit(true) => Ok(Predicate::True),
            Expr::BoolLit(false) => Ok(Predicate::False),
            Expr::Not(inner) => Ok(self.plan_predicate(inner)?.negate()),
            Expr::And(parts) => Ok(Predicate::And(
                parts
                    .iter()
                    .map(|p| self.plan_predicate(p))
                    .collect::<Result<_, _>>()?,
            )),
            Expr::Or(parts) => Ok(Predicate::Or(
                parts
                    .iter()
                    .map(|p| self.plan_predicate(p))
                    .collect::<Result<_, _>>()?,
            )),
            Expr::IsNull { col, negated } => {
                let id = schema
                    .column_id(col)
                    .ok_or_else(|| SqlError::new(0, format!("unknown column '{col}'")))?;
                let p = Predicate::IsNull { col: id };
                Ok(if *negated { p.negate() } else { p })
            }
            Expr::In { col, list } => {
                let id = schema
                    .column_id(col)
                    .ok_or_else(|| SqlError::new(0, format!("unknown column '{col}'")))?;
                match schema.column(id).ty {
                    ColumnType::Categorical => {
                        let dict = self.table.dictionary(id).ok_or_else(|| {
                            SqlError::new(0, format!("no dictionary for categorical '{col}'"))
                        })?;
                        let mut codes = Vec::new();
                        for lit in list {
                            match lit {
                                Literal::Str(s) => {
                                    if let Some(code) = dict.code(s) {
                                        codes.push(code);
                                    }
                                    // Unknown labels match nothing: skip.
                                }
                                other => {
                                    return Err(SqlError::new(
                                        0,
                                        format!("IN list for '{col}' expects strings, got {other}"),
                                    ))
                                }
                            }
                        }
                        if codes.is_empty() {
                            Ok(Predicate::False)
                        } else {
                            Ok(Predicate::CatIn { col: id, codes })
                        }
                    }
                    ColumnType::Int64 | ColumnType::Float64 => {
                        let mut arms = Vec::new();
                        for lit in list {
                            let v = numeric_literal(col, lit)?;
                            arms.push(Predicate::NumCmp {
                                col: id,
                                op: CmpOp::Eq,
                                value: v,
                            });
                        }
                        Ok(Predicate::Or(arms))
                    }
                    ColumnType::Bool => Err(SqlError::new(
                        0,
                        format!("IN is not supported for boolean column '{col}'"),
                    )),
                }
            }
            Expr::Cmp { col, op, lit } => {
                let id = schema
                    .column_id(col)
                    .ok_or_else(|| SqlError::new(0, format!("unknown column '{col}'")))?;
                if matches!(lit, Literal::Null) {
                    return Err(SqlError::new(
                        0,
                        format!("comparison with NULL is always false; use '{col} IS NULL'"),
                    ));
                }
                match schema.column(id).ty {
                    ColumnType::Categorical => {
                        let s = match lit {
                            Literal::Str(s) => s,
                            other => {
                                return Err(SqlError::new(
                                    0,
                                    format!("'{col}' is categorical, expected string, got {other}"),
                                ))
                            }
                        };
                        if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
                            return Err(SqlError::new(
                                0,
                                format!("only = and <> are supported for categorical '{col}'"),
                            ));
                        }
                        let dict = self.table.dictionary(id).ok_or_else(|| {
                            SqlError::new(0, format!("no dictionary for categorical '{col}'"))
                        })?;
                        let base = match dict.code(s) {
                            Some(code) => Predicate::CatEq { col: id, code },
                            None => Predicate::False,
                        };
                        Ok(if *op == CmpOp::Ne {
                            base.negate()
                        } else {
                            base
                        })
                    }
                    ColumnType::Bool => {
                        let b = match lit {
                            Literal::Bool(b) => *b,
                            other => {
                                return Err(SqlError::new(
                                    0,
                                    format!("'{col}' is boolean, got {other}"),
                                ))
                            }
                        };
                        if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
                            return Err(SqlError::new(
                                0,
                                format!("only = and <> are supported for boolean '{col}'"),
                            ));
                        }
                        let base = Predicate::BoolEq { col: id, value: b };
                        Ok(if *op == CmpOp::Ne {
                            base.negate()
                        } else {
                            base
                        })
                    }
                    ColumnType::Int64 | ColumnType::Float64 => {
                        let v = numeric_literal(col, lit)?;
                        Ok(Predicate::NumCmp {
                            col: id,
                            op: *op,
                            value: v,
                        })
                    }
                }
            }
        }
    }
}

fn numeric_literal(col: &str, lit: &Literal) -> Result<f64, SqlError> {
    match lit {
        Literal::Int(v) => Ok(*v as f64),
        Literal::Float(v) => Ok(*v),
        other => Err(SqlError::new(
            0,
            format!("'{col}' is numeric, expected number, got {other}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_query};
    use seedb_engine::{execute_combined, ExecStats};
    use seedb_storage::{BoxedTable, ColumnDef, ColumnRole, StoreKind, TableBuilder, Value};

    fn census() -> BoxedTable {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("sex"),
            ColumnDef::dim("marital"),
            ColumnDef::measure("gain"),
            ColumnDef::new("age", ColumnType::Int64, ColumnRole::Measure),
            ColumnDef::new("citizen", ColumnType::Bool, ColumnRole::Dimension),
        ]);
        let rows: [(&str, &str, f64, i64, bool); 4] = [
            ("F", "unmarried", 500.0, 30, true),
            ("M", "unmarried", 480.0, 32, false),
            ("F", "married", 300.0, 45, true),
            ("M", "married", 700.0, 50, true),
        ];
        for (s, m, g, a, c) in rows {
            b.push_row(&[
                Value::str(s),
                Value::str(m),
                Value::Float(g),
                Value::Int(a),
                Value::Bool(c),
            ])
            .unwrap();
        }
        b.build(StoreKind::Column).unwrap()
    }

    fn plan_pred(src: &str) -> Result<Predicate, SqlError> {
        let t = census();
        let e = parse_expr(src).unwrap();
        Planner::new(t.as_ref()).plan_predicate(&e)
    }

    #[test]
    fn plans_full_view_query_and_executes() {
        let t = census();
        let q = parse_query(
            "SELECT sex, AVG(gain) FROM census WHERE marital = 'unmarried' GROUP BY sex",
        )
        .unwrap();
        let planned = Planner::new(t.as_ref()).plan(&q).unwrap();
        assert_eq!(planned.group_by, vec![ColumnId(0)]);
        assert_eq!(
            planned.aggregates,
            vec![AggSpec::new(AggFunc::Avg, ColumnId(2))]
        );
        let combined = planned.into_combined();
        let r = execute_combined(t.as_ref(), &combined, &mut ExecStats::new());
        let (target, _) = r.value_vectors(0);
        assert_eq!(target, vec![500.0, 480.0]);
    }

    #[test]
    fn categorical_equality_resolves_dictionary_code() {
        let p = plan_pred("marital = 'married'").unwrap();
        assert_eq!(
            p,
            Predicate::CatEq {
                col: ColumnId(1),
                code: 1
            }
        );
        // Unknown label collapses to False.
        assert_eq!(plan_pred("marital = 'widowed'").unwrap(), Predicate::False);
        // <> of an unknown label is True (matches every row).
        assert_eq!(plan_pred("marital <> 'widowed'").unwrap(), Predicate::True);
    }

    #[test]
    fn numeric_and_boolean_comparisons() {
        assert_eq!(
            plan_pred("age >= 40").unwrap(),
            Predicate::NumCmp {
                col: ColumnId(3),
                op: CmpOp::Ge,
                value: 40.0
            }
        );
        assert_eq!(
            plan_pred("gain < 400.5").unwrap(),
            Predicate::NumCmp {
                col: ColumnId(2),
                op: CmpOp::Lt,
                value: 400.5
            }
        );
        assert_eq!(
            plan_pred("citizen = TRUE").unwrap(),
            Predicate::BoolEq {
                col: ColumnId(4),
                value: true
            }
        );
    }

    #[test]
    fn in_list_lowering() {
        assert_eq!(
            plan_pred("sex IN ('F', 'M', 'X')").unwrap(),
            Predicate::CatIn {
                col: ColumnId(0),
                codes: vec![0, 1]
            }
        );
        assert_eq!(plan_pred("sex IN ('Q')").unwrap(), Predicate::False);
        assert!(matches!(plan_pred("age IN (30, 32)").unwrap(), Predicate::Or(v) if v.len() == 2));
    }

    #[test]
    fn is_null_lowering() {
        assert_eq!(
            plan_pred("gain IS NULL").unwrap(),
            Predicate::IsNull { col: ColumnId(2) }
        );
        assert!(matches!(
            plan_pred("gain IS NOT NULL").unwrap(),
            Predicate::Not(_)
        ));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(plan_pred("marital = 3").is_err());
        assert!(plan_pred("age = 'old'").is_err());
        assert!(plan_pred("citizen = 'yes'").is_err());
        assert!(plan_pred("marital < 'a'").is_err());
        assert!(plan_pred("gain = NULL")
            .unwrap_err()
            .message
            .contains("IS NULL"));
        assert!(plan_pred("ghost = 1")
            .unwrap_err()
            .message
            .contains("ghost"));
    }

    #[test]
    fn aggregation_rule_enforced() {
        let t = census();
        let q = parse_query("SELECT marital, AVG(gain) FROM c GROUP BY sex").unwrap();
        let err = Planner::new(t.as_ref()).plan(&q).unwrap_err();
        assert!(err.message.contains("GROUP BY"));
    }

    #[test]
    fn aggregate_type_checking() {
        let t = census();
        let q = parse_query("SELECT sex, AVG(marital) FROM c GROUP BY sex").unwrap();
        assert!(Planner::new(t.as_ref()).plan(&q).is_err());
        // COUNT works on any column.
        let q = parse_query("SELECT sex, COUNT(marital) FROM c GROUP BY sex").unwrap();
        assert!(Planner::new(t.as_ref()).plan(&q).is_ok());
    }

    #[test]
    fn star_projection_expands_schema() {
        let t = census();
        let q = parse_query("SELECT * FROM c").unwrap();
        let planned = Planner::new(t.as_ref()).plan(&q).unwrap();
        assert_eq!(planned.projection.len(), 5);
        assert!(planned.aggregates.is_empty());
    }

    #[test]
    fn complex_where_executes_correctly() {
        let t = census();
        let q = parse_query(
            "SELECT marital, COUNT(gain) FROM c \
             WHERE (age >= 40 OR sex = 'F') AND citizen = TRUE GROUP BY marital",
        )
        .unwrap();
        let planned = Planner::new(t.as_ref()).plan(&q).unwrap();
        let r = execute_combined(t.as_ref(), &planned.into_combined(), &mut ExecStats::new());
        // Matching rows: (F,unmarried,30,T), (F,married,45,T), (M,married,50,T)
        let (counts, _) = r.value_vectors(0);
        assert_eq!(counts, vec![1.0, 2.0]); // unmarried=1, married=2
    }
}
