//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query    := SELECT items FROM ident [WHERE expr] [GROUP BY idents] [';']
//! items    := '*' | item (',' item)*
//! item     := ident | func '(' ident ')'
//! expr     := or
//! or       := and (OR and)*
//! and      := not (AND not)*
//! not      := NOT not | primary
//! primary  := '(' expr ')' | TRUE | FALSE
//!           | ident cmp literal
//!           | ident IN '(' literal (',' literal)* ')'
//!           | ident IS [NOT] NULL
//! cmp      := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//! literal  := int | float | string | TRUE | FALSE | NULL
//! ```

use crate::ast::{Expr, Literal, Query, SelectItem};
use crate::error::SqlError;
use crate::lexer::{lex, Token, TokenKind};
use seedb_engine::CmpOp;

/// Parses a single `SELECT` statement.
pub fn parse_query(src: &str) -> Result<Query, SqlError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parses a standalone boolean expression (a bare `WHERE` body) — used by
/// the interactive front-ends to parse user filters.
pub fn parse_expr(src: &str) -> Result<Expr, SqlError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Maximum boolean-expression nesting (parentheses and `NOT` chains).
/// The parser and the planner both recurse over the AST, so unbounded
/// nesting from untrusted input (a network request body) would overflow
/// the stack — an abort, not a catchable error. 128 levels is far beyond
/// any real filter.
const MAX_EXPR_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        self.pos += 1;
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> SqlError {
        SqlError::new(self.peek().pos, msg)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Keyword(k) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {kw}")))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Symbol(s) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), SqlError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected '{sym}'")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, SqlError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.err_here("expected identifier")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        // Allow a trailing semicolon.
        self.eat_symbol(";");
        if matches!(self.peek().kind, TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err_here("unexpected trailing input"))
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        self.expect_keyword("SELECT")?;
        let select = self.select_items()?;
        self.expect_keyword("FROM")?;
        let from = self.expect_ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expect_ident()?);
            while self.eat_symbol(",") {
                group_by.push(self.expect_ident()?);
            }
        }
        Ok(Query {
            select,
            from,
            where_clause,
            group_by,
        })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        if self.eat_symbol("*") {
            return Ok(vec![SelectItem::Star]);
        }
        let mut items = vec![self.select_item()?];
        while self.eat_symbol(",") {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let name = self.expect_ident()?;
        if self.eat_symbol("(") {
            let func = name.parse().map_err(|e: String| self.err_here(e))?;
            let arg = self.expect_ident()?;
            self.expect_symbol(")")?;
            Ok(SelectItem::Aggregate { func, arg })
        } else {
            Ok(SelectItem::Column(name))
        }
    }

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(self.err_here(format!(
                "expression nested deeper than {MAX_EXPR_DEPTH} levels"
            )));
        }
        let e = self.or_expr();
        self.depth -= 1;
        e
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut parts = vec![self.and_expr()?];
        while self.eat_keyword("OR") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.swap_remove(0)
        } else {
            Expr::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut parts = vec![self.not_expr()?];
        while self.eat_keyword("AND") {
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.swap_remove(0)
        } else {
            Expr::And(parts)
        })
    }

    /// `NOT` chains parse iteratively (no parser recursion), but the
    /// resulting AST nesting still counts against [`MAX_EXPR_DEPTH`] —
    /// everything downstream (planner, printer) recurses over it.
    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        let mut negations = 0usize;
        while self.eat_keyword("NOT") {
            negations += 1;
            if self.depth + negations > MAX_EXPR_DEPTH {
                return Err(self.err_here(format!(
                    "expression nested deeper than {MAX_EXPR_DEPTH} levels"
                )));
            }
        }
        let mut e = self.primary()?;
        for _ in 0..negations {
            e = Expr::Not(Box::new(e));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_symbol("(") {
            let e = self.expr()?;
            self.expect_symbol(")")?;
            return Ok(e);
        }
        if self.eat_keyword("TRUE") {
            return Ok(Expr::BoolLit(true));
        }
        if self.eat_keyword("FALSE") {
            return Ok(Expr::BoolLit(false));
        }
        let col = self.expect_ident()?;
        // IN list
        if self.eat_keyword("IN") {
            self.expect_symbol("(")?;
            let mut list = vec![self.literal()?];
            while self.eat_symbol(",") {
                list.push(self.literal()?);
            }
            self.expect_symbol(")")?;
            return Ok(Expr::In { col, list });
        }
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull { col, negated });
        }
        // comparison
        let op = match &self.peek().kind {
            TokenKind::Symbol("=") => CmpOp::Eq,
            TokenKind::Symbol("<>") | TokenKind::Symbol("!=") => CmpOp::Ne,
            TokenKind::Symbol("<") => CmpOp::Lt,
            TokenKind::Symbol("<=") => CmpOp::Le,
            TokenKind::Symbol(">") => CmpOp::Gt,
            TokenKind::Symbol(">=") => CmpOp::Ge,
            _ => return Err(self.err_here("expected comparison operator, IN, or IS")),
        };
        self.advance();
        let lit = self.literal()?;
        Ok(Expr::Cmp { col, op, lit })
    }

    fn literal(&mut self) -> Result<Literal, SqlError> {
        let t = self.advance();
        match t.kind {
            TokenKind::Int(v) => Ok(Literal::Int(v)),
            TokenKind::Float(v) => Ok(Literal::Float(v)),
            TokenKind::Str(s) => Ok(Literal::Str(s)),
            TokenKind::Keyword(k) if k == "TRUE" => Ok(Literal::Bool(true)),
            TokenKind::Keyword(k) if k == "FALSE" => Ok(Literal::Bool(false)),
            TokenKind::Keyword(k) if k == "NULL" => Ok(Literal::Null),
            _ => Err(SqlError::new(t.pos, "expected literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedb_engine::AggFunc;

    #[test]
    fn parses_star_query() {
        let q = parse_query("SELECT * FROM census").unwrap();
        assert_eq!(q.select, vec![SelectItem::Star]);
        assert_eq!(q.from, "census");
        assert!(q.where_clause.is_none());
        assert!(q.group_by.is_empty());
    }

    #[test]
    fn parses_aggregate_view_query() {
        let q = parse_query(
            "SELECT sex, AVG(capital_gain), COUNT(age) FROM census \
             WHERE marital = 'unmarried' GROUP BY sex",
        )
        .unwrap();
        assert_eq!(q.select.len(), 3);
        assert_eq!(
            q.select[1],
            SelectItem::Aggregate {
                func: AggFunc::Avg,
                arg: "capital_gain".into()
            }
        );
        assert_eq!(q.group_by, vec!["sex".to_owned()]);
        assert!(matches!(q.where_clause, Some(Expr::Cmp { .. })));
    }

    #[test]
    fn parses_multi_group_by() {
        let q = parse_query("SELECT a, b, SUM(m) FROM t GROUP BY a, b").unwrap();
        assert_eq!(q.group_by, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn parses_boolean_structure_with_precedence() {
        let q = parse_query("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // AND binds tighter than OR.
        match q.where_clause.unwrap() {
            Expr::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Expr::And(_)));
            }
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn parses_parenthesized_override() {
        let q = parse_query("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        assert!(matches!(q.where_clause.unwrap(), Expr::And(_)));
    }

    #[test]
    fn parses_in_is_null_not() {
        let q =
            parse_query("SELECT * FROM t WHERE x IN ('a', 'b') AND y IS NOT NULL AND NOT z = 3")
                .unwrap();
        match q.where_clause.unwrap() {
            Expr::And(parts) => {
                assert!(matches!(&parts[0], Expr::In { list, .. } if list.len() == 2));
                assert!(matches!(&parts[1], Expr::IsNull { negated: true, .. }));
                assert!(matches!(&parts[2], Expr::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_semicolon_accepted() {
        assert!(parse_query("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn error_positions_are_precise() {
        let err = parse_query("SELECT a FRM t").unwrap_err();
        assert_eq!(err.pos, 9);
        assert!(err.message.contains("FROM"));

        let err = parse_query("SELECT a FROM t WHERE").unwrap_err();
        assert!(err.message.contains("identifier") || err.message.contains("expected"));
    }

    #[test]
    fn unknown_aggregate_function_rejected() {
        let err = parse_query("SELECT MEDIAN(x) FROM t").unwrap_err();
        assert!(err.message.contains("MEDIAN"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_query("SELECT * FROM t GROUP BY a b").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn parse_expr_standalone() {
        let e = parse_expr("age >= 18 AND sex = 'F'").unwrap();
        assert!(matches!(e, Expr::And(_)));
        assert!(parse_expr("age >= ").is_err());
    }

    #[test]
    fn nesting_depth_is_bounded_not_a_stack_overflow() {
        // Parenthesized nesting: 100k opens must error cleanly.
        let deep = format!("{}x = 1{}", "(".repeat(100_000), ")".repeat(100_000));
        let err = parse_expr(&deep).unwrap_err();
        assert!(err.message.contains("nested"), "{}", err.message);
        // NOT chains build AST depth even without parser recursion.
        let nots = format!("{}TRUE", "NOT ".repeat(100_000));
        let err = parse_expr(&nots).unwrap_err();
        assert!(err.message.contains("nested"), "{}", err.message);
        // Reasonable nesting still parses.
        let ok = format!("{}x = 1{}", "(".repeat(50), ")".repeat(50));
        assert!(parse_expr(&ok).is_ok());
        assert!(parse_expr("NOT NOT NOT x = 1").is_ok());
    }

    #[test]
    fn pretty_print_round_trips() {
        let sources = [
            "SELECT * FROM t",
            "SELECT a, AVG(m) FROM t GROUP BY a",
            "SELECT sex, AVG(capital_gain) FROM census WHERE marital = 'unmarried' GROUP BY sex",
            "SELECT * FROM t WHERE (a = 1 OR b = 2) AND NOT c IN (1, 2, 3)",
            "SELECT * FROM t WHERE x IS NOT NULL AND y <= 2.5",
            "SELECT COUNT(m), SUM(m), MIN(m), MAX(m) FROM t GROUP BY a, b, c",
        ];
        for src in sources {
            let q1 = parse_query(src).unwrap();
            let printed = q1.to_string();
            let q2 = parse_query(&printed)
                .unwrap_or_else(|e| panic!("re-parse failed for '{printed}': {e}"));
            assert_eq!(q1, q2, "round trip changed AST for '{src}'");
        }
    }
}
