//! Abstract syntax tree for the SQL subset, with a pretty-printer whose
//! output re-parses to the same AST (property-tested in the parser module).

use seedb_engine::{AggFunc, CmpOp};
use std::fmt;

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// NULL literal.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

/// A boolean expression (`WHERE` clause body).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `col op literal`
    Cmp {
        /// Column name.
        col: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand literal.
        lit: Literal,
    },
    /// `col IN (lit, lit, ...)`
    In {
        /// Column name.
        col: String,
        /// Member literals.
        list: Vec<Literal>,
    },
    /// `col IS NULL` / `col IS NOT NULL`
    IsNull {
        /// Column name.
        col: String,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Conjunction (≥ 2 operands).
    And(Vec<Expr>),
    /// Disjunction (≥ 2 operands).
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `TRUE` / `FALSE`
    BoolLit(bool),
}

impl Expr {
    fn precedence(&self) -> u8 {
        match self {
            Expr::Or(_) => 1,
            Expr::And(_) => 2,
            Expr::Not(_) => 3,
            _ => 4,
        }
    }

    fn fmt_with_parens(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        let prec = self.precedence();
        let need = prec < parent_prec;
        if need {
            write!(f, "(")?;
        }
        match self {
            Expr::Cmp { col, op, lit } => write!(f, "{col} {} {lit}", op.sql())?,
            Expr::In { col, list } => {
                let items: Vec<String> = list.iter().map(Literal::to_string).collect();
                write!(f, "{col} IN ({})", items.join(", "))?;
            }
            Expr::IsNull { col, negated } => {
                write!(f, "{col} IS {}NULL", if *negated { "NOT " } else { "" })?;
            }
            Expr::And(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    p.fmt_with_parens(f, prec + 1)?;
                }
            }
            Expr::Or(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    p.fmt_with_parens(f, prec + 1)?;
                }
            }
            Expr::Not(inner) => {
                write!(f, "NOT ")?;
                inner.fmt_with_parens(f, prec)?;
            }
            Expr::BoolLit(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" })?,
        }
        if need {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with_parens(f, 0)
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// A bare column reference.
    Column(String),
    /// `FUNC(col)`
    Aggregate {
        /// Aggregate function.
        func: AggFunc,
        /// Measure column name.
        arg: String,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => write!(f, "*"),
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Aggregate { func, arg } => write!(f, "{func}({arg})"),
        }
    }
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Select list (≥ 1 item).
    pub select: Vec<SelectItem>,
    /// Table name after `FROM`.
    pub from: String,
    /// Optional `WHERE` clause.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` column names (possibly empty).
    pub group_by: Vec<String>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let items: Vec<String> = self.select.iter().map(SelectItem::to_string).collect();
        write!(f, "SELECT {} FROM {}", items.join(", "), self.from)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", self.group_by.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_display() {
        assert_eq!(Literal::Int(3).to_string(), "3");
        assert_eq!(Literal::Float(2.0).to_string(), "2.0");
        assert_eq!(Literal::Float(2.5).to_string(), "2.5");
        assert_eq!(Literal::Str("a'b".into()).to_string(), "'a''b'");
        assert_eq!(Literal::Bool(true).to_string(), "TRUE");
        assert_eq!(Literal::Null.to_string(), "NULL");
    }

    #[test]
    fn expr_display_inserts_parens_only_when_needed() {
        let cmp = |c: &str| Expr::Cmp {
            col: c.into(),
            op: CmpOp::Eq,
            lit: Literal::Int(1),
        };
        let e = Expr::And(vec![Expr::Or(vec![cmp("a"), cmp("b")]), cmp("c")]);
        assert_eq!(e.to_string(), "(a = 1 OR b = 1) AND c = 1");
        let e = Expr::Or(vec![Expr::And(vec![cmp("a"), cmp("b")]), cmp("c")]);
        assert_eq!(e.to_string(), "a = 1 AND b = 1 OR c = 1");
        let e = Expr::Not(Box::new(Expr::And(vec![cmp("a"), cmp("b")])));
        assert_eq!(e.to_string(), "NOT (a = 1 AND b = 1)");
    }

    #[test]
    fn query_display_full_form() {
        let q = Query {
            select: vec![
                SelectItem::Column("sex".into()),
                SelectItem::Aggregate {
                    func: AggFunc::Avg,
                    arg: "gain".into(),
                },
            ],
            from: "census".into(),
            where_clause: Some(Expr::Cmp {
                col: "marital".into(),
                op: CmpOp::Eq,
                lit: Literal::Str("unmarried".into()),
            }),
            group_by: vec!["sex".into()],
        };
        assert_eq!(
            q.to_string(),
            "SELECT sex, AVG(gain) FROM census WHERE marital = 'unmarried' GROUP BY sex"
        );
    }

    #[test]
    fn query_display_minimal_form() {
        let q = Query {
            select: vec![SelectItem::Star],
            from: "t".into(),
            where_clause: None,
            group_by: vec![],
        };
        assert_eq!(q.to_string(), "SELECT * FROM t");
    }
}
