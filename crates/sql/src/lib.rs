//! # seedb-sql
//!
//! A SQL subset frontend for SeeDB's middleware layer.
//!
//! The paper positions SeeDB as *"a middleware layer that can run on top of
//! any SQL-compliant DBMS"* (§3): the view generator emits SQL view queries,
//! and the sharing optimizer rewrites them. This crate provides the SQL
//! surface of that story for our embedded substrate:
//!
//! * [`lex`](lexer::lex) — tokenizer with byte-offset positions,
//! * [`parse_query`](parser::parse_query) — recursive-descent parser for
//!   `SELECT … FROM … [WHERE …] [GROUP BY …]`,
//! * AST pretty-printing (`Display`) that round-trips through the parser,
//! * [`Planner`] — binds an AST against a table schema, lowering `WHERE`
//!   clauses to engine [`Predicate`](seedb_engine::Predicate)s and aggregate
//!   select lists to engine [`CombinedQuery`](seedb_engine::CombinedQuery)s.
//!
//! ```
//! use seedb_sql::{parse_query, Planner};
//! use seedb_storage::{ColumnDef, StoreKind, TableBuilder, Value};
//!
//! let mut b = TableBuilder::new(vec![
//!     ColumnDef::dim("sex"),
//!     ColumnDef::measure("capital_gain"),
//! ]);
//! b.push_row(&[Value::str("F"), Value::Float(510.0)]).unwrap();
//! let table = b.build(StoreKind::Column).unwrap();
//!
//! let q = parse_query(
//!     "SELECT sex, AVG(capital_gain) FROM census WHERE sex = 'F' GROUP BY sex",
//! ).unwrap();
//! let planned = Planner::new(table.as_ref()).plan(&q).unwrap();
//! assert_eq!(planned.group_by.len(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::{Expr, Literal, Query, SelectItem};
pub use error::SqlError;
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse_query;
pub use planner::{PlannedQuery, Planner};
