//! Property tests: zone-map partition pruning is **exactly** sound.
//!
//! Two properties, checked over random tables (NULLs everywhere, NaN in
//! the float measure), random predicates, every split kind, both store
//! layouts, and partition sizes spanning one-row-per-partition to
//! whole-table:
//!
//! 1. **Direct soundness** — a partition whose zone maps answer `Never`
//!    for a query's contribution predicate really contains no row
//!    satisfying it (pruning never skips a matching row), and a partition
//!    answering `Always` contains no row violating it (so negation stays
//!    exact).
//! 2. **End-to-end bit-identity** — pruned, morsel-parallel execution over
//!    a partitioned table produces results identical under `==` to the
//!    serial scalar oracle over an *unpartitioned* twin of the same data,
//!    accumulator bits and group order included.

use proptest::prelude::*;
use seedb_engine::{
    contribution_predicate, execute_morsels, with_pool, zone_match, AggFunc, AggSpec, CmpOp,
    CombinedQuery, ExecMode, ExecStats, GroupedResult, PartialAggregation, Predicate, ScanShape,
    SplitSpec,
};
use seedb_storage::{
    BoxedTable, Cell, ColumnDef, ColumnId, ColumnRole, ColumnType, StoreKind, TableBuilder, Value,
    ZoneMatch,
};

/// One generated row: `(dim_a, dim_b, bool_dim, float measure, int
/// measure)`; `None` = NULL.
type Row = (Option<u8>, u8, Option<bool>, Option<f64>, Option<i64>);

#[derive(Debug, Clone)]
struct Dataset {
    rows: Vec<Row>,
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (
            prop::option::of(0u8..5),
            0u8..3,
            prop::option::of(any::<bool>()),
            // NaN rides along so the zone maps' NaN bookkeeping is stressed.
            prop::option::of(prop_oneof![
                8 => -100.0f64..100.0,
                1 => Just(f64::NAN),
            ]),
            prop::option::of(-50i64..50),
        ),
        1..250,
    )
    .prop_map(|rows| Dataset { rows })
}

/// Partition sizes from the degenerate (every row its own zone) to the
/// whole table in one zone.
fn arb_partition_rows() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(7usize),
        Just(1024usize),
        Just(usize::MAX),
    ]
}

fn build(ds: &Dataset, kind: StoreKind, partition_rows: usize) -> BoxedTable {
    let mut b = TableBuilder::new(vec![
        ColumnDef::dim("a"),
        ColumnDef::dim("b"),
        ColumnDef::new("flag", ColumnType::Bool, ColumnRole::Dimension),
        ColumnDef::new("m", ColumnType::Float64, ColumnRole::Measure),
        ColumnDef::new("n", ColumnType::Int64, ColumnRole::Measure),
    ])
    .with_partition_rows(partition_rows);
    for (a, bb, flag, m, n) in &ds.rows {
        b.push_row(&[
            a.map(|v| Value::str(format!("a{v}")))
                .unwrap_or(Value::Null),
            Value::str(format!("b{bb}")),
            flag.map(Value::Bool).unwrap_or(Value::Null),
            m.map(Value::Float).unwrap_or(Value::Null),
            n.map(Value::Int).unwrap_or(Value::Null),
        ])
        .unwrap();
    }
    b.build(kind).unwrap()
}

fn arb_leaf() -> BoxedStrategy<Predicate> {
    prop_oneof![
        Just(Predicate::True),
        Just(Predicate::False),
        (0u32..5).prop_map(|code| Predicate::CatEq {
            col: ColumnId(0),
            code,
        }),
        prop::collection::vec(0u32..5, 0..3).prop_map(|codes| Predicate::CatIn {
            col: ColumnId(1),
            codes,
        }),
        any::<bool>().prop_map(|value| Predicate::BoolEq {
            col: ColumnId(2),
            value,
        }),
        (-80.0f64..80.0, 0usize..6).prop_map(|(value, op)| Predicate::NumCmp {
            col: ColumnId(3),
            op: [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge
            ][op],
            value,
        }),
        (-40.0f64..40.0).prop_map(|value| Predicate::NumCmp {
            col: ColumnId(4),
            op: CmpOp::Lt,
            value,
        }),
        (0u32..5).prop_map(|c| Predicate::IsNull { col: ColumnId(c) }),
    ]
    .boxed()
}

fn arb_predicate() -> BoxedStrategy<Predicate> {
    prop_oneof![
        4 => arb_leaf(),
        1 => prop::collection::vec(arb_leaf(), 0..3).prop_map(Predicate::And),
        1 => prop::collection::vec(arb_leaf(), 0..3).prop_map(Predicate::Or),
        1 => arb_leaf().prop_map(|p| Predicate::Not(Box::new(p))),
    ]
    .boxed()
}

fn arb_split() -> BoxedStrategy<SplitSpec> {
    prop_oneof![
        arb_predicate().prop_map(SplitSpec::TargetVsAll),
        arb_predicate().prop_map(SplitSpec::TargetVsComplement),
        (arb_predicate(), arb_predicate())
            .prop_map(|(target, reference)| { SplitSpec::TargetVsQuery { target, reference } }),
        arb_predicate().prop_map(SplitSpec::TargetOnly),
    ]
    .boxed()
}

fn arb_query() -> BoxedStrategy<CombinedQuery> {
    (
        prop_oneof![
            2 => Just(vec![ColumnId(0)]),
            1 => Just(vec![ColumnId(1)]),
            1 => Just(vec![ColumnId(0), ColumnId(1)]),
        ],
        arb_split(),
        prop::option::of(arb_predicate()),
    )
        .prop_map(|(group_by, split, filter)| CombinedQuery {
            group_by,
            aggregates: vec![
                AggSpec::new(AggFunc::Count, ColumnId(3)),
                AggSpec::new(AggFunc::Sum, ColumnId(3)),
                AggSpec::new(AggFunc::Avg, ColumnId(4)),
                AggSpec::new(AggFunc::Min, ColumnId(3)),
                AggSpec::new(AggFunc::Max, ColumnId(4)),
            ],
            filter,
            split,
        })
        .boxed()
}

/// Serial scalar oracle over the full table (never prunes anything).
fn oracle(table: &BoxedTable, query: &CombinedQuery) -> GroupedResult {
    let mut agg = PartialAggregation::with_mode(query.clone(), ExecMode::Scalar);
    agg.update(table.as_ref(), 0..table.num_rows(), &mut ExecStats::new());
    agg.finalize()
}

/// Row-level truth of an unbound predicate at `row` (identity slot map:
/// the projection is the whole schema).
fn row_matches(table: &BoxedTable, pred: &Predicate, row: usize) -> bool {
    let ncols = table.schema().len();
    let cells: Vec<Cell> = (0..ncols)
        .map(|c| table.cell(row, ColumnId(c as u32)))
        .collect();
    pred.bind(&|col: ColumnId| col.index()).eval(&cells)
}

macro_rules! prop_assert_identical {
    ($a:expr, $b:expr, $label:expr) => {{
        let (a, b) = (&$a, &$b);
        prop_assert_eq!(a.num_groups(), b.num_groups(), "{}: group count", $label);
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            prop_assert_eq!(&ga.key, &gb.key, "{}: key order", $label);
            prop_assert_eq!(&ga.target, &gb.target, "{}: target accumulators", $label);
            prop_assert_eq!(
                &ga.reference,
                &gb.reference,
                "{}: reference accumulators",
                $label
            );
        }
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zone verdicts are hard guarantees: `Never` partitions contain no
    /// matching row, `Always` partitions contain no violating row.
    #[test]
    fn zone_verdicts_are_sound(
        ds in arb_dataset(),
        query in arb_query(),
        partition_rows in arb_partition_rows(),
    ) {
        for kind in [StoreKind::Row, StoreKind::Column] {
            let t = build(&ds, kind, partition_rows);
            let contribution = contribution_predicate(&query);
            for part in t.partitions() {
                let verdict = zone_match(&contribution, &part.zones);
                match verdict {
                    ZoneMatch::Never => {
                        for row in part.rows.clone() {
                            prop_assert!(
                                !row_matches(&t, &contribution, row),
                                "{kind} partition {:?} pruned but row {row} matches",
                                part.rows
                            );
                        }
                    }
                    ZoneMatch::Always => {
                        for row in part.rows.clone() {
                            prop_assert!(
                                row_matches(&t, &contribution, row),
                                "{kind} partition {:?} is Always but row {row} fails",
                                part.rows
                            );
                        }
                    }
                    ZoneMatch::Maybe => {}
                }
            }
        }
    }

    /// Pruned, morsel-parallel execution over a partitioned table is
    /// bit-identical to the serial scalar oracle over an unpartitioned
    /// twin, for every store layout and partition size.
    #[test]
    fn pruned_execution_matches_unpartitioned_oracle(
        ds in arb_dataset(),
        query in arb_query(),
        partition_rows in arb_partition_rows(),
    ) {
        // Oracle substrate: one partition for the whole table, so nothing
        // the oracle touches depends on the partition layout under test.
        let flat = build(&ds, StoreKind::Column, usize::MAX);
        let want = oracle(&flat, &query);
        for kind in [StoreKind::Row, StoreKind::Column] {
            let t = build(&ds, kind, partition_rows);
            for threads in [1usize, 4] {
                let got = with_pool(threads, |pool| {
                    execute_morsels(
                        pool,
                        t.as_ref(),
                        std::slice::from_ref(&query),
                        0..t.num_rows(),
                        ScanShape::new(ExecMode::Vectorized, 64),
                        &seedb_engine::CancelToken::none(),
                    )
                });
                let (result, stats) = &got[0];
                prop_assert_eq!(
                    stats.partitions_scanned + stats.partitions_pruned,
                    t.partitions().len() as u64,
                    "partition accounting must cover the directory"
                );
                prop_assert_identical!(
                    want,
                    *result,
                    format!("{kind} threads={threads} partition_rows={partition_rows}")
                );
            }
        }
    }
}
