//! Property tests: the vectorized (batched) execution path is **exactly**
//! equivalent to the scalar row-at-a-time path, and morsel-driven parallel
//! execution is **exactly** equivalent to serial execution.
//!
//! The equivalence is bit-level, not approximate: for arbitrary tables
//! (including NULLs in dimensions and measures), arbitrary predicates,
//! every split kind, both store layouts, single- and multi-attribute
//! group-bys (i.e. the dense dictionary-direct index, the composite
//! mixed-radix index, *and* the hash fallback), arbitrary phase
//! partitions, and every `(worker count, morsel size)` combination, every
//! accumulator — count, sum, min, max — must be identical under `==`
//! (which for sums compares the correctly-rounded exact value).

use proptest::prelude::*;
use seedb_engine::{
    execute_morsels, with_pool, AggFunc, AggSpec, CmpOp, CombinedQuery, ExecMode, ExecStats,
    GroupedResult, PartialAggregation, Predicate, ScanShape, SplitSpec,
};
use seedb_storage::{
    BoxedTable, ColumnDef, ColumnId, ColumnRole, ColumnType, StoreKind, TableBuilder, Value,
};

/// One generated row: `(dim_a, dim_b, bool_dim, float measure, int
/// measure)`; `None` = NULL.
type Row = (Option<u8>, u8, Option<bool>, Option<f64>, Option<i64>);

#[derive(Debug, Clone)]
struct Dataset {
    rows: Vec<Row>,
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (
            prop::option::of(0u8..5),
            0u8..3,
            prop::option::of(any::<bool>()),
            prop::option::of(-100.0f64..100.0),
            prop::option::of(-50i64..50),
        ),
        1..250,
    )
    .prop_map(|rows| Dataset { rows })
}

fn build(ds: &Dataset, kind: StoreKind) -> BoxedTable {
    let mut b = TableBuilder::new(vec![
        ColumnDef::dim("a"),
        ColumnDef::dim("b"),
        ColumnDef::new("flag", ColumnType::Bool, ColumnRole::Dimension),
        ColumnDef::new("m", ColumnType::Float64, ColumnRole::Measure),
        ColumnDef::new("n", ColumnType::Int64, ColumnRole::Measure),
    ]);
    for (a, bb, flag, m, n) in &ds.rows {
        b.push_row(&[
            a.map(|v| Value::str(format!("a{v}")))
                .unwrap_or(Value::Null),
            Value::str(format!("b{bb}")),
            flag.map(Value::Bool).unwrap_or(Value::Null),
            m.map(Value::Float).unwrap_or(Value::Null),
            n.map(Value::Int).unwrap_or(Value::Null),
        ])
        .unwrap();
    }
    b.build(kind).unwrap()
}

/// A predicate over the generated schema: leaves on dimensions, the bool
/// column, and both measures, plus one level of connectives.
fn arb_leaf() -> BoxedStrategy<Predicate> {
    prop_oneof![
        Just(Predicate::True),
        Just(Predicate::False),
        (0u32..5).prop_map(|code| Predicate::CatEq {
            col: ColumnId(0),
            code,
        }),
        prop::collection::vec(0u32..5, 0..3).prop_map(|codes| Predicate::CatIn {
            col: ColumnId(1),
            codes,
        }),
        any::<bool>().prop_map(|value| Predicate::BoolEq {
            col: ColumnId(2),
            value,
        }),
        (-80.0f64..80.0, 0usize..6).prop_map(|(value, op)| Predicate::NumCmp {
            col: ColumnId(3),
            op: [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge
            ][op],
            value,
        }),
        (-40.0f64..40.0).prop_map(|value| Predicate::NumCmp {
            col: ColumnId(4),
            op: CmpOp::Lt,
            value,
        }),
        (0u32..5).prop_map(|c| Predicate::IsNull { col: ColumnId(c) }),
    ]
    .boxed()
}

fn arb_predicate() -> BoxedStrategy<Predicate> {
    prop_oneof![
        4 => arb_leaf(),
        1 => prop::collection::vec(arb_leaf(), 0..3).prop_map(Predicate::And),
        1 => prop::collection::vec(arb_leaf(), 0..3).prop_map(Predicate::Or),
        1 => arb_leaf().prop_map(|p| Predicate::Not(Box::new(p))),
    ]
    .boxed()
}

fn arb_split() -> BoxedStrategy<SplitSpec> {
    prop_oneof![
        arb_predicate().prop_map(SplitSpec::TargetVsAll),
        arb_predicate().prop_map(SplitSpec::TargetVsComplement),
        (arb_predicate(), arb_predicate())
            .prop_map(|(target, reference)| { SplitSpec::TargetVsQuery { target, reference } }),
        arb_predicate().prop_map(SplitSpec::TargetOnly),
    ]
    .boxed()
}

/// Group-by shapes: single categorical (dense path), single bool /
/// measure-typed attribute (vectorized hash path), and multi-attribute
/// (hash path + rollup clusters).
fn arb_group_by() -> BoxedStrategy<Vec<ColumnId>> {
    prop_oneof![
        3 => Just(vec![ColumnId(0)]),
        2 => Just(vec![ColumnId(1)]),
        1 => Just(vec![ColumnId(2)]),
        2 => Just(vec![ColumnId(0), ColumnId(1)]),
        1 => Just(vec![ColumnId(1), ColumnId(2)]),
    ]
    .boxed()
}

fn arb_query() -> BoxedStrategy<CombinedQuery> {
    (
        arb_group_by(),
        arb_split(),
        prop::option::of(arb_predicate()),
    )
        .prop_map(|(group_by, split, filter)| CombinedQuery {
            group_by,
            aggregates: vec![
                AggSpec::new(AggFunc::Count, ColumnId(3)),
                AggSpec::new(AggFunc::Sum, ColumnId(3)),
                AggSpec::new(AggFunc::Avg, ColumnId(4)),
                AggSpec::new(AggFunc::Min, ColumnId(3)),
                AggSpec::new(AggFunc::Max, ColumnId(4)),
            ],
            filter,
            split,
        })
        .boxed()
}

/// Runs `query` in `mode`, feeding the table in `phases` contiguous
/// partitions (1 = one-shot).
fn run(table: &BoxedTable, query: &CombinedQuery, mode: ExecMode, phases: usize) -> GroupedResult {
    let n = table.num_rows();
    let mut agg = PartialAggregation::with_mode(query.clone(), mode);
    let mut stats = ExecStats::new();
    for i in 0..phases {
        let lo = n * i / phases;
        let hi = n * (i + 1) / phases;
        agg.update(table.as_ref(), lo..hi, &mut stats);
    }
    agg.finalize()
}

/// Exact (bitwise-on-floats) equality of two grouped results.
macro_rules! prop_assert_identical {
    ($a:expr, $b:expr, $label:expr) => {{
        let (a, b) = (&$a, &$b);
        prop_assert_eq!(a.num_groups(), b.num_groups(), "{}: group count", $label);
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            prop_assert_eq!(&ga.key, &gb.key, "{}: key order", $label);
            prop_assert_eq!(&ga.target, &gb.target, "{}: target accumulators", $label);
            prop_assert_eq!(
                &ga.reference,
                &gb.reference,
                "{}: reference accumulators",
                $label
            );
        }
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scalar vs vectorized, one-shot, on both store layouts.
    #[test]
    fn scalar_and_vectorized_agree_exactly(ds in arb_dataset(), query in arb_query()) {
        for kind in [StoreKind::Row, StoreKind::Column] {
            let t = build(&ds, kind);
            let scalar = run(&t, &query, ExecMode::Scalar, 1);
            let vectorized = run(&t, &query, ExecMode::Vectorized, 1);
            prop_assert_identical!(scalar, vectorized, format!("{kind}"));
        }
    }

    /// Phased vectorized execution equals one-shot scalar execution: the
    /// resumable `PartialAggregation` contract survives batching.
    #[test]
    fn phased_vectorized_equals_one_shot_scalar(
        ds in arb_dataset(),
        query in arb_query(),
        phases in 1usize..7,
    ) {
        let t = build(&ds, StoreKind::Column);
        let scalar = run(&t, &query, ExecMode::Scalar, 1);
        let phased = run(&t, &query, ExecMode::Vectorized, phases);
        prop_assert_identical!(scalar, phased, format!("{phases} phases"));
    }

    /// Row and column stores agree bit-for-bit under the vectorized path
    /// (zero-copy column batches vs materialized row-store batches).
    #[test]
    fn row_and_column_stores_agree_vectorized(
        ds in arb_dataset(),
        query in arb_query(),
        phases in 1usize..5,
    ) {
        let row_t = build(&ds, StoreKind::Row);
        let col_t = build(&ds, StoreKind::Column);
        let a = run(&row_t, &query, ExecMode::Vectorized, phases);
        let b = run(&col_t, &query, ExecMode::Vectorized, phases);
        prop_assert_identical!(a, b, "ROW vs COL");
    }

    /// Morsel-driven parallel execution is bit-identical to the serial
    /// scalar oracle across the full cross product of worker counts,
    /// morsel sizes (including single-row and whole-range), store layouts,
    /// and group-index shapes (`arb_group_by` spans the dense single-dim
    /// index, the composite mixed-radix index, and the hash fallback).
    #[test]
    fn morsel_parallel_execution_is_bit_identical(
        ds in arb_dataset(),
        query in arb_query(),
    ) {
        for kind in [StoreKind::Row, StoreKind::Column] {
            let t = build(&ds, kind);
            let serial = run(&t, &query, ExecMode::Scalar, 1);
            for threads in [1usize, 2, 8] {
                const MORSELS: [usize; 4] = [1, 7, 1024, usize::MAX];
                // One pool per worker count; all morsel sweeps reuse it.
                let per_morsel: Vec<(GroupedResult, ExecStats)> = with_pool(threads, |pool| {
                    MORSELS
                        .iter()
                        .map(|&morsel_rows| {
                            execute_morsels(
                                pool,
                                t.as_ref(),
                                std::slice::from_ref(&query),
                                0..t.num_rows(),
                                ScanShape::new(ExecMode::Vectorized, morsel_rows),
                                &seedb_engine::CancelToken::none(),
                            )
                            .pop()
                            .expect("one query in, one result out")
                        })
                        .collect()
                });
                for (morsel_rows, (morsel_result, stats)) in MORSELS.iter().zip(&per_morsel) {
                    // Zone-map pruning may skip partitions outright (e.g. a
                    // `False` filter prunes everything); absent pruning the
                    // full range must still be walked.
                    if stats.partitions_pruned == 0 {
                        prop_assert_eq!(stats.rows_scanned, t.num_rows() as u64);
                    } else {
                        prop_assert!(stats.rows_scanned < t.num_rows() as u64);
                    }
                    prop_assert_identical!(
                        serial,
                        *morsel_result,
                        format!("{kind} threads={threads} morsel={morsel_rows}")
                    );
                }
            }
        }
    }

    /// Mid-stream snapshots are identical across modes after every phase.
    #[test]
    fn snapshots_agree_across_modes(ds in arb_dataset(), query in arb_query()) {
        let t = build(&ds, StoreKind::Column);
        let n = t.num_rows();
        let mut scalar = PartialAggregation::with_mode(query.clone(), ExecMode::Scalar);
        let mut vectorized = PartialAggregation::with_mode(query.clone(), ExecMode::Vectorized);
        let mut stats = ExecStats::new();
        for (lo, hi) in [(0, n / 2), (n / 2, n)] {
            scalar.update(t.as_ref(), lo..hi, &mut stats);
            vectorized.update(t.as_ref(), lo..hi, &mut stats);
            prop_assert_eq!(scalar.rows_consumed(), vectorized.rows_consumed());
            prop_assert_eq!(scalar.target_rows(), vectorized.target_rows());
            prop_assert_eq!(scalar.num_groups(), vectorized.num_groups());
            prop_assert_identical!(scalar.snapshot(), vectorized.snapshot(), "snapshot");
        }
    }
}
