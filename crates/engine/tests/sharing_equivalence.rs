//! Property tests for the engine's sharing rewrites: every §4.1
//! optimization must be *result-preserving*. We generate random tables and
//! random view sets, then check that
//!
//! 1. combined multi-aggregate queries ≡ separate per-aggregate queries,
//! 2. multi-GROUP-BY queries + rollup ≡ direct single-attribute queries,
//! 3. combined target/reference execution ≡ two separate `TargetOnly` runs,
//! 4. phased (partitioned) execution ≡ one-shot execution,
//! 5. ROW and COL layouts agree.

use proptest::prelude::*;
use seedb_engine::{
    execute_combined, rollup, AggFunc, AggSpec, CombinedQuery, ExecStats, GroupedResult,
    PartialAggregation, Predicate, SplitSpec,
};
use seedb_storage::{
    BoxedTable, ColumnDef, ColumnId, ColumnRole, ColumnType, StoreKind, TableBuilder, Value,
};

#[derive(Debug, Clone)]
struct Dataset {
    rows: Vec<(u8, u8, u8, Option<f64>)>, // (dim_a, dim_b, dim_c, measure)
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (0u8..4, 0u8..3, 0u8..5, prop::option::of(-100.0f64..100.0)),
        1..200,
    )
    .prop_map(|rows| Dataset { rows })
}

fn build(ds: &Dataset, kind: StoreKind) -> BoxedTable {
    let mut b = TableBuilder::new(vec![
        ColumnDef::dim("a"),
        ColumnDef::dim("b"),
        ColumnDef::dim("c"),
        ColumnDef::new("m", ColumnType::Float64, ColumnRole::Measure),
    ]);
    for (a, bb, c, m) in &ds.rows {
        b.push_row(&[
            Value::str(format!("a{a}")),
            Value::str(format!("b{bb}")),
            Value::str(format!("c{c}")),
            m.map(Value::Float).unwrap_or(Value::Null),
        ])
        .unwrap();
    }
    b.build(kind).unwrap()
}

fn target_pred(table: &dyn seedb_storage::Table) -> Predicate {
    // Target = rows with dim_a == 'a0' (always a valid label if present;
    // Predicate::False otherwise, which is also a legal target).
    Predicate::col_eq_str(table, "a", "a0")
}

fn vectors_close(x: &(Vec<f64>, Vec<f64>), y: &(Vec<f64>, Vec<f64>)) -> bool {
    let close = |p: &[f64], q: &[f64]| {
        p.len() == q.len()
            && p.iter()
                .zip(q)
                .all(|(a, b)| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())))
    };
    close(&x.0, &y.0) && close(&x.1, &y.1)
}

const FUNCS: [AggFunc; 5] = [
    AggFunc::Count,
    AggFunc::Sum,
    AggFunc::Avg,
    AggFunc::Min,
    AggFunc::Max,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn combined_aggregates_equal_separate_queries(ds in arb_dataset()) {
        let t = build(&ds, StoreKind::Column);
        let split = SplitSpec::TargetVsAll(target_pred(t.as_ref()));
        let combined = CombinedQuery {
            group_by: vec![ColumnId(0)],
            aggregates: FUNCS.iter().map(|&f| AggSpec::new(f, ColumnId(3))).collect(),
            filter: None,
            split: split.clone(),
        };
        let merged = execute_combined(t.as_ref(), &combined, &mut ExecStats::new());
        for (i, &f) in FUNCS.iter().enumerate() {
            let single = CombinedQuery::single(
                ColumnId(0),
                AggSpec::new(f, ColumnId(3)),
                split.clone(),
            );
            let alone = execute_combined(t.as_ref(), &single, &mut ExecStats::new());
            prop_assert!(
                vectors_close(&merged.value_vectors(i), &alone.value_vectors(0)),
                "aggregate {f} diverged"
            );
        }
    }

    #[test]
    fn multi_group_by_rollup_equals_direct(ds in arb_dataset()) {
        let t = build(&ds, StoreKind::Column);
        let split = SplitSpec::TargetVsComplement(target_pred(t.as_ref()));
        let aggs = vec![
            AggSpec::new(AggFunc::Count, ColumnId(3)),
            AggSpec::new(AggFunc::Avg, ColumnId(3)),
        ];
        let multi = CombinedQuery {
            group_by: vec![ColumnId(1), ColumnId(2)],
            aggregates: aggs.clone(),
            filter: None,
            split: split.clone(),
        };
        let multi_result = execute_combined(t.as_ref(), &multi, &mut ExecStats::new());
        for (pos, dim) in [(0usize, 1u32), (1, 2)] {
            let rolled = rollup(&multi_result, pos);
            let direct = execute_combined(
                t.as_ref(),
                &CombinedQuery {
                    group_by: vec![ColumnId(dim)],
                    aggregates: aggs.clone(),
                    filter: None,
                    split: split.clone(),
                },
                &mut ExecStats::new(),
            );
            prop_assert_eq!(rolled.num_groups(), direct.num_groups());
            for agg in 0..aggs.len() {
                prop_assert!(
                    vectors_close(&rolled.value_vectors(agg), &direct.value_vectors(agg)),
                    "rollup diverged on dim {} agg {}", dim, agg
                );
            }
        }
    }

    #[test]
    fn combined_split_equals_two_target_only_queries(ds in arb_dataset()) {
        let t = build(&ds, StoreKind::Column);
        let target = target_pred(t.as_ref());
        let combined = CombinedQuery::single(
            ColumnId(1),
            AggSpec::new(AggFunc::Sum, ColumnId(3)),
            SplitSpec::TargetVsComplement(target.clone()),
        );
        let both = execute_combined(t.as_ref(), &combined, &mut ExecStats::new());

        let run_side = |pred: Predicate| -> GroupedResult {
            execute_combined(
                t.as_ref(),
                &CombinedQuery::single(
                    ColumnId(1),
                    AggSpec::new(AggFunc::Sum, ColumnId(3)),
                    SplitSpec::TargetOnly(pred),
                ),
                &mut ExecStats::new(),
            )
        };
        let t_side = run_side(target.clone());
        let r_side = run_side(target.negate());

        // Align by key: combined result may have groups the single-sided
        // queries lack (a group whose rows are all on one side).
        for g in &both.groups {
            let t_val = g.target[0].finish(AggFunc::Sum).unwrap();
            let r_val = g.reference[0].finish(AggFunc::Sum).unwrap();
            let t_direct = t_side
                .groups
                .iter()
                .find(|e| e.key == g.key)
                .map(|e| e.target[0].finish(AggFunc::Sum).unwrap())
                .unwrap_or(0.0);
            let r_direct = r_side
                .groups
                .iter()
                .find(|e| e.key == g.key)
                .map(|e| e.target[0].finish(AggFunc::Sum).unwrap())
                .unwrap_or(0.0);
            prop_assert!((t_val - t_direct).abs() < 1e-9);
            prop_assert!((r_val - r_direct).abs() < 1e-9);
        }
    }

    #[test]
    fn phased_execution_equals_one_shot(ds in arb_dataset(), phases in 1usize..8) {
        let t = build(&ds, StoreKind::Row);
        let q = CombinedQuery::single(
            ColumnId(2),
            AggSpec::new(AggFunc::Avg, ColumnId(3)),
            SplitSpec::TargetVsAll(target_pred(t.as_ref())),
        );
        let one_shot = execute_combined(t.as_ref(), &q, &mut ExecStats::new());

        let n = t.num_rows();
        let mut partial = PartialAggregation::new(q);
        let mut stats = ExecStats::new();
        for i in 0..phases {
            let lo = n * i / phases;
            let hi = n * (i + 1) / phases;
            partial.update(t.as_ref(), lo..hi, &mut stats);
        }
        let phased = partial.finalize();
        prop_assert_eq!(one_shot.num_groups(), phased.num_groups());
        prop_assert!(vectors_close(&one_shot.value_vectors(0), &phased.value_vectors(0)));
        prop_assert_eq!(stats.rows_scanned, n as u64);
    }

    #[test]
    fn row_and_column_stores_agree(ds in arb_dataset()) {
        let row_t = build(&ds, StoreKind::Row);
        let col_t = build(&ds, StoreKind::Column);
        let q = CombinedQuery {
            group_by: vec![ColumnId(0), ColumnId(1)],
            aggregates: vec![
                AggSpec::new(AggFunc::Count, ColumnId(3)),
                AggSpec::new(AggFunc::Avg, ColumnId(3)),
            ],
            filter: None,
            split: SplitSpec::TargetVsComplement(target_pred(row_t.as_ref())),
        };
        let a = execute_combined(row_t.as_ref(), &q, &mut ExecStats::new());
        let b = execute_combined(col_t.as_ref(), &q, &mut ExecStats::new());
        prop_assert_eq!(a.num_groups(), b.num_groups());
        for agg in 0..2 {
            prop_assert!(vectors_close(&a.value_vectors(agg), &b.value_vectors(agg)));
        }
    }
}
