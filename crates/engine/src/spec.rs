//! Query specifications the engine executes.
//!
//! A [`CombinedQuery`] is the engine-level representation of one SQL view
//! query *after* the sharing optimizer has (possibly) merged several SeeDB
//! views into it: it may carry multiple aggregates, multiple group-by
//! attributes, and a target/reference split — each corresponding to one of
//! §4.1's rewrites. The unoptimized baseline simply issues many
//! `CombinedQuery`s with one aggregate, one group-by and a `TargetOnly`
//! split, which is exactly the paper's 2·f·a·m query explosion.

use crate::expr::Predicate;
use seedb_storage::ColumnId;

use crate::agg::AggFunc;

/// One aggregate to compute: `func(measure)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Measure column.
    pub measure: ColumnId,
}

impl AggSpec {
    /// Creates an aggregate spec.
    pub fn new(func: AggFunc, measure: ColumnId) -> Self {
        AggSpec { func, measure }
    }
}

/// How scanned rows are classified into target and reference datasets.
///
/// §2 of the paper: the reference `D_R` may be the entire dataset `D`
/// (default), the complement `D − D_Q`, or the result of an arbitrary
/// query `Q'`.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitSpec {
    /// Target = rows matching the predicate; reference = **all** rows
    /// (`D_R = D`, the paper's default). Target rows count on both sides.
    TargetVsAll(Predicate),
    /// Target = rows matching; reference = rows not matching
    /// (`D_R = D − D_Q`).
    TargetVsComplement(Predicate),
    /// Target and reference each defined by their own predicate
    /// (`D_R = D_{Q'}`).
    TargetVsQuery {
        /// Target selection (the user's query `Q`).
        target: Predicate,
        /// Reference selection (`Q'`).
        reference: Predicate,
    },
    /// Only the target side is populated. Used by the unoptimized baseline,
    /// which issues separate SQL queries for target and reference views.
    TargetOnly(Predicate),
}

impl SplitSpec {
    /// The target-side predicate.
    pub fn target_predicate(&self) -> &Predicate {
        match self {
            SplitSpec::TargetVsAll(p)
            | SplitSpec::TargetVsComplement(p)
            | SplitSpec::TargetOnly(p) => p,
            SplitSpec::TargetVsQuery { target, .. } => target,
        }
    }

    /// Every predicate involved (for projection planning).
    pub fn predicates(&self) -> Vec<&Predicate> {
        match self {
            SplitSpec::TargetVsAll(p)
            | SplitSpec::TargetVsComplement(p)
            | SplitSpec::TargetOnly(p) => vec![p],
            SplitSpec::TargetVsQuery { target, reference } => vec![target, reference],
        }
    }
}

/// A single engine query: scan once, group, aggregate, split.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedQuery {
    /// Grouping attributes (≥ 1; > 1 when the combine-group-by optimization
    /// merged several views).
    pub group_by: Vec<ColumnId>,
    /// Aggregates to maintain per group (≥ 1; > 1 when the combine-aggregates
    /// optimization merged several views).
    pub aggregates: Vec<AggSpec>,
    /// Optional scan-wide filter applied before the split (models the
    /// select-project-join context of §2; `None` = whole table).
    pub filter: Option<Predicate>,
    /// Target/reference classification.
    pub split: SplitSpec,
}

impl CombinedQuery {
    /// A simple single-view query: `SELECT a, f(m) ... GROUP BY a` with the
    /// given split.
    pub fn single(dim: ColumnId, agg: AggSpec, split: SplitSpec) -> Self {
        CombinedQuery {
            group_by: vec![dim],
            aggregates: vec![agg],
            filter: None,
            split,
        }
    }

    /// Upper bound on the number of distinct groups this query maintains,
    /// i.e. `∏ |a_i|` over its grouping attributes (§4.1's memory model).
    pub fn group_upper_bound(&self, table: &dyn seedb_storage::Table) -> usize {
        self.group_by
            .iter()
            .map(|c| table.distinct_count(*c))
            .fold(1usize, |acc, d| acc.saturating_mul(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedb_storage::{ColumnDef, ColumnRole, ColumnType, StoreKind, TableBuilder, Value};

    #[test]
    fn split_exposes_predicates() {
        let p = Predicate::True;
        let q = Predicate::False;
        assert_eq!(SplitSpec::TargetVsAll(p.clone()).predicates().len(), 1);
        assert_eq!(
            SplitSpec::TargetVsQuery {
                target: p.clone(),
                reference: q.clone()
            }
            .predicates()
            .len(),
            2
        );
        assert_eq!(
            SplitSpec::TargetVsQuery {
                target: p.clone(),
                reference: q
            }
            .target_predicate(),
            &p
        );
    }

    #[test]
    fn single_query_shape() {
        let q = CombinedQuery::single(
            ColumnId(0),
            AggSpec::new(AggFunc::Avg, ColumnId(1)),
            SplitSpec::TargetVsAll(Predicate::True),
        );
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.aggregates.len(), 1);
        assert!(q.filter.is_none());
    }

    #[test]
    fn group_upper_bound_multiplies_cardinalities() {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("a"),
            ColumnDef::dim("b"),
            ColumnDef::new("m", ColumnType::Float64, ColumnRole::Measure),
        ]);
        for (a, bb) in [("x", "1"), ("y", "2"), ("z", "1")] {
            b.push_row(&[Value::str(a), Value::str(bb), Value::Float(1.0)])
                .unwrap();
        }
        let t = b.build(StoreKind::Column).unwrap();
        let q = CombinedQuery {
            group_by: vec![ColumnId(0), ColumnId(1)],
            aggregates: vec![AggSpec::new(AggFunc::Count, ColumnId(2))],
            filter: None,
            split: SplitSpec::TargetVsAll(Predicate::True),
        };
        assert_eq!(q.group_upper_bound(t.as_ref()), 6); // 3 * 2
    }
}
