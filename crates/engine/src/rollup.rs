//! Rolling a multi-attribute GROUP BY result up to single-attribute views.
//!
//! The combine-multiple-GROUP-BYs optimization (§4.1) executes one query
//! grouped by `(a₁, …, a_p)` and recovers each single-attribute view
//! `GROUP BY a_i` by merging accumulators over the other attributes. This
//! is lossless for COUNT/SUM/AVG/MIN/MAX because [`crate::Accumulator`]s
//! merge exactly.
//!
//! Position codes are read straight out of each group key (no sub-key
//! re-projection/allocation per group), and when the position's codes are
//! small — always true for the dictionary-coded attributes bin-packing
//! produces, whose radix the composite dense index already bounded — the
//! merge goes through a dense code-indexed table instead of a hash map, so
//! the bin-packed cluster path stays hash-free end to end.

use crate::groupkey::GroupKey;
use crate::hashagg::DENSE_CARDINALITY_MAX;
use crate::{GroupEntry, GroupedResult};
use rustc_hash::FxHashMap;

/// Projects `result` (grouped by several attributes) onto the single
/// grouping attribute at `position`, merging all groups that share that
/// attribute's code.
///
/// # Panics
/// Panics if `position` is out of range of `result.group_by`.
pub fn rollup(result: &GroupedResult, position: usize) -> GroupedResult {
    assert!(
        position < result.group_by.len(),
        "rollup position {position} out of range ({} grouping attrs)",
        result.group_by.len()
    );
    let n_aggs = result.aggregates.len();
    let mut merged: Vec<GroupEntry> = Vec::new();

    // Dense merge when every code at `position` is small (dictionary codes
    // are; float-bit or wide integer codes are not). NULL (u64::MAX) owns
    // slot 0, code c owns slot c + 1 — the radix layout the composite dense
    // index uses.
    let max_code = result
        .groups
        .iter()
        .map(|e| e.key.code(position))
        .filter(|&c| c != u64::MAX)
        .max();
    let dense_slots = match max_code {
        None => Some(1),
        Some(c) if (c as usize) < DENSE_CARDINALITY_MAX => Some(c as usize + 2),
        Some(_) => None,
    };

    let fold = |merged: &mut Vec<GroupEntry>, entry: &GroupEntry, idx: usize| {
        for agg in 0..n_aggs {
            merged[idx].target[agg].merge(&entry.target[agg]);
            merged[idx].reference[agg].merge(&entry.reference[agg]);
        }
    };
    let new_entry = |code: u64| GroupEntry {
        key: GroupKey::One(code),
        target: vec![Default::default(); n_aggs],
        reference: vec![Default::default(); n_aggs],
    };

    if let Some(len) = dense_slots {
        let mut slots: Vec<u32> = vec![0; len];
        for entry in &result.groups {
            let code = entry.key.code(position);
            let si = if code == u64::MAX {
                0
            } else {
                code as usize + 1
            };
            let idx = match slots[si] {
                0 => {
                    merged.push(new_entry(code));
                    slots[si] = merged.len() as u32;
                    merged.len() - 1
                }
                v => v as usize - 1,
            };
            fold(&mut merged, entry, idx);
        }
    } else {
        let mut map: FxHashMap<u64, usize> = FxHashMap::default();
        for entry in &result.groups {
            let code = entry.key.code(position);
            let idx = *map.entry(code).or_insert_with(|| {
                merged.push(new_entry(code));
                merged.len() - 1
            });
            fold(&mut merged, entry, idx);
        }
    }
    merged.sort_by(|a, b| a.key.cmp(&b.key));
    GroupedResult {
        group_by: vec![result.group_by[position]],
        aggregates: result.aggregates.clone(),
        groups: merged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::expr::Predicate;
    use crate::hashagg::execute_combined;
    use crate::spec::{AggSpec, CombinedQuery, SplitSpec};
    use crate::stats::ExecStats;
    use seedb_storage::{
        BoxedTable, ColumnDef, ColumnId, ColumnRole, ColumnType, StoreKind, TableBuilder, Value,
    };

    fn table() -> BoxedTable {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("a"),
            ColumnDef::dim("b"),
            ColumnDef::new("m", ColumnType::Float64, ColumnRole::Measure),
        ]);
        let rows = [
            ("x", "p", 1.0),
            ("x", "q", 2.0),
            ("y", "p", 4.0),
            ("y", "q", 8.0),
            ("x", "p", 16.0),
        ];
        for (a, bb, m) in rows {
            b.push_row(&[Value::str(a), Value::str(bb), Value::Float(m)])
                .unwrap();
        }
        b.build(StoreKind::Column).unwrap()
    }

    fn multi_query(t: &dyn seedb_storage::Table) -> GroupedResult {
        let q = CombinedQuery {
            group_by: vec![ColumnId(0), ColumnId(1)],
            aggregates: vec![
                AggSpec::new(AggFunc::Sum, ColumnId(2)),
                AggSpec::new(AggFunc::Count, ColumnId(2)),
                AggSpec::new(AggFunc::Avg, ColumnId(2)),
                AggSpec::new(AggFunc::Min, ColumnId(2)),
                AggSpec::new(AggFunc::Max, ColumnId(2)),
            ],
            filter: None,
            split: SplitSpec::TargetVsAll(Predicate::col_eq_str(t, "b", "p")),
        };
        execute_combined(t, &q, &mut ExecStats::default())
    }

    fn single_query(t: &dyn seedb_storage::Table, dim: u32) -> GroupedResult {
        let q = CombinedQuery {
            group_by: vec![ColumnId(dim)],
            aggregates: vec![
                AggSpec::new(AggFunc::Sum, ColumnId(2)),
                AggSpec::new(AggFunc::Count, ColumnId(2)),
                AggSpec::new(AggFunc::Avg, ColumnId(2)),
                AggSpec::new(AggFunc::Min, ColumnId(2)),
                AggSpec::new(AggFunc::Max, ColumnId(2)),
            ],
            filter: None,
            split: SplitSpec::TargetVsAll(Predicate::col_eq_str(t, "b", "p")),
        };
        execute_combined(t, &q, &mut ExecStats::default())
    }

    #[test]
    fn rollup_matches_direct_single_attribute_query_for_all_aggregates() {
        let t = table();
        let multi = multi_query(t.as_ref());
        for (pos, dim) in [(0usize, 0u32), (1, 1)] {
            let rolled = rollup(&multi, pos);
            let direct = single_query(t.as_ref(), dim);
            assert_eq!(rolled.num_groups(), direct.num_groups(), "dim {dim}");
            for agg in 0..5 {
                let (rt, rr) = rolled.value_vectors(agg);
                let (dt, dr) = direct.value_vectors(agg);
                assert_eq!(rt, dt, "target mismatch dim {dim} agg {agg}");
                assert_eq!(rr, dr, "reference mismatch dim {dim} agg {agg}");
            }
        }
    }

    #[test]
    fn rollup_preserves_group_by_metadata() {
        let t = table();
        let multi = multi_query(t.as_ref());
        let rolled = rollup(&multi, 1);
        assert_eq!(rolled.group_by, vec![ColumnId(1)]);
        assert_eq!(rolled.aggregates.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rollup_position_out_of_range_panics() {
        let t = table();
        let multi = multi_query(t.as_ref());
        rollup(&multi, 2);
    }

    #[test]
    fn rollup_over_wide_codes_takes_hash_fallback() {
        // Grouping by a float measure produces `f64::to_bits` group codes
        // far past the dense cap; the rollup must fall back to hashing and
        // still merge correctly.
        let mut b = TableBuilder::new(vec![
            ColumnDef::new("f", ColumnType::Float64, ColumnRole::Dimension),
            ColumnDef::dim("d"),
            ColumnDef::new("m", ColumnType::Float64, ColumnRole::Measure),
        ]);
        for (f, d, m) in [
            (1.5, "x", 10.0),
            (2.5, "y", 20.0),
            (1.5, "y", 30.0),
            (2.5, "x", 40.0),
        ] {
            b.push_row(&[Value::Float(f), Value::str(d), Value::Float(m)])
                .unwrap();
        }
        let t = b.build(StoreKind::Column).unwrap();
        let q = CombinedQuery {
            group_by: vec![ColumnId(0), ColumnId(1)],
            aggregates: vec![AggSpec::new(AggFunc::Sum, ColumnId(2))],
            filter: None,
            split: SplitSpec::TargetVsAll(Predicate::True),
        };
        let multi = execute_combined(t.as_ref(), &q, &mut ExecStats::default());
        let rolled = rollup(&multi, 0);
        assert_eq!(rolled.num_groups(), 2);
        let (target, _) = rolled.value_vectors(0);
        assert_eq!(target, vec![40.0, 60.0]); // keys sort by to_bits: 1.5 < 2.5
    }

    #[test]
    fn rollup_of_single_attribute_result_is_identity() {
        let t = table();
        let single = single_query(t.as_ref(), 0);
        let rolled = rollup(&single, 0);
        assert_eq!(rolled.num_groups(), single.num_groups());
        for agg in 0..5 {
            assert_eq!(rolled.value_vectors(agg), single.value_vectors(agg));
        }
    }
}
