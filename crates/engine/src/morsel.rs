//! Morsel-driven intra-query parallelism (Leis et al., SIGMOD 2014) over
//! the storage layer's partition directory.
//!
//! The coarse unit of SeeDB parallelism — one worker per query cluster —
//! collapses exactly when the sharing optimizer works best: the all-sharing
//! configuration bin-packs every view into a handful of clusters, leaving
//! most workers idle. This module plans each query's scan with
//! [`crate::prune::pruned_scan`] — the **partition** is the unit of work
//! distribution: zone-map-pruned partitions are dropped before any worker
//! runs, and each surviving partition is split into fixed-size,
//! partition-aligned **morsels** ([`seedb_storage::morsel_ranges`]). The
//! per-job morsel lists are flattened into one job-major item space and
//! scheduled over a shared worker pool ([`crate::parallel::Pool`]): every
//! worker aggregates the morsels it claims into a **thread-local
//! [`PartialAggregation`]** per job, and the partials are folded
//! deterministically — ascending first-item order — once the pool drains.
//!
//! Because accumulators merge exactly (order-invariant sums, see
//! [`crate::Accumulator`]) and pruning only drops partitions whose rows
//! provably create no group entry, the folded result is **bit-identical**
//! to a serial unpartitioned scan of the same range, for every
//! `(worker count, morsel size, partition size)` combination.

use crate::cost::ScanShape;
use crate::parallel::{CancelToken, Pool, WorkerProbes};
use crate::prune::{pruned_scan, PrunedScan};
use crate::spec::CombinedQuery;
use crate::stats::ExecStats;
use crate::{GroupedResult, PartialAggregation};
use seedb_obs::TraceCtx;
use seedb_storage::Table;
use seedb_util::PLock;
use std::ops::Range;

pub use seedb_storage::DEFAULT_MORSEL_ROWS;

/// One worker's partial state for one job.
struct WorkerPartial {
    /// Global index of the first work item this worker claimed for the job
    /// — the deterministic fold key (workers claim items in ascending
    /// order, so this is also the smallest).
    first_item: usize,
    agg: PartialAggregation,
    stats: ExecStats,
}

/// Executes every query in `queries` over rows `range` of `table`,
/// morsel-parallel across `pool`, returning one `(result, stats)` pair per
/// query in input order. The scan's physical shape — execution mode and
/// morsel size — comes in as a [`ScanShape`], the engine-facing slice of
/// the planner's physical plan. Each query's scan is planned
/// independently: partitions whose zone maps prove the query can match no
/// row are pruned up front (tallied in `partitions_pruned`), and the
/// survivors are carved into partition-aligned morsels. Results are
/// bit-identical to running each query serially over the same range
/// without partitioning, regardless of pool size, morsel size, or the
/// table's partition size.
///
/// Each query counts as one issued query in its stats; `scan_passes`
/// reflects the number of morsel scans.
///
/// `cancel` is the cooperative deadline: once it expires, workers stop
/// aggregating before each newly claimed morsel (in-flight morsels
/// finish), so the call returns within one morsel of the deadline. The
/// caller must treat the folded results as garbage when the token expired
/// — partially scanned aggregates are not a prefix of anything
/// well-defined.
pub fn execute_morsels(
    pool: &Pool<'_>,
    table: &dyn Table,
    queries: &[CombinedQuery],
    range: Range<usize>,
    shape: ScanShape,
    cancel: &CancelToken,
) -> Vec<(GroupedResult, ExecStats)> {
    execute_morsels_traced(
        pool,
        table,
        queries,
        range,
        shape,
        cancel,
        &TraceCtx::disabled(),
    )
}

/// [`execute_morsels`] with per-worker trace probes: when `trace` is
/// enabled, each worker that claims at least one morsel emits one
/// aggregated `morsels` span on trace lane `1 + worker` (start = the
/// worker's first claim, duration = its summed busy time, with the morsel
/// count as a span argument). A disabled trace costs one branch per morsel
/// and allocates nothing; results are bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub fn execute_morsels_traced(
    pool: &Pool<'_>,
    table: &dyn Table,
    queries: &[CombinedQuery],
    range: Range<usize>,
    shape: ScanShape,
    cancel: &CancelToken,
    trace: &TraceCtx,
) -> Vec<(GroupedResult, ExecStats)> {
    let n_jobs = queries.len();
    if n_jobs == 0 {
        return Vec::new();
    }

    // Per-job scan plans: prune partitions against each query's
    // contribution predicate, then flatten the surviving morsel lists into
    // one job-major item space. `job_offsets[j]..job_offsets[j + 1]` are
    // job j's items.
    let plans: Vec<PrunedScan> = queries
        .iter()
        .map(|q| pruned_scan(table, q, range.clone(), shape.morsel_rows))
        .collect();
    let mut job_offsets = Vec::with_capacity(n_jobs + 1);
    job_offsets.push(0usize);
    for plan in &plans {
        job_offsets.push(job_offsets.last().unwrap() + plan.morsels.len());
    }
    let n_items = *job_offsets.last().unwrap();

    // Per-worker, per-job partials. Each worker only ever touches its own
    // slot, so the mutexes are uncontended; they exist to keep the hot path
    // in safe code.
    let workers = pool.threads();
    let locals: Vec<PLock<Vec<Option<WorkerPartial>>>> = (0..workers)
        .map(|_| {
            let mut slots = Vec::with_capacity(n_jobs);
            slots.resize_with(n_jobs, || None);
            PLock::new("engine.morsel.partials", slots)
        })
        .collect();

    // Workers drain one job's morsels before the next, and a worker's
    // morsels per job are ascending (the pool claims indices in ascending
    // order). Jobs with zero surviving morsels simply occupy an empty
    // stretch of the item space.
    let probes = WorkerProbes::new(workers, trace.is_enabled());
    pool.run(n_items, |worker, item| {
        if cancel.is_expired() {
            return;
        }
        let probe_start = probes.start();
        let job = job_offsets.partition_point(|&off| off <= item) - 1;
        let morsel = &plans[job].morsels[item - job_offsets[job]];
        let mut slots = locals[worker].lock();
        let partial = slots[job].get_or_insert_with(|| WorkerPartial {
            first_item: item,
            agg: PartialAggregation::with_mode(queries[job].clone(), shape.mode),
            stats: ExecStats::new(),
        });
        partial
            .agg
            .update(table, morsel.clone(), &mut partial.stats);
        probes.record(worker, probe_start);
    });
    probes.emit(trace, "morsels");

    // Deterministic fold: per job, merge worker partials in ascending
    // first-item order. (Accumulator merges are exact, so any order yields
    // the same bits; the fixed order additionally makes group discovery
    // order — and thus internal state — reproducible.)
    (0..n_jobs)
        .map(|job| {
            let mut parts: Vec<WorkerPartial> = locals
                .iter()
                .filter_map(|slots| slots.lock()[job].take())
                .collect();
            parts.sort_by_key(|p| p.first_item);

            let mut stats = ExecStats::new();
            stats.queries_issued = 1;
            stats.partitions_scanned = plans[job].partitions_scanned;
            stats.partitions_pruned = plans[job].partitions_pruned;
            let mut parts = parts.into_iter();
            let agg = match parts.next() {
                // Empty range, or every partition pruned: an untouched plan
                // finalizes to the empty result — exactly what a serial
                // scan of rows that never create a group entry produces.
                None => PartialAggregation::with_mode(queries[job].clone(), shape.mode),
                Some(first) => {
                    stats.merge(&first.stats);
                    let mut base = first.agg;
                    for part in parts {
                        stats.merge(&part.stats);
                        base.merge(part.agg);
                    }
                    base
                }
            };
            // Per-partial group counts under-report the final footprint.
            stats.groups_max = stats.groups_max.max(agg.num_groups() as u64);
            (agg.finalize(), stats)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::expr::{CmpOp, Predicate};
    use crate::parallel::with_pool;
    use crate::spec::{AggSpec, SplitSpec};
    use crate::ExecMode;
    use seedb_storage::{BoxedTable, ColumnDef, ColumnId, StoreKind, TableBuilder, Value};

    fn table(rows: usize) -> BoxedTable {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("d"),
            ColumnDef::dim("e"),
            ColumnDef::measure("m"),
        ]);
        for i in 0..rows {
            b.push_row(&[
                Value::str(format!("d{}", i % 7)),
                Value::str(format!("e{}", i % 3)),
                Value::Float((i as f64) * 0.37 - 11.0),
            ])
            .unwrap();
        }
        b.build(StoreKind::Column).unwrap()
    }

    fn queries(t: &dyn Table) -> Vec<CombinedQuery> {
        let split = SplitSpec::TargetVsAll(Predicate::col_eq_str(t, "e", "e0"));
        vec![
            CombinedQuery::single(
                ColumnId(0),
                AggSpec::new(AggFunc::Avg, ColumnId(2)),
                split.clone(),
            ),
            CombinedQuery {
                group_by: vec![ColumnId(0), ColumnId(1)],
                aggregates: vec![
                    AggSpec::new(AggFunc::Sum, ColumnId(2)),
                    AggSpec::new(AggFunc::Count, ColumnId(2)),
                ],
                filter: None,
                split,
            },
        ]
    }

    #[test]
    fn morsel_execution_matches_serial_bitwise() {
        let t = table(501);
        let qs = queries(t.as_ref());
        let serial: Vec<GroupedResult> = qs
            .iter()
            .map(|q| {
                crate::execute_combined_with_mode(
                    t.as_ref(),
                    q,
                    ExecMode::Vectorized,
                    &mut ExecStats::new(),
                )
            })
            .collect();
        for threads in [1usize, 2, 8] {
            for morsel in [1usize, 7, 64, usize::MAX] {
                let got = with_pool(threads, |pool| {
                    execute_morsels(
                        pool,
                        t.as_ref(),
                        &qs,
                        0..t.num_rows(),
                        ScanShape::new(ExecMode::Vectorized, morsel),
                        &CancelToken::none(),
                    )
                });
                assert_eq!(got.len(), serial.len());
                for ((result, stats), want) in got.iter().zip(&serial) {
                    assert_eq!(stats.queries_issued, 1);
                    assert_eq!(stats.rows_scanned, t.num_rows() as u64);
                    assert_eq!(result.num_groups(), want.num_groups());
                    for (a, b) in result.groups.iter().zip(&want.groups) {
                        assert_eq!(a.key, b.key, "threads {threads} morsel {morsel}");
                        assert_eq!(a.target, b.target, "threads {threads} morsel {morsel}");
                        assert_eq!(a.reference, b.reference);
                    }
                }
            }
        }
    }

    #[test]
    fn empty_range_yields_empty_results() {
        let t = table(10);
        let qs = queries(t.as_ref());
        let got = with_pool(4, |pool| {
            execute_morsels(
                pool,
                t.as_ref(),
                &qs,
                5..5,
                ScanShape::new(ExecMode::Vectorized, 2),
                &CancelToken::none(),
            )
        });
        assert_eq!(got.len(), 2);
        for (result, stats) in &got {
            assert_eq!(result.num_groups(), 0);
            assert_eq!(stats.rows_scanned, 0);
            assert_eq!(stats.queries_issued, 1);
        }
    }

    #[test]
    fn no_queries_is_fine() {
        let t = table(10);
        let got = with_pool(2, |pool| {
            execute_morsels(
                pool,
                t.as_ref(),
                &[],
                0..10,
                ScanShape::new(ExecMode::Vectorized, 4),
                &CancelToken::none(),
            )
        });
        assert!(got.is_empty());
    }

    #[test]
    fn scalar_mode_morsels_agree_with_vectorized() {
        let t = table(333);
        let qs = queries(t.as_ref());
        let a = with_pool(4, |pool| {
            execute_morsels(
                pool,
                t.as_ref(),
                &qs,
                0..333,
                ScanShape::new(ExecMode::Scalar, 50),
                &CancelToken::none(),
            )
        });
        let b = with_pool(3, |pool| {
            execute_morsels(
                pool,
                t.as_ref(),
                &qs,
                0..333,
                ScanShape::new(ExecMode::Vectorized, 128),
                &CancelToken::none(),
            )
        });
        for ((ra, _), (rb, _)) in a.iter().zip(&b) {
            for (ga, gb) in ra.groups.iter().zip(&rb.groups) {
                assert_eq!(ga.key, gb.key);
                assert_eq!(ga.target, gb.target);
                assert_eq!(ga.reference, gb.reference);
            }
        }
    }

    /// Partitioned table + selective predicate: pruned parallel execution
    /// must stay bit-identical to the serial unpartitioned scan while
    /// actually skipping partitions.
    #[test]
    fn pruning_skips_partitions_and_stays_bitwise_identical() {
        // Sorted measure so zone intervals are disjoint across partitions.
        let mut b = TableBuilder::new(vec![ColumnDef::dim("d"), ColumnDef::measure("m")])
            .with_partition_rows(64);
        for i in 0..500 {
            b.push_row(&[Value::str(format!("d{}", i % 5)), Value::Float(i as f64)])
                .unwrap();
        }
        let t = b.build(StoreKind::Column).unwrap();
        // Unpartitioned twin = serial oracle substrate.
        let mut b = TableBuilder::new(vec![ColumnDef::dim("d"), ColumnDef::measure("m")]);
        for i in 0..500 {
            b.push_row(&[Value::str(format!("d{}", i % 5)), Value::Float(i as f64)])
                .unwrap();
        }
        let flat = b.build(StoreKind::Column).unwrap();

        let pred = Predicate::NumCmp {
            col: ColumnId(1),
            op: CmpOp::Lt,
            value: 100.0,
        };
        let q = CombinedQuery::single(
            ColumnId(0),
            AggSpec::new(AggFunc::Avg, ColumnId(1)),
            SplitSpec::TargetOnly(pred),
        );
        let want = crate::execute_combined_with_mode(
            flat.as_ref(),
            &q,
            ExecMode::Scalar,
            &mut ExecStats::new(),
        );
        for threads in [1usize, 4] {
            for mode in [ExecMode::Scalar, ExecMode::Vectorized] {
                let got = with_pool(threads, |pool| {
                    execute_morsels(
                        pool,
                        t.as_ref(),
                        std::slice::from_ref(&q),
                        0..t.num_rows(),
                        ScanShape::new(mode, 64),
                        &CancelToken::none(),
                    )
                });
                let (result, stats) = &got[0];
                // 500 rows at 64/partition = 8 partitions; rows < 100 live
                // in the first two (0..64, 64..128).
                assert_eq!(stats.partitions_scanned, 2);
                assert_eq!(stats.partitions_pruned, 6);
                assert_eq!(stats.rows_scanned, 128);
                assert_eq!(result.num_groups(), want.num_groups());
                for (a, b) in result.groups.iter().zip(&want.groups) {
                    assert_eq!(a.key, b.key);
                    assert_eq!(a.target, b.target);
                    assert_eq!(a.reference, b.reference);
                }
            }
        }
    }

    /// An already-expired token means no morsel is aggregated: workers
    /// see the expiry before their first claim, so nothing is scanned and
    /// the call returns immediately instead of running the full scan.
    #[test]
    fn expired_token_skips_all_morsels() {
        let t = table(501);
        let qs = queries(t.as_ref());
        let expired = CancelToken::after(std::time::Duration::ZERO);
        for threads in [1usize, 4] {
            let got = with_pool(threads, |pool| {
                execute_morsels(
                    pool,
                    t.as_ref(),
                    &qs,
                    0..t.num_rows(),
                    ScanShape::new(ExecMode::Vectorized, 16),
                    &expired,
                )
            });
            assert_eq!(got.len(), qs.len());
            for (result, stats) in &got {
                assert_eq!(result.num_groups(), 0, "threads {threads}");
                assert_eq!(stats.rows_scanned, 0, "threads {threads}");
            }
        }
    }

    /// A query whose contribution predicate prunes everything still returns
    /// a well-formed empty result.
    #[test]
    fn fully_pruned_job_finalizes_empty() {
        let mut b = TableBuilder::new(vec![ColumnDef::dim("d"), ColumnDef::measure("m")])
            .with_partition_rows(8);
        for i in 0..32 {
            b.push_row(&[Value::str("x"), Value::Float(i as f64)])
                .unwrap();
        }
        let t = b.build(StoreKind::Row).unwrap();
        let q = CombinedQuery::single(
            ColumnId(0),
            AggSpec::new(AggFunc::Count, ColumnId(1)),
            SplitSpec::TargetOnly(Predicate::NumCmp {
                col: ColumnId(1),
                op: CmpOp::Gt,
                value: 1000.0,
            }),
        );
        let got = with_pool(2, |pool| {
            execute_morsels(
                pool,
                t.as_ref(),
                std::slice::from_ref(&q),
                0..t.num_rows(),
                ScanShape::new(ExecMode::Vectorized, 4),
                &CancelToken::none(),
            )
        });
        let (result, stats) = &got[0];
        assert_eq!(result.num_groups(), 0);
        assert_eq!(stats.rows_scanned, 0);
        assert_eq!(stats.partitions_pruned, 4);
        assert_eq!(stats.partitions_scanned, 0);
        assert_eq!(stats.queries_issued, 1);
    }
}
