//! Aggregate functions and their mergeable accumulators.
//!
//! §2 of the paper: *"we denote by F the set of potential aggregate
//! functions over the measure attributes (e.g. COUNT, SUM, AVG)."* MIN and
//! MAX are included for completeness of the SQL surface.
//!
//! A single [`Accumulator`] carries enough state (count, sum, min, max) to
//! finalize *any* of the functions, and merges losslessly — the property
//! that makes the multi-GROUP-BY rollup, the phased partial execution,
//! *and* morsel-driven parallel execution correct.
//!
//! ## Order-invariant summation
//!
//! Naive `f64` addition is not associative, so a partition-and-merge
//! execution (phases, morsels, rollups) would drift from the serial result
//! by a few ULPs depending on where the partition boundaries fall. The
//! engine promises **bit-identical** results across execution shapes, so
//! SUM is kept as an exact Shewchuk-style expansion ([`ExactSum`], the
//! algorithm behind Python's `math.fsum`): the accumulator state represents
//! the *exact* real-number sum of everything fed in, and finalization
//! rounds it correctly once. The rounded value therefore depends only on
//! the multiset of inputs — never on accumulation or merge order. COUNT,
//! MIN, and MAX are order-invariant by nature; non-finite inputs are
//! tracked as flags (any NaN, or both infinities ⇒ NaN; one-sided
//! infinities saturate), which is again order-independent.

use std::fmt;
use std::str::FromStr;

/// SQL aggregate functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(m)` — number of non-NULL measure values.
    Count,
    /// `SUM(m)`.
    Sum,
    /// `AVG(m)`.
    Avg,
    /// `MIN(m)`.
    Min,
    /// `MAX(m)`.
    Max,
}

impl AggFunc {
    /// All functions, for sweeps.
    pub const ALL: [AggFunc; 5] = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
    ];

    /// SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AggFunc {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "COUNT" => Ok(AggFunc::Count),
            "SUM" => Ok(AggFunc::Sum),
            "AVG" => Ok(AggFunc::Avg),
            "MIN" => Ok(AggFunc::Min),
            "MAX" => Ok(AggFunc::Max),
            other => Err(format!("unknown aggregate function '{other}'")),
        }
    }
}

/// Error-free transformation: `a + b = s + err` exactly (Knuth's TwoSum,
/// branchless, magnitude order irrelevant). Produces the same `(s, err)`
/// values as the compare-and-swap fast-two-sum, so expansions built with it
/// are identical to CPython `fsum` partials and the proven rounding tail
/// applies unchanged.
#[inline(always)]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let err = (a - (s - bb)) + (b - bb);
    (s, err)
}

/// Number of expansion partials stored inline (no heap). Well-conditioned
/// data settles at one or two partials; three covers almost everything
/// else, and pathological exponent spreads spill to a heap vector.
const INLINE_PARTIALS: usize = 3;

/// Exact running sum of `f64` values: a Shewchuk expansion of
/// non-overlapping partials in increasing magnitude order, whose sum is the
/// exact real sum of all finite inputs, plus flags for non-finite inputs.
///
/// Each add is an error-free grow-expansion step (the algorithm behind
/// CPython's `math.fsum` — TwoSum against each partial, dropping zeros), so
/// the expansion stays short in practice and lives in the inline buffer on
/// the hot path.
///
/// **Overflow domain**: exactness — and therefore order-invariance — is
/// guaranteed while `Σ|xᵢ|` stays within `f64` range (a property of the
/// multiset, not of any particular order). Beyond that, where CPython's
/// `fsum` raises `OverflowError`, this accumulator saturates to ±∞ exactly
/// like naive IEEE summation would (the overflowing step's NaN residuals
/// are scrubbed, never exposed); which side saturates first can then depend
/// on partition boundaries, just as it depends on input order for a naive
/// sum. SeeDB measure data is ~600 orders of magnitude away from this
/// regime.
#[derive(Debug, Clone, Default)]
struct ExactSum {
    /// Inline partials `inline[..len]`, unused once spilled.
    inline: [f64; INLINE_PARTIALS],
    /// Live inline partial count (meaningless after spilling).
    len: u8,
    /// A `+∞` input was observed.
    pos_inf: bool,
    /// A `−∞` input was observed.
    neg_inf: bool,
    /// A NaN input was observed.
    nan: bool,
    /// Overflow storage once the expansion outgrows the inline buffer
    /// (sticky: never moves back inline; empty ⇔ not spilled, and a spilled
    /// expansion always keeps at least one partial).
    spill: Vec<f64>,
}

impl ExactSum {
    #[inline]
    fn add(&mut self, x: f64) {
        if x.is_finite() {
            // Hot path: zero or one live partials, inline.
            if self.spill.is_empty() && self.len <= 1 {
                if self.len == 0 {
                    self.inline[0] = x;
                    self.len = 1;
                    return;
                }
                let (hi, lo) = two_sum(self.inline[0], x);
                if !hi.is_finite() {
                    self.overflowed(hi);
                    return;
                }
                if lo == 0.0 {
                    self.inline[0] = hi;
                } else {
                    self.inline[0] = lo;
                    self.inline[1] = hi;
                    self.len = 2;
                }
                return;
            }
            self.add_general(x);
        } else if x.is_nan() {
            self.nan = true;
        } else if x > 0.0 {
            self.pos_inf = true;
        } else {
            self.neg_inf = true;
        }
    }

    /// Grow-expansion over two or more partials (inline or spilled).
    fn add_general(&mut self, mut x: f64) {
        if !self.spill.is_empty() {
            let mut i = 0;
            for j in 0..self.spill.len() {
                let (hi, lo) = two_sum(x, self.spill[j]);
                if lo != 0.0 {
                    self.spill[i] = lo;
                    i += 1;
                }
                x = hi;
            }
            if !x.is_finite() {
                self.spill.truncate(i);
                self.overflowed(x);
                return;
            }
            self.spill.truncate(i);
            self.spill.push(x);
            return;
        }
        if self.len == 2 {
            // The steady state for well-conditioned data ([error, sum]):
            // unrolled, branching only on which residuals survive.
            let (h0, l0) = two_sum(x, self.inline[0]);
            let (h1, l1) = two_sum(h0, self.inline[1]);
            if !h1.is_finite() {
                self.overflowed(h1);
                return;
            }
            match (l0 != 0.0, l1 != 0.0) {
                (false, false) => {
                    self.inline[0] = h1;
                    self.len = 1;
                }
                (true, false) => {
                    self.inline[0] = l0;
                    self.inline[1] = h1;
                }
                (false, true) => {
                    self.inline[0] = l1;
                    self.inline[1] = h1;
                }
                (true, true) => {
                    self.inline[0] = l0;
                    self.inline[1] = l1;
                    self.inline[2] = h1;
                    self.len = 3;
                }
            }
            return;
        }
        let len = self.len as usize;
        let mut i = 0;
        for j in 0..len {
            let (hi, lo) = two_sum(x, self.inline[j]);
            if lo != 0.0 {
                self.inline[i] = lo;
                i += 1;
            }
            x = hi;
        }
        if !x.is_finite() {
            self.len = i as u8;
            self.overflowed(x);
            return;
        }
        if i < INLINE_PARTIALS {
            self.inline[i] = x;
            self.len = (i + 1) as u8;
        } else {
            self.spill.reserve(2 * INLINE_PARTIALS);
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(x);
        }
    }

    /// An intermediate sum overflowed `f64` (only reachable once `Σ|xᵢ|`
    /// leaves the `f64` range): saturate like naive IEEE summation and
    /// scrub the overflowing step's non-finite residuals so no NaN partial
    /// ever lingers in the expansion.
    #[cold]
    fn overflowed(&mut self, top: f64) {
        if top.is_nan() {
            self.nan = true;
        } else if top > 0.0 {
            self.pos_inf = true;
        } else {
            self.neg_inf = true;
        }
        if self.spill.is_empty() {
            let mut k = 0;
            for j in 0..self.len as usize {
                let p = self.inline[j];
                if p.is_finite() {
                    self.inline[k] = p;
                    k += 1;
                }
            }
            self.len = k as u8;
        } else {
            self.spill.retain(|p| p.is_finite());
            if self.spill.is_empty() {
                // The scrub emptied the spill, flipping the storage back
                // to inline mode — the stale inline prefix must not
                // resurface as live partials.
                self.len = 0;
            }
        }
    }

    /// The live partials, wherever they are stored.
    fn partials(&self) -> &[f64] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    fn merge(&mut self, other: &ExactSum) {
        self.pos_inf |= other.pos_inf;
        self.neg_inf |= other.neg_inf;
        self.nan |= other.nan;
        for &p in other.partials() {
            self.add(p);
        }
    }

    /// Correctly-rounded value of the exact sum. Depends only on the
    /// multiset of inputs, not the order they were added or merged in.
    fn value(&self) -> f64 {
        if self.nan || (self.pos_inf && self.neg_inf) {
            return f64::NAN;
        }
        if self.pos_inf {
            return f64::INFINITY;
        }
        if self.neg_inf {
            return f64::NEG_INFINITY;
        }
        // Sum the partials from largest to smallest magnitude, stopping at
        // the first inexact step, then apply the round-half-even correction
        // (the `fsum` tail).
        let p = self.partials();
        let Some(&last) = p.last() else {
            return 0.0;
        };
        let mut n = p.len() - 1;
        let mut hi = last;
        let mut lo = 0.0;
        while n > 0 {
            let x = hi;
            n -= 1;
            let y = p[n];
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        if n > 0 && ((lo < 0.0 && p[n - 1] < 0.0) || (lo > 0.0 && p[n - 1] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

/// Mergeable aggregation state sufficient for every [`AggFunc`].
///
/// Equality compares *observable* state — count, the rounded sum, min, max
/// — not the internal expansion, so two accumulators that consumed the same
/// multiset of values through different partitions compare equal (and NaN
/// sums compare equal to NaN sums, which the equivalence suites rely on).
#[derive(Debug, Clone)]
pub struct Accumulator {
    /// Number of non-NULL values observed.
    pub count: u64,
    /// Exact sum of observed values.
    sum: ExactSum,
    /// Minimum observed value (`+inf` when empty).
    pub min: f64,
    /// Maximum observed value (`-inf` when empty).
    pub max: f64,
}

impl Default for Accumulator {
    fn default() -> Self {
        Accumulator {
            count: 0,
            sum: ExactSum::default(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl PartialEq for Accumulator {
    fn eq(&self, other: &Self) -> bool {
        let sum_eq = {
            let (a, b) = (self.sum.value(), other.sum.value());
            a == b || (a.is_nan() && b.is_nan())
        };
        self.count == other.count && sum_eq && self.min == other.min && self.max == other.max
    }
}

impl Accumulator {
    /// Fresh empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one measure value (`None` = NULL, ignored per SQL semantics).
    #[inline]
    pub fn update(&mut self, value: Option<f64>) {
        if let Some(x) = value {
            self.count += 1;
            self.sum.add(x);
            if x < self.min {
                self.min = x;
            }
            if x > self.max {
                self.max = x;
            }
        }
    }

    /// Merges another accumulator into this one (for rollups, cross-phase
    /// merging, and morsel-partial folding). Exact: the merged state equals
    /// the state of a single accumulator fed both input multisets, in any
    /// order.
    pub fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum.merge(&other.sum);
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// True if no value has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The correctly-rounded sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum.value()
    }

    /// Finalizes the accumulator under `func`. Returns `None` when the
    /// group saw no values and the function has no defined result
    /// (AVG/MIN/MAX of an empty set); `COUNT` and `SUM` of an empty set are
    /// 0, per SQL-on-groups semantics.
    pub fn finish(&self, func: AggFunc) -> Option<f64> {
        match func {
            AggFunc::Count => Some(self.count as f64),
            AggFunc::Sum => Some(self.sum.value()),
            AggFunc::Avg => {
                if self.count == 0 {
                    None
                } else {
                    Some(self.sum.value() / self.count as f64)
                }
            }
            AggFunc::Min => self
                .is_empty()
                .then_some(())
                .map_or(Some(self.min), |_| None),
            AggFunc::Max => self
                .is_empty()
                .then_some(())
                .map_or(Some(self.max), |_| None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_semantics() {
        let a = Accumulator::new();
        assert_eq!(a.finish(AggFunc::Count), Some(0.0));
        assert_eq!(a.finish(AggFunc::Sum), Some(0.0));
        assert_eq!(a.finish(AggFunc::Avg), None);
        assert_eq!(a.finish(AggFunc::Min), None);
        assert_eq!(a.finish(AggFunc::Max), None);
    }

    #[test]
    fn updates_feed_all_functions() {
        let mut a = Accumulator::new();
        for x in [3.0, -1.0, 4.0] {
            a.update(Some(x));
        }
        a.update(None); // NULL ignored
        assert_eq!(a.finish(AggFunc::Count), Some(3.0));
        assert_eq!(a.finish(AggFunc::Sum), Some(6.0));
        assert_eq!(a.finish(AggFunc::Avg), Some(2.0));
        assert_eq!(a.finish(AggFunc::Min), Some(-1.0));
        assert_eq!(a.finish(AggFunc::Max), Some(4.0));
    }

    #[test]
    fn merge_equals_sequential_updates() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut whole = Accumulator::new();
        for x in values {
            whole.update(Some(x));
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for x in &values[..2] {
            left.update(Some(*x));
        }
        for x in &values[2..] {
            right.update(Some(*x));
        }
        left.merge(&right);
        for f in AggFunc::ALL {
            assert_eq!(whole.finish(f), left.finish(f), "merge broke {f}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Accumulator::new();
        a.update(Some(7.0));
        let before = a.clone();
        a.merge(&Accumulator::new());
        assert_eq!(a, before);

        let mut empty = Accumulator::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn summation_is_bit_identical_across_partitions() {
        // Values chosen so naive left-to-right f64 addition differs by ULPs
        // from the re-associated (partitioned-and-merged) addition; the
        // exact accumulator must agree bitwise under every partitioning.
        let values: Vec<f64> = (0..257)
            .map(|i| {
                let x = (i as f64) * 0.1 - 11.7;
                x * (1.0 + (i % 13) as f64 * 1e-13)
            })
            .collect();
        // Sanity: the naive sums genuinely disagree, so this test has teeth.
        let naive_whole: f64 = values.iter().sum();
        let naive_split = values[..100].iter().sum::<f64>() + values[100..].iter().sum::<f64>();
        assert_ne!(naive_whole.to_bits(), naive_split.to_bits());

        let mut serial = Accumulator::new();
        for &x in &values {
            serial.update(Some(x));
        }
        for split_at in [1, 7, 100, 256] {
            let mut left = Accumulator::new();
            let mut right = Accumulator::new();
            for &x in &values[..split_at] {
                left.update(Some(x));
            }
            for &x in &values[split_at..] {
                right.update(Some(x));
            }
            left.merge(&right);
            assert_eq!(
                serial.finish(AggFunc::Sum).unwrap().to_bits(),
                left.finish(AggFunc::Sum).unwrap().to_bits(),
                "split at {split_at}"
            );
            assert_eq!(
                serial.finish(AggFunc::Avg).unwrap().to_bits(),
                left.finish(AggFunc::Avg).unwrap().to_bits(),
                "avg split at {split_at}"
            );
        }
        // Merge in the reverse order too: order must not matter.
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &values[..100] {
            left.update(Some(x));
        }
        for &x in &values[100..] {
            right.update(Some(x));
        }
        right.merge(&left);
        assert_eq!(
            serial.finish(AggFunc::Sum).unwrap().to_bits(),
            right.finish(AggFunc::Sum).unwrap().to_bits()
        );
    }

    #[test]
    fn non_finite_inputs_are_order_invariant() {
        let feed = |values: &[f64]| {
            let mut a = Accumulator::new();
            for &x in values {
                a.update(Some(x));
            }
            a.finish(AggFunc::Sum).unwrap()
        };
        // One-sided infinity saturates regardless of position.
        assert_eq!(feed(&[1.0, f64::INFINITY, 2.0]), f64::INFINITY);
        assert_eq!(feed(&[f64::INFINITY, 1.0, 2.0]), f64::INFINITY);
        assert_eq!(feed(&[1.0, f64::NEG_INFINITY]), f64::NEG_INFINITY);
        // Both infinities (or any NaN) poison the sum, in any order.
        assert!(feed(&[f64::INFINITY, f64::NEG_INFINITY, 1.0]).is_nan());
        assert!(feed(&[1.0, f64::NEG_INFINITY, f64::INFINITY]).is_nan());
        assert!(feed(&[f64::NAN, 1.0]).is_nan());
        // Merging non-finite partials behaves identically.
        let mut a = Accumulator::new();
        a.update(Some(f64::INFINITY));
        let mut b = Accumulator::new();
        b.update(Some(f64::NEG_INFINITY));
        a.merge(&b);
        assert!(a.finish(AggFunc::Sum).unwrap().is_nan());
        // Min/max ignore nothing: infinities participate normally.
        assert_eq!(a.finish(AggFunc::Min), Some(f64::NEG_INFINITY));
        assert_eq!(a.finish(AggFunc::Max), Some(f64::INFINITY));
    }

    #[test]
    fn intermediate_overflow_saturates_like_ieee_summation() {
        // Σ|xᵢ| exceeds the f64 range, so the exactness contract no longer
        // applies; the sum must saturate to ±∞ exactly as naive IEEE
        // addition would — never surface a NaN from the overflowing
        // TwoSum's residuals.
        let mut a = Accumulator::new();
        for x in [1e308, 1e308, -1e308] {
            a.update(Some(x));
        }
        assert_eq!(a.finish(AggFunc::Sum), Some(f64::INFINITY)); // == naive
                                                                 // Continues to behave after saturation; min/max/count unaffected.
        a.update(Some(5.0));
        assert_eq!(a.finish(AggFunc::Sum), Some(f64::INFINITY));
        assert_eq!(a.count, 4);
        assert_eq!(a.finish(AggFunc::Min), Some(-1e308));

        // Negative direction saturates to −∞.
        let mut b = Accumulator::new();
        for x in [-1e308, -1e308] {
            b.update(Some(x));
        }
        assert_eq!(b.finish(AggFunc::Sum), Some(f64::NEG_INFINITY));

        // Overflow in both directions poisons to NaN, like inf + -inf.
        b.merge(&a);
        assert!(b.finish(AggFunc::Sum).unwrap().is_nan());

        // Deeper expansions overflow safely too (spill + general paths).
        let mut c = Accumulator::new();
        for i in 0..64 {
            c.update(Some(1e300 * (1.0 + (i % 9) as f64 * 1e-13)));
            c.update(Some(1e30 + i as f64));
            c.update(Some(f64::MAX / 4.0));
        }
        assert_eq!(c.finish(AggFunc::Sum), Some(f64::INFINITY));
    }

    #[test]
    fn agg_func_parse_round_trip() {
        for f in AggFunc::ALL {
            assert_eq!(f.name().parse::<AggFunc>().unwrap(), f);
            assert_eq!(f.name().to_lowercase().parse::<AggFunc>().unwrap(), f);
        }
        assert!("MEDIAN".parse::<AggFunc>().is_err());
    }
}
