//! Aggregate functions and their mergeable accumulators.
//!
//! §2 of the paper: *"we denote by F the set of potential aggregate
//! functions over the measure attributes (e.g. COUNT, SUM, AVG)."* MIN and
//! MAX are included for completeness of the SQL surface.
//!
//! A single [`Accumulator`] carries enough state (count, sum, min, max) to
//! finalize *any* of the functions, and merges losslessly — the property
//! that makes both the multi-GROUP-BY rollup and the phased partial
//! execution correct.

use std::fmt;
use std::str::FromStr;

/// SQL aggregate functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(m)` — number of non-NULL measure values.
    Count,
    /// `SUM(m)`.
    Sum,
    /// `AVG(m)`.
    Avg,
    /// `MIN(m)`.
    Min,
    /// `MAX(m)`.
    Max,
}

impl AggFunc {
    /// All functions, for sweeps.
    pub const ALL: [AggFunc; 5] = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
    ];

    /// SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AggFunc {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "COUNT" => Ok(AggFunc::Count),
            "SUM" => Ok(AggFunc::Sum),
            "AVG" => Ok(AggFunc::Avg),
            "MIN" => Ok(AggFunc::Min),
            "MAX" => Ok(AggFunc::Max),
            other => Err(format!("unknown aggregate function '{other}'")),
        }
    }
}

/// Mergeable aggregation state sufficient for every [`AggFunc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accumulator {
    /// Number of non-NULL values observed.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Minimum observed value (`+inf` when empty).
    pub min: f64,
    /// Maximum observed value (`-inf` when empty).
    pub max: f64,
}

impl Default for Accumulator {
    fn default() -> Self {
        Accumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Accumulator {
    /// Fresh empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one measure value (`None` = NULL, ignored per SQL semantics).
    #[inline]
    pub fn update(&mut self, value: Option<f64>) {
        if let Some(x) = value {
            self.count += 1;
            self.sum += x;
            if x < self.min {
                self.min = x;
            }
            if x > self.max {
                self.max = x;
            }
        }
    }

    /// Merges another accumulator into this one (for rollups and
    /// cross-phase merging).
    pub fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// True if no value has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finalizes the accumulator under `func`. Returns `None` when the
    /// group saw no values and the function has no defined result
    /// (AVG/MIN/MAX of an empty set); `COUNT` and `SUM` of an empty set are
    /// 0, per SQL-on-groups semantics.
    pub fn finish(&self, func: AggFunc) -> Option<f64> {
        match func {
            AggFunc::Count => Some(self.count as f64),
            AggFunc::Sum => Some(self.sum),
            AggFunc::Avg => {
                if self.count == 0 {
                    None
                } else {
                    Some(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self
                .is_empty()
                .then_some(())
                .map_or(Some(self.min), |_| None),
            AggFunc::Max => self
                .is_empty()
                .then_some(())
                .map_or(Some(self.max), |_| None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_semantics() {
        let a = Accumulator::new();
        assert_eq!(a.finish(AggFunc::Count), Some(0.0));
        assert_eq!(a.finish(AggFunc::Sum), Some(0.0));
        assert_eq!(a.finish(AggFunc::Avg), None);
        assert_eq!(a.finish(AggFunc::Min), None);
        assert_eq!(a.finish(AggFunc::Max), None);
    }

    #[test]
    fn updates_feed_all_functions() {
        let mut a = Accumulator::new();
        for x in [3.0, -1.0, 4.0] {
            a.update(Some(x));
        }
        a.update(None); // NULL ignored
        assert_eq!(a.finish(AggFunc::Count), Some(3.0));
        assert_eq!(a.finish(AggFunc::Sum), Some(6.0));
        assert_eq!(a.finish(AggFunc::Avg), Some(2.0));
        assert_eq!(a.finish(AggFunc::Min), Some(-1.0));
        assert_eq!(a.finish(AggFunc::Max), Some(4.0));
    }

    #[test]
    fn merge_equals_sequential_updates() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut whole = Accumulator::new();
        for x in values {
            whole.update(Some(x));
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for x in &values[..2] {
            left.update(Some(*x));
        }
        for x in &values[2..] {
            right.update(Some(*x));
        }
        left.merge(&right);
        for f in AggFunc::ALL {
            assert_eq!(whole.finish(f), left.finish(f), "merge broke {f}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Accumulator::new();
        a.update(Some(7.0));
        let before = a;
        a.merge(&Accumulator::new());
        assert_eq!(a, before);

        let mut empty = Accumulator::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn agg_func_parse_round_trip() {
        for f in AggFunc::ALL {
            assert_eq!(f.name().parse::<AggFunc>().unwrap(), f);
            assert_eq!(f.name().to_lowercase().parse::<AggFunc>().unwrap(), f);
        }
        assert!("MEDIAN".parse::<AggFunc>().is_err());
    }
}
