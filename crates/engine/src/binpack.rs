//! Bin packing of group-by attributes under a memory budget.
//!
//! Problem 4.1 of the paper: divide the dimension attributes into groups
//! `A₁, …, A_l` such that a query grouping by any `A_i` keeps its distinct
//! -group count under the memory budget `𝓜`. With item weight
//! `log₂|a_i|` and bin capacity `log₂𝓜`, this is exactly bin packing; the
//! paper uses the standard **first-fit** algorithm, with first-fit-
//! decreasing provided for ablation (Fig 8b compares packing policies).

use seedb_storage::{ColumnId, Table};

/// A grouping plan: each inner vector is one combined query's group-by set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupingPlan {
    /// The attribute groups `A₁, …, A_l`.
    pub bins: Vec<Vec<ColumnId>>,
    /// The memory budget (max distinct groups per query) the plan respects.
    pub budget: usize,
}

impl GroupingPlan {
    /// Total number of attributes across all bins.
    pub fn num_attributes(&self) -> usize {
        self.bins.iter().map(Vec::len).sum()
    }

    /// Verifies every bin's group-count upper bound is within budget
    /// (single-attribute bins are always allowed: they cannot be split
    /// further, matching the paper's treatment of oversized attributes).
    pub fn respects_budget(&self, table: &dyn Table) -> bool {
        self.bins
            .iter()
            .all(|bin| bin.len() == 1 || bin_group_bound(table, bin) <= self.budget)
    }
}

/// `∏ |a_i|` over a bin, saturating.
pub fn bin_group_bound(table: &dyn Table, bin: &[ColumnId]) -> usize {
    bin.iter()
        .map(|c| table.distinct_count(*c))
        .fold(1usize, |acc, d| acc.saturating_mul(d))
}

/// First-fit bin packing of `attrs` with weights `log₂|a_i|` into bins of
/// capacity `log₂ budget`.
///
/// Attributes whose own cardinality exceeds the budget get a dedicated bin
/// (they must still be queried; they simply cannot be combined).
pub fn first_fit(table: &dyn Table, attrs: &[ColumnId], budget: usize) -> GroupingPlan {
    pack(table, attrs, budget)
}

/// First-fit-decreasing: sorts attributes by descending weight first, which
/// classically wastes less capacity. Exposed for the packing-policy ablation.
pub fn first_fit_decreasing(table: &dyn Table, attrs: &[ColumnId], budget: usize) -> GroupingPlan {
    let mut sorted: Vec<ColumnId> = attrs.to_vec();
    sorted.sort_by(|a, b| {
        table
            .distinct_count(*b)
            .cmp(&table.distinct_count(*a))
            .then(a.cmp(b))
    });
    pack(table, &sorted, budget)
}

fn pack(table: &dyn Table, attrs: &[ColumnId], budget: usize) -> GroupingPlan {
    let budget = budget.max(1);
    let capacity = (budget as f64).log2();
    let mut bins: Vec<Vec<ColumnId>> = Vec::new();
    let mut loads: Vec<f64> = Vec::new();
    // Exact distinct-count product per bin. The accumulated `log2` load is
    // only a heuristic: its rounding error plus the `1e-9` comparison
    // tolerance can admit a bin whose true group-count product exceeds the
    // budget, so every placement is additionally validated against the
    // exact (saturating) product — the same quantity `bin_group_bound`
    // checks after the fact.
    let mut products: Vec<usize> = Vec::new();

    for &attr in attrs {
        let distinct = table.distinct_count(attr);
        let weight = (distinct as f64).log2();
        if weight > capacity {
            // Oversized attribute: dedicated bin, not combinable.
            bins.push(vec![attr]);
            loads.push(f64::INFINITY);
            products.push(distinct);
            continue;
        }
        // First fit: place in the first bin with room, where "room" means
        // both the float load heuristic and the exact product bound hold.
        let fit = (0..bins.len()).find(|&i| {
            loads[i] + weight <= capacity + 1e-9 && products[i].saturating_mul(distinct) <= budget
        });
        match fit {
            Some(i) => {
                bins[i].push(attr);
                loads[i] += weight;
                products[i] = products[i].saturating_mul(distinct);
            }
            None => {
                bins.push(vec![attr]);
                loads.push(weight);
                products.push(distinct);
            }
        }
    }
    GroupingPlan { bins, budget }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedb_storage::{BoxedTable, ColumnDef, StoreKind, TableBuilder, Value};

    /// Builds a table whose dimension columns have the given cardinalities.
    fn table_with_cardinalities(cards: &[usize]) -> BoxedTable {
        let defs: Vec<ColumnDef> = (0..cards.len())
            .map(|i| ColumnDef::dim(format!("d{i}")))
            .collect();
        let mut b = TableBuilder::new(defs);
        let max_card = cards.iter().copied().max().unwrap_or(1);
        for row in 0..max_card {
            let values: Vec<Value> = cards
                .iter()
                .map(|&c| Value::str(format!("v{}", row % c)))
                .collect();
            b.push_row(&values).unwrap();
        }
        b.build(StoreKind::Column).unwrap()
    }

    fn ids(n: usize) -> Vec<ColumnId> {
        (0..n).map(|i| ColumnId(i as u32)).collect()
    }

    #[test]
    fn all_attributes_are_packed_exactly_once() {
        let t = table_with_cardinalities(&[10, 10, 10, 10, 10]);
        let plan = first_fit(t.as_ref(), &ids(5), 10_000);
        assert_eq!(plan.num_attributes(), 5);
        let mut seen: Vec<ColumnId> = plan.bins.iter().flatten().copied().collect();
        seen.sort();
        assert_eq!(seen, ids(5));
    }

    #[test]
    fn budget_10k_packs_four_card10_attrs_per_bin() {
        // 10^4 = 10000 <= budget, 10^5 > budget.
        let t = table_with_cardinalities(&[10; 8]);
        let plan = first_fit(t.as_ref(), &ids(8), 10_000);
        assert!(plan.respects_budget(t.as_ref()));
        assert_eq!(plan.bins.len(), 2);
        assert_eq!(plan.bins[0].len(), 4);
        assert_eq!(plan.bins[1].len(), 4);
    }

    #[test]
    fn tiny_budget_forces_singletons() {
        // COL-store budget of 100 with cardinality-100 attrs: each bin holds
        // exactly one attribute.
        let t = table_with_cardinalities(&[100, 100, 100]);
        let plan = first_fit(t.as_ref(), &ids(3), 100);
        assert_eq!(plan.bins.len(), 3);
        assert!(plan.bins.iter().all(|b| b.len() == 1));
        assert!(plan.respects_budget(t.as_ref()));
    }

    #[test]
    fn oversized_attribute_gets_own_bin() {
        let t = table_with_cardinalities(&[1000, 2, 2]);
        let plan = first_fit(t.as_ref(), &ids(3), 100);
        // d0 (card 1000 > 100) must be alone; d1,d2 can combine (2*2=4 <= 100).
        let big_bin = plan.bins.iter().find(|b| b.contains(&ColumnId(0))).unwrap();
        assert_eq!(big_bin.len(), 1);
        assert!(plan.respects_budget(t.as_ref()));
        assert_eq!(plan.num_attributes(), 3);
    }

    #[test]
    fn every_bin_respects_budget_product() {
        let t = table_with_cardinalities(&[3, 7, 11, 13, 2, 5]);
        for budget in [10, 100, 1000, 10_000] {
            let plan = first_fit(t.as_ref(), &ids(6), budget);
            assert!(
                plan.respects_budget(t.as_ref()),
                "budget {budget}: {plan:?}"
            );
            assert_eq!(plan.num_attributes(), 6);
        }
    }

    #[test]
    fn ffd_never_uses_more_bins_than_ff_on_these_inputs() {
        let t = table_with_cardinalities(&[50, 3, 40, 4, 30, 5, 20, 6]);
        for budget in [100, 500, 2000] {
            let ff = first_fit(t.as_ref(), &ids(8), budget);
            let ffd = first_fit_decreasing(t.as_ref(), &ids(8), budget);
            assert!(ffd.bins.len() <= ff.bins.len(), "budget {budget}");
            assert!(ffd.respects_budget(t.as_ref()));
        }
    }

    #[test]
    fn float_tolerance_cannot_admit_over_budget_products() {
        // Regression: with cardinalities 55556 × 54000 the exact group
        // bound is 3_000_024_000, one over this budget — but the rounded
        // `log2` weights sum to within the 1e-9 comparison tolerance of
        // the capacity (log2(product/budget) ≈ 4.8e-10), so the float
        // heuristic alone would pack both attributes into one bin. The
        // exact-product validation must keep them apart.
        let t = table_with_cardinalities(&[55556, 54000]);
        let budget = 3_000_023_999usize;
        let w0 = (t.distinct_count(ColumnId(0)) as f64).log2();
        let w1 = (t.distinct_count(ColumnId(1)) as f64).log2();
        assert!(
            w0 + w1 <= (budget as f64).log2() + 1e-9,
            "test premise: float heuristic admits the pair"
        );
        assert!(bin_group_bound(t.as_ref(), &ids(2)) > budget);

        let plan = first_fit(t.as_ref(), &ids(2), budget);
        assert_eq!(plan.bins.len(), 2, "over-budget pair must be split");
        assert_eq!(plan.num_attributes(), 2);
        assert!(plan.respects_budget(t.as_ref()));
    }

    #[test]
    fn budget_one_is_sane() {
        let t = table_with_cardinalities(&[2, 2]);
        let plan = first_fit(t.as_ref(), &ids(2), 1);
        assert_eq!(plan.num_attributes(), 2);
        assert!(plan.bins.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn empty_attribute_list_gives_empty_plan() {
        let t = table_with_cardinalities(&[2]);
        let plan = first_fit(t.as_ref(), &[], 100);
        assert!(plan.bins.is_empty());
        assert_eq!(plan.num_attributes(), 0);
    }
}
