//! Grouped aggregation with target/reference splitting.
//!
//! [`PartialAggregation`] is the phase-aware operator at the heart of the
//! engine: it can consume any number of row ranges (the phased framework
//! feeds it one partition per phase) and produce a consistent snapshot
//! after each. [`execute_combined`] is the one-shot convenience wrapper.
//!
//! Two execution modes share one accumulator representation
//! ([`crate::ExecMode`]):
//!
//! * **Scalar** — the original row-at-a-time path: `Table::scan_range`
//!   yields a `Cell` slice per row and every row pays a hash lookup.
//! * **Vectorized** (default) — `Table::scan_batches` yields typed column
//!   slices; predicates evaluate to selection bitmaps
//!   ([`BoundPredicate::eval_batch`]), and group lookups go through a
//!   **dense index** whenever the grouping domain fits
//!   [`DENSE_CARDINALITY_MAX`]: dictionary-direct for single-attribute
//!   group-bys, **mixed-radix composite** for bin-packed multi-GROUP-BY
//!   clusters (per-attribute codes encode into one slot index — no
//!   `GroupKey` allocation, no hash probe per row). Stray codes spill to
//!   the hash map; non-categorical attributes and oversized domains keep
//!   the hash path.
//!
//! Both modes consume rows in the same order, and partials
//! ([`PartialAggregation::merge`]) fold exactly, so results are
//! bit-identical across modes, phase partitions, and morsel-parallel
//! execution — a property the equivalence test suites assert exactly.

use crate::agg::Accumulator;
use crate::expr::BoundPredicate;
use crate::groupkey::GroupKey;
use crate::spec::{CombinedQuery, SplitSpec};
use crate::stats::ExecStats;
use crate::{ExecMode, GroupEntry, GroupedResult};
use rustc_hash::FxHashMap;
use seedb_storage::{Batch, Bitmap, ColumnId, Table, DEFAULT_BATCH_SIZE};
use std::ops::Range;

/// Largest dictionary cardinality for which the vectorized path uses the
/// dense dictionary-direct group index. Beyond this (64 Ki distinct
/// values), a mostly-empty dense table would waste more cache than the
/// hash probes it avoids, so the engine falls back to hashing. The
/// decision rule itself lives in [`crate::cost::choose_group_index`] so
/// the planner's EXPLAIN output reports the engine's literal choice.
pub use crate::cost::DENSE_CARDINALITY_MAX;
use crate::cost::{group_index_for, GroupIndexKind};

/// Split predicates bound to projection slots.
// Variant names deliberately mirror the public `SplitSpec` they are
// lowered from, paper terminology included.
#[allow(clippy::enum_variant_names)]
enum BoundSplit {
    TargetVsAll(BoundPredicate),
    TargetVsComplement(BoundPredicate),
    TargetVsQuery(BoundPredicate, BoundPredicate),
    TargetOnly(BoundPredicate),
}

impl BoundSplit {
    /// Classifies a row: `(is_target, is_reference)`.
    #[inline]
    fn classify(&self, cells: &[seedb_storage::Cell]) -> (bool, bool) {
        match self {
            BoundSplit::TargetVsAll(p) => (p.eval(cells), true),
            BoundSplit::TargetVsComplement(p) => {
                let t = p.eval(cells);
                (t, !t)
            }
            BoundSplit::TargetVsQuery(t, r) => (t.eval(cells), r.eval(cells)),
            BoundSplit::TargetOnly(p) => (p.eval(cells), false),
        }
    }

    /// Vectorized classification: fills per-row `target`/`reference`
    /// selection bitmaps for a whole batch.
    fn classify_batch(&self, batch: &Batch<'_>, target: &mut Bitmap, reference: &mut Bitmap) {
        let n = batch.len();
        match self {
            BoundSplit::TargetVsAll(p) => {
                p.eval_batch(batch, target);
                reference.reset(n, true);
            }
            BoundSplit::TargetVsComplement(p) => {
                p.eval_batch(batch, target);
                reference.copy_from(target);
                reference.invert();
            }
            BoundSplit::TargetVsQuery(t, r) => {
                t.eval_batch(batch, target);
                r.eval_batch(batch, reference);
            }
            BoundSplit::TargetOnly(p) => {
                p.eval_batch(batch, target);
                reference.reset(n, false);
            }
        }
    }
}

/// One grouping attribute's place in a composite (mixed-radix) dense
/// index: `base` radix values per attribute (dictionary cardinality + 1
/// for the NULL slot) and the attribute's positional `stride`.
#[derive(Debug, Clone, Copy)]
struct RadixDim {
    base: u64,
    stride: u64,
}

/// Mixed-radix slot of a code tuple, or `None` when any code falls outside
/// its planned radix (a stray code — e.g. from a different table instance —
/// which must spill to the hash map instead).
#[inline]
fn composite_slot(dims: &[RadixDim], codes: &[u64]) -> Option<usize> {
    let mut slot = 0u64;
    for (d, &code) in dims.iter().zip(codes) {
        // NULL (code u64::MAX) owns sub-slot 0; code c owns c + 1.
        let sub = if code == u64::MAX { 0 } else { code + 1 };
        if sub >= d.base {
            return None;
        }
        slot += sub * d.stride;
    }
    Some(slot as usize)
}

/// Group-index strategy of the vectorized path.
enum DenseIndex {
    /// Not yet decided (no batch seen); resolved on the first update.
    Undecided,
    /// Hash lookups (non-categorical attribute or cardinality above
    /// [`DENSE_CARDINALITY_MAX`]).
    Disabled,
    /// Single-attribute dictionary-direct index: `slots[code + 1]` holds
    /// `entry_index + 1` (0 = group not yet observed); `slots[0]` is the
    /// NULL group's slot. Grows on demand for codes past the planning-time
    /// dictionary, up to the dense cap.
    Single { slots: Vec<u32> },
    /// Composite dense index for bin-packed multi-GROUP-BY clusters: the
    /// per-attribute dictionary codes are mixed-radix-encoded into one slot
    /// index (`Σ (codeᵢ + 1) · strideᵢ`, NULL = 0). Fixed-size — codes
    /// beyond an attribute's planned radix spill to the hash map.
    Composite {
        slots: Vec<u32>,
        dims: Vec<RadixDim>,
    },
}

/// Accumulated state of one group.
struct GroupState {
    key: GroupKey,
    target: Vec<Accumulator>,
    reference: Vec<Accumulator>,
}

impl GroupState {
    fn new(key: GroupKey, n_aggs: usize) -> Self {
        GroupState {
            key,
            target: vec![Accumulator::new(); n_aggs],
            reference: vec![Accumulator::new(); n_aggs],
        }
    }
}

/// Resumable grouped aggregation over a [`CombinedQuery`].
pub struct PartialAggregation {
    query: CombinedQuery,
    projection: Vec<ColumnId>,
    group_slots: Vec<usize>,
    measure_slots: Vec<usize>,
    filter: Option<BoundPredicate>,
    split: BoundSplit,
    mode: ExecMode,
    map: FxHashMap<GroupKey, u32>,
    dense: DenseIndex,
    entries: Vec<GroupState>,
    rows_consumed: u64,
    target_rows: u64,
}

impl PartialAggregation {
    /// Plans the projection and binds predicates for `query`, executing in
    /// the default [`ExecMode`].
    pub fn new(query: CombinedQuery) -> Self {
        Self::with_mode(query, ExecMode::default())
    }

    /// [`PartialAggregation::new`] with an explicit execution mode.
    pub fn with_mode(query: CombinedQuery, mode: ExecMode) -> Self {
        // Projection = group-by columns ++ measure columns ++ predicate
        // columns, deduplicated in that order.
        let mut projection: Vec<ColumnId> = Vec::new();
        let push = |c: ColumnId, projection: &mut Vec<ColumnId>| {
            if !projection.contains(&c) {
                projection.push(c);
            }
        };
        for &c in &query.group_by {
            push(c, &mut projection);
        }
        for a in &query.aggregates {
            push(a.measure, &mut projection);
        }
        let mut pred_cols = Vec::new();
        if let Some(f) = &query.filter {
            f.collect_columns(&mut pred_cols);
        }
        for p in query.split.predicates() {
            p.collect_columns(&mut pred_cols);
        }
        for c in pred_cols {
            push(c, &mut projection);
        }

        let slot_of = |col: ColumnId| -> usize {
            projection
                .iter()
                .position(|&c| c == col)
                .expect("column present in projection by construction")
        };
        let group_slots: Vec<usize> = query.group_by.iter().map(|&c| slot_of(c)).collect();
        let measure_slots: Vec<usize> = query
            .aggregates
            .iter()
            .map(|a| slot_of(a.measure))
            .collect();
        let filter = query.filter.as_ref().map(|f| f.bind(&slot_of));
        let split = match &query.split {
            SplitSpec::TargetVsAll(p) => BoundSplit::TargetVsAll(p.bind(&slot_of)),
            SplitSpec::TargetVsComplement(p) => BoundSplit::TargetVsComplement(p.bind(&slot_of)),
            SplitSpec::TargetVsQuery { target, reference } => {
                BoundSplit::TargetVsQuery(target.bind(&slot_of), reference.bind(&slot_of))
            }
            SplitSpec::TargetOnly(p) => BoundSplit::TargetOnly(p.bind(&slot_of)),
        };

        PartialAggregation {
            query,
            projection,
            group_slots,
            measure_slots,
            filter,
            split,
            mode,
            map: FxHashMap::default(),
            dense: DenseIndex::Undecided,
            entries: Vec::new(),
            rows_consumed: 0,
            target_rows: 0,
        }
    }

    /// The query this aggregation executes.
    pub fn query(&self) -> &CombinedQuery {
        &self.query
    }

    /// The execution mode this aggregation runs in.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Total rows consumed so far (across all `update` calls).
    pub fn rows_consumed(&self) -> u64 {
        self.rows_consumed
    }

    /// Rows so far that were classified as target rows.
    pub fn target_rows(&self) -> u64 {
        self.target_rows
    }

    /// Number of groups currently maintained (the memory-budget quantity).
    pub fn num_groups(&self) -> usize {
        self.entries.len()
    }

    /// Consumes rows `range` of `table`, updating accumulators and `stats`.
    pub fn update(&mut self, table: &dyn Table, range: Range<usize>, stats: &mut ExecStats) {
        match self.mode {
            ExecMode::Scalar => self.update_scalar(table, range, stats),
            ExecMode::Vectorized => self.update_vectorized(table, range, stats),
        }
    }

    /// Row-at-a-time update through [`Table::scan_range`].
    fn update_scalar(&mut self, table: &dyn Table, range: Range<usize>, stats: &mut ExecStats) {
        let n_aggs = self.query.aggregates.len();
        let proj_width = self.projection.len();
        let start = range.start.min(table.num_rows());
        let end = range.end.min(table.num_rows());

        // Split borrows so the closure can touch disjoint fields.
        let map = &mut self.map;
        let entries = &mut self.entries;
        let group_slots = &self.group_slots;
        let measure_slots = &self.measure_slots;
        let filter = &self.filter;
        let split = &self.split;

        let mut codes: Vec<u64> = vec![0; group_slots.len()];
        let mut rows = 0u64;
        let mut target_rows = 0u64;

        table.scan_range(&self.projection, start..end, &mut |cells| {
            rows += 1;
            if let Some(f) = filter {
                if !f.eval(cells) {
                    return;
                }
            }
            let (is_target, is_ref) = split.classify(cells);
            if !is_target && !is_ref {
                return;
            }
            if is_target {
                target_rows += 1;
            }
            for (dst, &slot) in codes.iter_mut().zip(group_slots) {
                *dst = cells[slot].group_code();
            }
            let key = GroupKey::from_codes(&codes);
            let idx = match map.get(&key) {
                Some(&i) => i as usize,
                None => {
                    let i = entries.len();
                    map.insert(key.clone(), i as u32);
                    entries.push(GroupState {
                        key,
                        target: vec![Accumulator::new(); n_aggs],
                        reference: vec![Accumulator::new(); n_aggs],
                    });
                    i
                }
            };
            let entry = &mut entries[idx];
            for (agg_idx, &slot) in measure_slots.iter().enumerate() {
                let v = cells[slot].as_f64();
                if is_target {
                    entry.target[agg_idx].update(v);
                }
                if is_ref {
                    entry.reference[agg_idx].update(v);
                }
            }
        });

        self.rows_consumed += rows;
        self.target_rows += target_rows;
        stats.scan_passes += 1;
        stats.rows_scanned += rows;
        stats.cells_visited += rows * proj_width as u64;
        stats.groups_max = stats.groups_max.max(self.entries.len() as u64);
    }

    /// Picks the vectorized path's group index on the first batch:
    ///
    /// * one categorical attribute of cardinality ≤
    ///   [`DENSE_CARDINALITY_MAX`] → the growable single-attribute
    ///   dictionary-direct index;
    /// * several attributes, all dictionary-encoded, whose mixed-radix
    ///   domain `Π (|aᵢ| + 1)` fits the dense cap → the composite
    ///   dense index (the bin-packed cluster case: the §4.1 memory budget
    ///   already bounds `Π |aᵢ|`, so packed clusters qualify whenever the
    ///   budget is within the cap);
    /// * anything else → hash lookups.
    fn ensure_group_index(&mut self, table: &dyn Table) {
        if !matches!(self.dense, DenseIndex::Undecided) {
            return;
        }
        // The dense-vs-hash decision is the cost model's — the planner
        // calls the same function, so EXPLAIN can never disagree with what
        // actually runs. This method only materializes the chosen index.
        self.dense = match group_index_for(table, &self.query.group_by) {
            GroupIndexKind::DenseSingle => {
                let d = table
                    .dictionary(self.query.group_by[0])
                    .expect("DenseSingle implies a dictionary");
                DenseIndex::Single {
                    // Slot 0 is the NULL group; code c maps to slot c + 1.
                    slots: vec![0; d.len() + 1],
                }
            }
            GroupIndexKind::DenseComposite => {
                let bases: Vec<u64> = self
                    .query
                    .group_by
                    .iter()
                    .map(|&col| {
                        table
                            .dictionary(col)
                            .expect("DenseComposite implies dictionaries")
                            .len() as u64
                            + 1 // + NULL slot
                    })
                    .collect();
                // Last attribute varies fastest (row-major radix layout);
                // the final stride is the full domain Π (|aᵢ| + 1).
                let mut dims = vec![RadixDim { base: 0, stride: 0 }; bases.len()];
                let mut stride = 1u64;
                for (i, &base) in bases.iter().enumerate().rev() {
                    dims[i] = RadixDim { base, stride };
                    stride *= base;
                }
                DenseIndex::Composite {
                    slots: vec![0; stride as usize],
                    dims,
                }
            }
            GroupIndexKind::Hash => DenseIndex::Disabled,
        };
    }

    /// Batched update through [`Table::scan_batches`]: per-batch selection
    /// bitmaps, then a tight per-row accumulation loop over typed slices.
    /// Row order matches the scalar path exactly, so results are
    /// bit-identical.
    fn update_vectorized(&mut self, table: &dyn Table, range: Range<usize>, stats: &mut ExecStats) {
        let n_aggs = self.query.aggregates.len();
        let proj_width = self.projection.len();
        let start = range.start.min(table.num_rows());
        let end = range.end.min(table.num_rows());

        self.ensure_group_index(table);

        // Split borrows so the closure can touch disjoint fields.
        let map = &mut self.map;
        let dense = &mut self.dense;
        let entries = &mut self.entries;
        let group_slots = &self.group_slots;
        let measure_slots = &self.measure_slots;
        let filter = &self.filter;
        let split = &self.split;

        let mut rows = 0u64;
        let mut target_rows = 0u64;

        // Per-batch scratch, reused across batches.
        let mut t_bits = Bitmap::new();
        let mut r_bits = Bitmap::new();
        let mut f_bits = Bitmap::new();
        let mut codes: Vec<u64> = vec![0; group_slots.len()];

        table.scan_batches(
            &self.projection,
            start..end,
            DEFAULT_BATCH_SIZE,
            &mut |batch| {
                let n = batch.len();
                rows += n as u64;

                split.classify_batch(batch, &mut t_bits, &mut r_bits);
                if let Some(f) = filter {
                    f.eval_batch(batch, &mut f_bits);
                    t_bits.and_assign(&f_bits);
                    r_bits.and_assign(&f_bits);
                }

                // Hoist each measure's typed slice when it is a dense
                // `f64` column (the overwhelmingly common measure shape) so
                // the per-row loop skips the `BatchData` dispatch.
                let measures: Vec<(usize, Option<&[f64]>)> = measure_slots
                    .iter()
                    .map(|&slot| {
                        let col = batch.column(slot);
                        let fast = match (col.data, col.validity) {
                            (seedb_storage::BatchData::Float(v), None) => Some(v),
                            _ => None,
                        };
                        (slot, fast)
                    })
                    .collect();
                let visit = |entries: &mut Vec<GroupState>,
                             i: usize,
                             entry_idx: usize,
                             is_t: bool,
                             is_r: bool| {
                    let entry = &mut entries[entry_idx];
                    for (agg_idx, &(slot, fast)) in measures.iter().enumerate() {
                        let v = match fast {
                            Some(values) => Some(values[i]),
                            None => batch.column(slot).value_f64(i),
                        };
                        if is_t {
                            entry.target[agg_idx].update(v);
                        }
                        if is_r {
                            entry.reference[agg_idx].update(v);
                        }
                    }
                };

                match dense {
                    DenseIndex::Single { slots } => {
                        // Dense dictionary-direct path: one group attribute,
                        // entry index looked up by dictionary code. The common
                        // case — a dense categorical batch slice — reads codes
                        // straight from the slice without per-row dispatch.
                        let gcol = *batch.column(group_slots[0]);
                        let cat_codes = match (gcol.data, gcol.validity) {
                            (seedb_storage::BatchData::Cat(v), None) => Some(v),
                            _ => None,
                        };
                        for_each_selected(&t_bits, &r_bits, |i, is_t, is_r| {
                            if is_t {
                                target_rows += 1;
                            }
                            let code = match cat_codes {
                                Some(v) => v[i] as u64,
                                None => gcol.group_code(i),
                            };
                            let si = if code == u64::MAX {
                                0
                            } else {
                                code as usize + 1
                            };
                            let entry_idx = if si <= DENSE_CARDINALITY_MAX + 1 {
                                if si >= slots.len() {
                                    // A code beyond the planning-time dictionary
                                    // (e.g. a different table instance): grow,
                                    // bounded by the dense cardinality cap.
                                    slots.resize(si + 1, 0);
                                }
                                match slots[si] {
                                    0 => {
                                        let idx = entries.len();
                                        slots[si] = idx as u32 + 1;
                                        entries.push(GroupState::new(GroupKey::One(code), n_aggs));
                                        idx
                                    }
                                    v => v as usize - 1,
                                }
                            } else {
                                // A stray code past the dense cap must not
                                // force a huge, mostly-empty dense table:
                                // overflow such groups into the hash map (keys
                                // stay disjoint — the dense table owns every
                                // code at or below the cap).
                                let key = GroupKey::One(code);
                                match map.get(&key) {
                                    Some(&idx) => idx as usize,
                                    None => {
                                        let idx = entries.len();
                                        map.insert(key, idx as u32);
                                        entries.push(GroupState::new(GroupKey::One(code), n_aggs));
                                        idx
                                    }
                                }
                            };
                            visit(entries, i, entry_idx, is_t, is_r);
                        });
                    }
                    DenseIndex::Composite { slots, dims } => {
                        // Composite dense path: the bin-packed multi-GROUP-BY
                        // cluster. Per-attribute codes are mixed-radix-encoded
                        // into one slot — no `GroupKey` allocation and no hash
                        // probe per row. Stray codes (outside an attribute's
                        // planned radix) spill to the hash map; the two key
                        // spaces are disjoint because the dense table owns
                        // exactly the in-radix tuples.
                        for_each_selected(&t_bits, &r_bits, |i, is_t, is_r| {
                            if is_t {
                                target_rows += 1;
                            }
                            for (dst, &slot) in codes.iter_mut().zip(group_slots) {
                                *dst = batch.column(slot).group_code(i);
                            }
                            let entry_idx = match composite_slot(dims, &codes) {
                                Some(si) => match slots[si] {
                                    0 => {
                                        let idx = entries.len();
                                        slots[si] = idx as u32 + 1;
                                        entries.push(GroupState::new(
                                            GroupKey::from_codes(&codes),
                                            n_aggs,
                                        ));
                                        idx
                                    }
                                    v => v as usize - 1,
                                },
                                None => {
                                    let key = GroupKey::from_codes(&codes);
                                    match map.get(&key) {
                                        Some(&idx) => idx as usize,
                                        None => {
                                            let idx = entries.len();
                                            map.insert(key.clone(), idx as u32);
                                            entries.push(GroupState::new(key, n_aggs));
                                            idx
                                        }
                                    }
                                }
                            };
                            visit(entries, i, entry_idx, is_t, is_r);
                        });
                    }
                    DenseIndex::Disabled | DenseIndex::Undecided => {
                        // Hash path (non-dense attribute or oversized domain).
                        for_each_selected(&t_bits, &r_bits, |i, is_t, is_r| {
                            if is_t {
                                target_rows += 1;
                            }
                            for (dst, &slot) in codes.iter_mut().zip(group_slots) {
                                *dst = batch.column(slot).group_code(i);
                            }
                            let key = GroupKey::from_codes(&codes);
                            let entry_idx = match map.get(&key) {
                                Some(&idx) => idx as usize,
                                None => {
                                    let idx = entries.len();
                                    map.insert(key.clone(), idx as u32);
                                    entries.push(GroupState::new(key, n_aggs));
                                    idx
                                }
                            };
                            visit(entries, i, entry_idx, is_t, is_r);
                        });
                    }
                }
            },
        );

        self.rows_consumed += rows;
        self.target_rows += target_rows;
        stats.scan_passes += 1;
        stats.rows_scanned += rows;
        stats.cells_visited += rows * proj_width as u64;
        stats.groups_max = stats.groups_max.max(self.entries.len() as u64);
    }

    /// Looks up (or creates) the entry for `key`, routing through whichever
    /// group index this aggregation runs — the merge-path twin of the
    /// per-row lookups in `update_vectorized`. Dense-vs-hash ownership is
    /// identical to the update path, so merging partials that used the same
    /// plan keeps the two key spaces disjoint.
    fn entry_index_for_key(&mut self, key: &GroupKey, n_aggs: usize) -> usize {
        let dense_slot = match &self.dense {
            DenseIndex::Single { .. } => {
                let code = key.code(0);
                let si = if code == u64::MAX {
                    0
                } else {
                    code as usize + 1
                };
                (si <= DENSE_CARDINALITY_MAX + 1).then_some(si)
            }
            DenseIndex::Composite { dims, .. } => {
                let codes: Vec<u64> = (0..key.arity()).map(|i| key.code(i)).collect();
                composite_slot(dims, &codes)
            }
            DenseIndex::Disabled | DenseIndex::Undecided => None,
        };
        match (&mut self.dense, dense_slot) {
            (DenseIndex::Single { slots }, Some(si)) => {
                if si >= slots.len() {
                    slots.resize(si + 1, 0);
                }
                match slots[si] {
                    0 => {
                        let idx = self.entries.len();
                        slots[si] = idx as u32 + 1;
                        self.entries.push(GroupState::new(key.clone(), n_aggs));
                        idx
                    }
                    v => v as usize - 1,
                }
            }
            (DenseIndex::Composite { slots, .. }, Some(si)) => match slots[si] {
                0 => {
                    let idx = self.entries.len();
                    slots[si] = idx as u32 + 1;
                    self.entries.push(GroupState::new(key.clone(), n_aggs));
                    idx
                }
                v => v as usize - 1,
            },
            _ => match self.map.get(key) {
                Some(&idx) => idx as usize,
                None => {
                    let idx = self.entries.len();
                    self.map.insert(key.clone(), idx as u32);
                    self.entries.push(GroupState::new(key.clone(), n_aggs));
                    idx
                }
            },
        }
    }

    /// Folds another partial aggregation of the **same plan** (query shape
    /// and mode) into this one, merging per-group accumulators. Because
    /// accumulators merge exactly (see [`Accumulator::merge`]), folding
    /// morsel partials — in any order — produces results bit-identical to a
    /// single serial scan; the morsel scheduler still folds in ascending
    /// first-morsel order for deterministic entry discovery.
    ///
    /// # Panics
    /// Debug-asserts that both sides execute the same group-by and
    /// aggregate list.
    pub fn merge(&mut self, other: PartialAggregation) {
        debug_assert_eq!(self.query.group_by, other.query.group_by, "plan mismatch");
        debug_assert_eq!(
            self.query.aggregates, other.query.aggregates,
            "plan mismatch"
        );
        self.rows_consumed += other.rows_consumed;
        self.target_rows += other.target_rows;
        if self.entries.is_empty() && matches!(self.dense, DenseIndex::Undecided) {
            // This side never consumed a batch: adopt the other side's
            // state wholesale (index structure included).
            self.dense = other.dense;
            self.map = other.map;
            self.entries = other.entries;
            return;
        }
        let n_aggs = self.query.aggregates.len();
        for group in other.entries {
            let idx = self.entry_index_for_key(&group.key, n_aggs);
            let entry = &mut self.entries[idx];
            for agg in 0..n_aggs {
                entry.target[agg].merge(&group.target[agg]);
                entry.reference[agg].merge(&group.reference[agg]);
            }
        }
    }

    /// Clones the current state into a sorted [`GroupedResult`].
    pub fn snapshot(&self) -> GroupedResult {
        let mut groups: Vec<GroupEntry> = self
            .entries
            .iter()
            .map(|g| GroupEntry {
                key: g.key.clone(),
                target: g.target.clone(),
                reference: g.reference.clone(),
            })
            .collect();
        groups.sort_by(|a, b| a.key.cmp(&b.key));
        GroupedResult {
            group_by: self.query.group_by.clone(),
            aggregates: self.query.aggregates.clone(),
            groups,
        }
    }

    /// Consumes the aggregation, producing the final sorted result.
    pub fn finalize(mut self) -> GroupedResult {
        self.entries.sort_by(|a, b| a.key.cmp(&b.key));
        GroupedResult {
            group_by: self.query.group_by,
            aggregates: self.query.aggregates,
            groups: self
                .entries
                .into_iter()
                .map(|g| GroupEntry {
                    key: g.key,
                    target: g.target,
                    reference: g.reference,
                })
                .collect(),
        }
    }
}

/// Calls `body(row, is_target, is_reference)` for every row selected on
/// either side, walking the two selection bitmaps one word at a time and
/// skipping unselected rows with bit tricks. Rows are visited in ascending
/// order, preserving scalar-path accumulation order.
#[inline]
fn for_each_selected(t_bits: &Bitmap, r_bits: &Bitmap, mut body: impl FnMut(usize, bool, bool)) {
    for (w, (&tw, &rw)) in t_bits.words().iter().zip(r_bits.words()).enumerate() {
        let mut any = tw | rw;
        while any != 0 {
            let bit = any.trailing_zeros() as usize;
            any &= any - 1;
            let i = (w << 6) | bit;
            body(i, (tw >> bit) & 1 == 1, (rw >> bit) & 1 == 1);
        }
    }
}

/// Executes `query` over the whole table in a single pass, in the default
/// [`ExecMode`].
pub fn execute_combined(
    table: &dyn Table,
    query: &CombinedQuery,
    stats: &mut ExecStats,
) -> GroupedResult {
    execute_combined_with_mode(table, query, ExecMode::default(), stats)
}

/// [`execute_combined`] with an explicit execution mode.
pub fn execute_combined_with_mode(
    table: &dyn Table,
    query: &CombinedQuery,
    mode: ExecMode,
    stats: &mut ExecStats,
) -> GroupedResult {
    stats.queries_issued += 1;
    let mut agg = PartialAggregation::with_mode(query.clone(), mode);
    agg.update(table, 0..table.num_rows(), stats);
    agg.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::expr::Predicate;
    use crate::spec::AggSpec;
    use seedb_storage::{
        BoxedTable, ColumnDef, ColumnRole, ColumnType, StoreKind, TableBuilder, Value,
    };

    /// sex | marital | gain
    fn census_mini(kind: StoreKind) -> BoxedTable {
        let mut b = TableBuilder::new(vec![
            ColumnDef::dim("sex"),
            ColumnDef::dim("marital"),
            ColumnDef::new("gain", ColumnType::Float64, ColumnRole::Measure),
        ]);
        let rows = [
            ("F", "unmarried", 500.0),
            ("M", "unmarried", 480.0),
            ("F", "married", 300.0),
            ("M", "married", 700.0),
            ("F", "unmarried", 520.0),
            ("M", "married", 660.0),
        ];
        for (s, m, g) in rows {
            b.push_row(&[Value::str(s), Value::str(m), Value::Float(g)])
                .unwrap();
        }
        b.build(kind).unwrap()
    }

    fn unmarried(table: &dyn Table) -> Predicate {
        Predicate::col_eq_str(table, "marital", "unmarried")
    }

    #[test]
    fn count_group_by_whole_table() {
        for kind in [StoreKind::Row, StoreKind::Column] {
            let t = census_mini(kind);
            let q = CombinedQuery::single(
                ColumnId(0),
                AggSpec::new(AggFunc::Count, ColumnId(2)),
                SplitSpec::TargetOnly(Predicate::True),
            );
            let mut stats = ExecStats::default();
            let r = execute_combined(t.as_ref(), &q, &mut stats);
            assert_eq!(r.num_groups(), 2);
            // F interned first => code 0 sorts first.
            let (target, _) = r.value_vectors(0);
            assert_eq!(target, vec![3.0, 3.0]);
            assert_eq!(stats.queries_issued, 1);
            assert_eq!(stats.rows_scanned, 6);
        }
    }

    #[test]
    fn avg_with_target_vs_all_split() {
        let t = census_mini(StoreKind::Column);
        let q = CombinedQuery::single(
            ColumnId(0),
            AggSpec::new(AggFunc::Avg, ColumnId(2)),
            SplitSpec::TargetVsAll(unmarried(t.as_ref())),
        );
        let mut stats = ExecStats::default();
        let r = execute_combined(t.as_ref(), &q, &mut stats);
        let (target, reference) = r.value_vectors(0);
        // Target (unmarried): F avg = (500+520)/2 = 510, M = 480.
        assert_eq!(target, vec![510.0, 480.0]);
        // Reference (all rows): F avg = (500+300+520)/3 = 440, M = (480+700+660)/3.
        assert!((reference[0] - 440.0).abs() < 1e-9);
        assert!((reference[1] - (480.0 + 700.0 + 660.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn complement_split_partitions_rows() {
        let t = census_mini(StoreKind::Row);
        let q = CombinedQuery::single(
            ColumnId(0),
            AggSpec::new(AggFunc::Count, ColumnId(2)),
            SplitSpec::TargetVsComplement(unmarried(t.as_ref())),
        );
        let r = execute_combined(t.as_ref(), &q, &mut ExecStats::default());
        let (target, reference) = r.value_vectors(0);
        // Unmarried: F=2, M=1. Married: F=1, M=2.
        assert_eq!(target, vec![2.0, 1.0]);
        assert_eq!(reference, vec![1.0, 2.0]);
        // Target + complement = whole table.
        assert_eq!(
            target.iter().sum::<f64>() + reference.iter().sum::<f64>(),
            t.num_rows() as f64
        );
    }

    #[test]
    fn target_vs_query_split() {
        let t = census_mini(StoreKind::Column);
        let married = Predicate::col_eq_str(t.as_ref(), "marital", "married");
        let q = CombinedQuery::single(
            ColumnId(0),
            AggSpec::new(AggFunc::Avg, ColumnId(2)),
            SplitSpec::TargetVsQuery {
                target: unmarried(t.as_ref()),
                reference: married,
            },
        );
        let r = execute_combined(t.as_ref(), &q, &mut ExecStats::default());
        let (target, reference) = r.value_vectors(0);
        assert_eq!(target, vec![510.0, 480.0]);
        assert_eq!(reference, vec![300.0, 680.0]);
    }

    #[test]
    fn multiple_aggregates_in_one_scan() {
        let t = census_mini(StoreKind::Column);
        let q = CombinedQuery {
            group_by: vec![ColumnId(0)],
            aggregates: vec![
                AggSpec::new(AggFunc::Count, ColumnId(2)),
                AggSpec::new(AggFunc::Sum, ColumnId(2)),
                AggSpec::new(AggFunc::Max, ColumnId(2)),
            ],
            filter: None,
            split: SplitSpec::TargetVsAll(Predicate::True),
        };
        let mut stats = ExecStats::default();
        let r = execute_combined(t.as_ref(), &q, &mut stats);
        assert_eq!(stats.scan_passes, 1); // all three aggregates in one pass
        let (count, _) = r.value_vectors(0);
        let (sum, _) = r.value_vectors(1);
        let (max, _) = r.value_vectors(2);
        assert_eq!(count, vec![3.0, 3.0]);
        assert_eq!(sum, vec![1320.0, 1840.0]);
        assert_eq!(max, vec![520.0, 700.0]);
    }

    #[test]
    fn multi_group_by_maintains_cross_product_groups() {
        let t = census_mini(StoreKind::Column);
        let q = CombinedQuery {
            group_by: vec![ColumnId(0), ColumnId(1)],
            aggregates: vec![AggSpec::new(AggFunc::Count, ColumnId(2))],
            filter: None,
            split: SplitSpec::TargetVsAll(Predicate::True),
        };
        let r = execute_combined(t.as_ref(), &q, &mut ExecStats::default());
        assert_eq!(r.num_groups(), 4); // (F,M) × (unmarried,married)
    }

    #[test]
    fn filter_restricts_scan() {
        let t = census_mini(StoreKind::Column);
        let q = CombinedQuery {
            group_by: vec![ColumnId(0)],
            aggregates: vec![AggSpec::new(AggFunc::Count, ColumnId(2))],
            filter: Some(Predicate::col_eq_str(t.as_ref(), "sex", "F")),
            split: SplitSpec::TargetVsAll(Predicate::True),
        };
        let r = execute_combined(t.as_ref(), &q, &mut ExecStats::default());
        assert_eq!(r.num_groups(), 1);
        let (target, _) = r.value_vectors(0);
        assert_eq!(target, vec![3.0]);
    }

    #[test]
    fn phased_updates_equal_single_pass() {
        let t = census_mini(StoreKind::Row);
        let q = CombinedQuery::single(
            ColumnId(0),
            AggSpec::new(AggFunc::Avg, ColumnId(2)),
            SplitSpec::TargetVsAll(unmarried(t.as_ref())),
        );
        let mut stats = ExecStats::default();
        let one_shot = execute_combined(t.as_ref(), &q, &mut stats);

        let mut partial = PartialAggregation::new(q);
        let mut stats2 = ExecStats::default();
        partial.update(t.as_ref(), 0..2, &mut stats2);
        partial.update(t.as_ref(), 2..4, &mut stats2);
        partial.update(t.as_ref(), 4..6, &mut stats2);
        assert_eq!(partial.rows_consumed(), 6);
        let phased = partial.finalize();

        assert_eq!(one_shot.num_groups(), phased.num_groups());
        let (t1, r1) = one_shot.value_vectors(0);
        let (t2, r2) = phased.value_vectors(0);
        assert_eq!(t1, t2);
        assert_eq!(r1, r2);
        assert_eq!(stats2.scan_passes, 3);
    }

    #[test]
    fn snapshot_is_consistent_mid_stream() {
        let t = census_mini(StoreKind::Column);
        let q = CombinedQuery::single(
            ColumnId(0),
            AggSpec::new(AggFunc::Count, ColumnId(2)),
            SplitSpec::TargetVsAll(Predicate::True),
        );
        let mut partial = PartialAggregation::new(q);
        partial.update(t.as_ref(), 0..3, &mut ExecStats::default());
        let snap = partial.snapshot();
        let total: f64 = snap.value_vectors(0).0.iter().sum();
        assert_eq!(total, 3.0);
        // Continue after snapshot; snapshot was a true copy.
        partial.update(t.as_ref(), 3..6, &mut ExecStats::default());
        let total2: f64 = partial.finalize().value_vectors(0).0.iter().sum();
        assert_eq!(total2, 6.0);
        let total_snap: f64 = snap.value_vectors(0).0.iter().sum();
        assert_eq!(total_snap, 3.0);
    }

    #[test]
    fn empty_target_selection_yields_empty_target_side() {
        let t = census_mini(StoreKind::Column);
        let q = CombinedQuery::single(
            ColumnId(0),
            AggSpec::new(AggFunc::Avg, ColumnId(2)),
            SplitSpec::TargetVsAll(Predicate::False),
        );
        let r = execute_combined(t.as_ref(), &q, &mut ExecStats::default());
        // Groups exist (reference side saw rows) but target accumulators are empty.
        assert_eq!(r.num_groups(), 2);
        let (target, reference) = r.value_vectors(0);
        assert_eq!(target, vec![0.0, 0.0]); // AVG of empty -> None -> 0.0
        assert!(reference.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn dense_index_overflow_codes_spill_to_hash() {
        // Plan the dense index against a tiny dictionary, then feed a table
        // whose dictionary codes run past DENSE_CARDINALITY_MAX: the stray
        // codes must spill into the hash map (bounding the dense table's
        // growth at the cap) while producing exactly the scalar result.
        let build_with_card = |card: usize| -> BoxedTable {
            let mut b = TableBuilder::new(vec![ColumnDef::dim("d"), ColumnDef::measure("m")]);
            for i in 0..card {
                b.push_row(&[Value::str(format!("v{i}")), Value::Float(1.0)])
                    .unwrap();
            }
            b.build(StoreKind::Column).unwrap()
        };
        let small = build_with_card(2);
        let big = build_with_card(DENSE_CARDINALITY_MAX + 40);

        let q = CombinedQuery::single(
            ColumnId(0),
            AggSpec::new(AggFunc::Count, ColumnId(1)),
            SplitSpec::TargetVsAll(Predicate::True),
        );
        let run = |mode: crate::ExecMode| -> GroupedResult {
            let mut agg = PartialAggregation::with_mode(q.clone(), mode);
            let mut stats = ExecStats::default();
            agg.update(small.as_ref(), 0..small.num_rows(), &mut stats);
            agg.update(big.as_ref(), 0..big.num_rows(), &mut stats);
            agg.finalize()
        };
        let vectorized = run(crate::ExecMode::Vectorized);
        let scalar = run(crate::ExecMode::Scalar);
        assert_eq!(vectorized.num_groups(), DENSE_CARDINALITY_MAX + 40);
        assert_eq!(vectorized.num_groups(), scalar.num_groups());
        for (a, b) in vectorized.groups.iter().zip(&scalar.groups) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.target, b.target);
        }
    }

    #[test]
    fn composite_dense_matches_scalar_for_multi_group_by() {
        // sex × marital fits the mixed-radix dense cap easily, so the
        // vectorized path uses the composite index; results must be
        // bit-identical to the (hash-only) scalar oracle.
        for kind in [StoreKind::Row, StoreKind::Column] {
            let t = census_mini(kind);
            let q = CombinedQuery {
                group_by: vec![ColumnId(0), ColumnId(1)],
                aggregates: vec![
                    AggSpec::new(AggFunc::Avg, ColumnId(2)),
                    AggSpec::new(AggFunc::Sum, ColumnId(2)),
                ],
                filter: None,
                split: SplitSpec::TargetVsComplement(unmarried(t.as_ref())),
            };
            let vectorized = execute_combined_with_mode(
                t.as_ref(),
                &q,
                crate::ExecMode::Vectorized,
                &mut ExecStats::default(),
            );
            let scalar = execute_combined_with_mode(
                t.as_ref(),
                &q,
                crate::ExecMode::Scalar,
                &mut ExecStats::default(),
            );
            assert_eq!(vectorized.num_groups(), 4);
            assert_eq!(vectorized.num_groups(), scalar.num_groups());
            for (a, b) in vectorized.groups.iter().zip(&scalar.groups) {
                assert_eq!(a.key, b.key);
                assert_eq!(a.target, b.target);
                assert_eq!(a.reference, b.reference);
            }
        }
    }

    #[test]
    fn composite_dense_stray_codes_spill_to_hash() {
        // Plan the composite index against tiny dictionaries, then feed a
        // table whose codes exceed the planned radix on both attributes:
        // the strays must spill to the hash map while matching the scalar
        // result exactly.
        let build = |card_a: usize, card_b: usize| -> BoxedTable {
            let mut b = TableBuilder::new(vec![
                ColumnDef::dim("a"),
                ColumnDef::dim("b"),
                ColumnDef::measure("m"),
            ]);
            let rows = card_a.max(card_b);
            for i in 0..rows {
                b.push_row(&[
                    Value::str(format!("a{}", i % card_a)),
                    Value::str(format!("b{}", i % card_b)),
                    Value::Float(i as f64 + 0.5),
                ])
                .unwrap();
            }
            b.build(StoreKind::Column).unwrap()
        };
        let small = build(2, 2);
        let big = build(9, 5);
        let q = CombinedQuery {
            group_by: vec![ColumnId(0), ColumnId(1)],
            aggregates: vec![AggSpec::new(AggFunc::Sum, ColumnId(2))],
            filter: None,
            split: SplitSpec::TargetVsAll(Predicate::True),
        };
        let run = |mode: crate::ExecMode| -> GroupedResult {
            let mut agg = PartialAggregation::with_mode(q.clone(), mode);
            let mut stats = ExecStats::default();
            agg.update(small.as_ref(), 0..small.num_rows(), &mut stats);
            agg.update(big.as_ref(), 0..big.num_rows(), &mut stats);
            agg.finalize()
        };
        let vectorized = run(crate::ExecMode::Vectorized);
        let scalar = run(crate::ExecMode::Scalar);
        assert_eq!(vectorized.num_groups(), scalar.num_groups());
        for (a, b) in vectorized.groups.iter().zip(&scalar.groups) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.target, b.target);
        }
    }

    #[test]
    fn merge_of_disjoint_partials_equals_single_pass() {
        // Split the table into three ranges, aggregate each into its own
        // partial, merge in order — must equal the one-shot result bitwise,
        // for both the dense single-dim and composite shapes.
        for group_by in [vec![ColumnId(0)], vec![ColumnId(0), ColumnId(1)]] {
            let t = census_mini(StoreKind::Column);
            let q = CombinedQuery {
                group_by,
                aggregates: vec![AggSpec::new(AggFunc::Avg, ColumnId(2))],
                filter: None,
                split: SplitSpec::TargetVsAll(unmarried(t.as_ref())),
            };
            let one_shot = execute_combined(t.as_ref(), &q, &mut ExecStats::default());
            let part = |range: Range<usize>| -> PartialAggregation {
                let mut agg = PartialAggregation::new(q.clone());
                agg.update(t.as_ref(), range, &mut ExecStats::default());
                agg
            };
            let mut merged = part(0..2);
            merged.merge(part(2..4));
            merged.merge(part(4..6));
            assert_eq!(merged.rows_consumed(), 6);
            let merged = merged.finalize();
            assert_eq!(merged.num_groups(), one_shot.num_groups());
            for (a, b) in merged.groups.iter().zip(&one_shot.groups) {
                assert_eq!(a.key, b.key);
                assert_eq!(a.target, b.target);
                assert_eq!(a.reference, b.reference);
            }
        }
    }

    #[test]
    fn merge_into_untouched_partial_adopts_state() {
        let t = census_mini(StoreKind::Column);
        let q = CombinedQuery::single(
            ColumnId(0),
            AggSpec::new(AggFunc::Count, ColumnId(2)),
            SplitSpec::TargetVsAll(Predicate::True),
        );
        let mut full = PartialAggregation::new(q.clone());
        full.update(t.as_ref(), 0..6, &mut ExecStats::default());
        let mut empty = PartialAggregation::new(q);
        empty.merge(full);
        assert_eq!(empty.rows_consumed(), 6);
        let (target, _) = empty.finalize().value_vectors(0);
        assert_eq!(target, vec![3.0, 3.0]);
    }

    #[test]
    fn row_and_column_stores_agree() {
        let row_t = census_mini(StoreKind::Row);
        let col_t = census_mini(StoreKind::Column);
        let q = CombinedQuery {
            group_by: vec![ColumnId(1)],
            aggregates: vec![
                AggSpec::new(AggFunc::Avg, ColumnId(2)),
                AggSpec::new(AggFunc::Count, ColumnId(2)),
            ],
            filter: None,
            split: SplitSpec::TargetVsComplement(unmarried(row_t.as_ref())),
        };
        let a = execute_combined(row_t.as_ref(), &q, &mut ExecStats::default());
        let b = execute_combined(col_t.as_ref(), &q, &mut ExecStats::default());
        for agg in 0..2 {
            assert_eq!(a.value_vectors(agg), b.value_vectors(agg));
        }
    }
}
