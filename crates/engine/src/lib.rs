//! # seedb-engine
//!
//! The execution engine underneath SeeDB: grouped aggregation over the
//! storage substrate, plus the building blocks for the paper's
//! *sharing-based optimizations* (§4.1):
//!
//! * **Combine multiple aggregates** — a [`CombinedQuery`] carries any
//!   number of [`AggSpec`]s, all evaluated in one scan.
//! * **Combine multiple GROUP BYs** — a `CombinedQuery` may group by several
//!   dimension attributes at once; [`rollup`] recovers each
//!   single-attribute view from the multi-attribute result (COUNT/SUM/MIN/
//!   MAX/AVG all decompose losslessly because accumulators merge).
//!   [`binpack`] chooses which attributes to combine under a memory budget
//!   (Problem 4.1, first-fit over `log₂|aᵢ|` weights).
//! * **Combine target and reference view** — a [`SplitSpec`] classifies each
//!   scanned row as target and/or reference, so one scan feeds both sides
//!   of the deviation computation.
//! * **Parallel query execution** — a persistent scoped worker pool
//!   ([`parallel::with_pool`]) executes `(query, morsel)` work items
//!   ([`morsel::execute_morsels`]): every query's scan range splits into
//!   fixed-size morsels, workers aggregate thread-local partials, and
//!   [`PartialAggregation::merge`] folds them — bit-identically to a
//!   serial scan, because accumulator sums are exact
//!   (see [`Accumulator`]). [`parallel::run_parallel`] keeps the simple
//!   one-round fan-out API.
//!
//! Execution is *phase-aware*: a [`PartialAggregation`] accepts any number
//! of row ranges and can snapshot its state between ranges, which is exactly
//! what the phased pruning framework in `seedb-core` needs.
//!
//! Execution is also *mode-aware* ([`ExecMode`]): the default **vectorized**
//! mode drives the storage layer's batched scan API — selection bitmaps
//! from [`BoundPredicate::eval_batch`], a dense dictionary-direct group
//! index for single-attribute group-bys, and a composite mixed-radix dense
//! index for bin-packed multi-GROUP-BY clusters (see
//! [`DENSE_CARDINALITY_MAX`]) — while the **scalar** mode keeps the
//! original row-at-a-time path as the bit-identical equivalence oracle.

pub mod agg;
pub mod binpack;
pub mod cost;
pub mod expr;
pub mod groupkey;
pub mod hashagg;
pub mod morsel;
pub mod parallel;
pub mod prune;
pub mod rollup;
pub mod spec;
pub mod stats;

pub use agg::{Accumulator, AggFunc};
pub use binpack::{first_fit, first_fit_decreasing, GroupingPlan};
pub use cost::{
    choose_group_index, choose_morsel_rows, choose_workers, estimate_scan, group_index_for,
    GroupIndexKind, ScanEstimate, ScanShape, PARALLEL_ROWS_MIN,
};
pub use expr::{BoundPredicate, CmpOp, Predicate};
pub use groupkey::GroupKey;
pub use hashagg::{
    execute_combined, execute_combined_with_mode, PartialAggregation, DENSE_CARDINALITY_MAX,
};
pub use morsel::{execute_morsels, execute_morsels_traced, DEFAULT_MORSEL_ROWS};
pub use parallel::{with_pool, BudgetLease, CancelToken, Pool, WorkerBudget, WorkerProbes};
pub use prune::{contribution_predicate, pruned_scan, zone_match, PrunedScan};
pub use rollup::rollup;
pub use seedb_obs::TraceCtx;
pub use spec::{AggSpec, CombinedQuery, SplitSpec};
pub use stats::ExecStats;

/// How the engine walks the table: row-at-a-time or in typed batches.
///
/// Both modes produce bit-identical results (accumulators are exact, so
/// neither row order nor partition boundaries can perturb a single bit);
/// `Vectorized` is the default and is substantially faster on the column
/// store, where batches are zero-copy slices and group lookups go through
/// the dense dictionary-direct or composite mixed-radix index (see
/// [`DENSE_CARDINALITY_MAX`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Row-at-a-time execution through `Table::scan_range` (the original
    /// `dyn FnMut(&[Cell])` path; kept as the equivalence oracle).
    Scalar,
    /// Batched execution through `Table::scan_batches`: vectorized
    /// predicate bitmaps and dictionary-direct dense aggregation.
    #[default]
    Vectorized,
}

impl ExecMode {
    /// Label used in bench output and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Scalar => "SCALAR",
            ExecMode::Vectorized => "VECTORIZED",
        }
    }

    /// Both modes, for sweeps and equivalence tests.
    pub const ALL: [ExecMode; 2] = [ExecMode::Scalar, ExecMode::Vectorized];
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Result of a grouped aggregation: one entry per observed group, sorted by
/// key for deterministic downstream consumption.
#[derive(Debug, Clone)]
pub struct GroupedResult {
    /// The grouping attributes this result is keyed by.
    pub group_by: Vec<seedb_storage::ColumnId>,
    /// Aggregate specs, in the order accumulators appear in each entry.
    pub aggregates: Vec<AggSpec>,
    /// Per-group accumulated state.
    pub groups: Vec<GroupEntry>,
}

/// One group's accumulated target and reference state.
#[derive(Debug, Clone)]
pub struct GroupEntry {
    /// Group key (one `u64` code per grouping attribute).
    pub key: GroupKey,
    /// Target-side accumulators, one per aggregate spec.
    pub target: Vec<Accumulator>,
    /// Reference-side accumulators, one per aggregate spec.
    pub reference: Vec<Accumulator>,
}

impl GroupedResult {
    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Extracts the aligned `(target, reference)` value vectors for
    /// aggregate `agg_idx`, with groups in key order. Groups where an AVG
    /// has no rows yield 0.0 — the normalization step treats missing mass
    /// as zero probability, matching the paper's treatment of absent groups.
    pub fn value_vectors(&self, agg_idx: usize) -> (Vec<f64>, Vec<f64>) {
        let func = self.aggregates[agg_idx].func;
        let mut t = Vec::with_capacity(self.groups.len());
        let mut r = Vec::with_capacity(self.groups.len());
        for g in &self.groups {
            t.push(g.target[agg_idx].finish(func).unwrap_or(0.0));
            r.push(g.reference[agg_idx].finish(func).unwrap_or(0.0));
        }
        (t, r)
    }
}
