//! Bounded-parallelism task execution for view-query batches.
//!
//! §4.1: *"SeeDB executes multiple view queries in parallel … however, the
//! precise number of parallel queries needs to be tuned."* Fig 7b sweeps
//! the degree of parallelism and finds ≈ #cores optimal. This module
//! provides that knob: run `n` independent tasks on exactly
//! `threads` workers using `std::thread::scope` (no 'static bound on
//! the task closure, so tasks can borrow the table).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `num_tasks` tasks produced by `task(i)` on at most `threads`
/// worker threads; returns the results in task order.
///
/// `threads == 1` executes inline on the caller's thread (zero overhead,
/// deterministic), which is also the fallback for empty input.
pub fn run_parallel<T, F>(num_tasks: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(num_tasks.max(1));
    if threads == 1 {
        return (0..num_tasks).map(task).collect();
    }

    let mut slots: Vec<Option<T>> = Vec::with_capacity(num_tasks);
    slots.resize_with(num_tasks, || None);
    let next = AtomicUsize::new(0);
    let task = &task;

    // Hand each worker a disjoint set of result slots via raw pointer math
    // is unnecessary: collect (index, result) pairs per worker and merge.
    let mut per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= num_tasks {
                            break;
                        }
                        local.push((i, task(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    for worker_results in per_worker.drain(..) {
        for (i, value) in worker_results {
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task index executed exactly once"))
        .collect()
}

/// The default degree of parallelism: the number of available cores
/// (the paper's empirically optimal setting, Fig 7b).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_preserve_task_order() {
        for threads in [1, 2, 4, 16] {
            let out = run_parallel(20, threads, |i| i * i);
            let expect: Vec<usize> = (0..20).map(|i| i * i).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let out = run_parallel(100, 8, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = run_parallel(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn one_task_is_fine() {
        let out = run_parallel(1, 16, |i| i + 7);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn tasks_can_borrow_environment() {
        let data = [10, 20, 30];
        let out = run_parallel(3, 3, |i| data[i] * 2);
        assert_eq!(out, vec![20, 40, 60]);
    }

    #[test]
    fn oversubscribed_threads_clamp_to_tasks() {
        // More threads than tasks must not deadlock or lose results.
        let out = run_parallel(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
    }
}
