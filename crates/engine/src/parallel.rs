//! Bounded-parallelism execution: a persistent scoped worker pool.
//!
//! §4.1: *"SeeDB executes multiple view queries in parallel … however, the
//! precise number of parallel queries needs to be tuned."* Fig 7b sweeps
//! the degree of parallelism and finds ≈ #cores optimal. Earlier revisions
//! spawned fresh OS threads for every batch of tasks (per cluster batch,
//! per phase); this module now provides a **persistent scoped pool**
//! ([`with_pool`]): workers are spawned once, live for the whole scope
//! (e.g. an entire phased execution), and pull work items from a shared
//! atomic queue round after round. Tasks may borrow the environment (the
//! table, cluster plans, scratch buffers) because the workers are
//! `std::thread::scope` threads.
//!
//! [`run_parallel`] keeps the original free-function API, now implemented
//! as a single-round pool.

use seedb_obs::TraceCtx;
use seedb_util::PLock;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Condvar;
use std::time::{Duration, Instant};

/// A cooperative deadline token threaded from the serving layer down into
/// the morsel loop.
///
/// Cancellation is *cooperative*: nothing is preempted. The executor
/// checks the token at phase boundaries and the morsel scheduler checks it
/// before aggregating each claimed morsel, so a run overshoots its
/// deadline by at most one in-flight morsel per worker. A token with no
/// deadline ([`CancelToken::none`]) never expires and costs one branch per
/// check.
#[derive(Debug, Clone, Copy, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires.
    pub fn none() -> Self {
        CancelToken { deadline: None }
    }

    /// A token expiring `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        CancelToken {
            deadline: Instant::now().checked_add(timeout),
        }
    }

    /// A token expiring at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            deadline: Some(deadline),
        }
    }

    /// Whether the deadline has passed.
    #[inline]
    pub fn is_expired(&self) -> bool {
        match self.deadline {
            None => false,
            Some(d) => Instant::now() >= d,
        }
    }

    /// Time left before expiry: `None` for a deadline-free token, zero
    /// once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// Type-erased pointer to the current round's task closure.
///
/// The lifetime is erased so persistent workers (spawned before any round's
/// closure exists) can call it; soundness is argued at the single
/// `transmute` site in [`Pool::run`].
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize, usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls are fine) and the pointer is
// only dereferenced while `Pool::run` — which owns the closure — is blocked
// waiting for the round to finish.
unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

/// Round-dispatch state shared between the pool owner and its workers.
struct Ctl {
    /// Monotonic round counter; workers join a round when it changes.
    round: u64,
    /// Number of work items in the current round.
    total: usize,
    /// The current round's task, present only while a round is live.
    task: Option<TaskRef>,
    /// Work items finished so far in the current round.
    completed: usize,
    /// Workers currently inside the current round's claim loop.
    active: usize,
    /// A task panicked during the current round.
    panicked: bool,
    /// The scope is ending; workers must exit.
    shutdown: bool,
}

struct Shared {
    ctl: PLock<Ctl>,
    /// Wakes workers when a round is published (or on shutdown).
    work_cv: Condvar,
    /// Wakes the owner when the round completes and workers quiesce.
    done_cv: Condvar,
    /// Next unclaimed work-item index of the current round.
    next: AtomicUsize,
}

impl Shared {
    fn new() -> Self {
        Shared {
            ctl: PLock::new(
                "engine.pool.ctl",
                Ctl {
                    round: 0,
                    total: 0,
                    task: None,
                    completed: 0,
                    active: 0,
                    panicked: false,
                    shutdown: false,
                },
            ),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
        }
    }

    fn shutdown(&self) {
        self.ctl.lock().shutdown = true;
        self.work_cv.notify_all();
    }
}

/// Ends the worker scope even if the closure passed to [`with_pool`]
/// unwinds — otherwise `std::thread::scope` would join workers that are
/// still waiting for work, deadlocking the panic.
struct ShutdownGuard<'a>(&'a Shared);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen_round = 0u64;
    loop {
        // Wait for a new round (or shutdown), then check in as active.
        let (task, total) = {
            let mut ctl = shared.ctl.lock();
            loop {
                if ctl.shutdown {
                    return;
                }
                if ctl.round != seen_round && ctl.task.is_some() {
                    seen_round = ctl.round;
                    ctl.active += 1;
                    break (ctl.task.expect("checked above"), ctl.total);
                }
                ctl = ctl.wait(&shared.work_cv);
            }
        };
        // Claim and run work items until the round is drained.
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                break;
            }
            // SAFETY: `Pool::run` keeps the closure alive (it blocks until
            // this worker checks out of the round) — see that method.
            let ok = catch_unwind(AssertUnwindSafe(|| (unsafe { &*task.0 })(worker, i))).is_ok();
            let mut ctl = shared.ctl.lock();
            if !ok {
                ctl.panicked = true;
            }
            ctl.completed += 1;
            if ctl.completed == total {
                shared.done_cv.notify_all();
            }
        }
        // Check out; the round owner waits for active == 0 before returning.
        let mut ctl = shared.ctl.lock();
        ctl.active -= 1;
        if ctl.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Handle to a live worker pool (see [`with_pool`]). `None` shared state
/// means the single-threaded pool, which runs everything inline.
pub struct Pool<'env> {
    shared: Option<&'env Shared>,
    threads: usize,
}

impl Pool<'_> {
    /// Number of workers, including the calling thread (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `num_tasks` work items of `task(worker, item)` across the pool,
    /// returning once all have finished. The calling thread participates as
    /// worker 0; spawned workers are `1..threads()`. Item indices are
    /// claimed in ascending order, so the items a given worker executes for
    /// any subsequence are ascending — the property the morsel scheduler's
    /// deterministic fold relies on.
    ///
    /// Not reentrant: `task` must not call back into this pool.
    ///
    /// # Panics
    /// Propagates a panic from any task after the round has fully drained
    /// (no task is silently lost).
    pub fn run(&self, num_tasks: usize, task: impl Fn(usize, usize) + Sync) {
        let Some(shared) = self.shared else {
            for i in 0..num_tasks {
                task(0, i);
            }
            return;
        };
        if num_tasks == 0 {
            return;
        }

        // Publish the round. SAFETY of the lifetime erasure: `task` lives
        // until this function returns, and this function does not return
        // until every worker has checked out of the round (`active == 0`)
        // and all claimed items completed — after which no worker can
        // dereference the pointer again (claims of later rounds re-read
        // `ctl.task`).
        let wide: *const (dyn Fn(usize, usize) + Sync) = &task;
        let task_ref = TaskRef(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, usize) + Sync),
                *const (dyn Fn(usize, usize) + Sync + 'static),
            >(wide)
        });
        {
            let mut ctl = shared.ctl.lock();
            debug_assert!(ctl.task.is_none() && ctl.active == 0, "pool is reentrant");
            ctl.round += 1;
            ctl.total = num_tasks;
            ctl.completed = 0;
            ctl.panicked = false;
            shared.next.store(0, Ordering::Relaxed);
            ctl.task = Some(task_ref);
        }
        shared.work_cv.notify_all();

        // Participate as worker 0.
        let mut caller_panic = None;
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= num_tasks {
                break;
            }
            let result = catch_unwind(AssertUnwindSafe(|| task(0, i)));
            let mut ctl = shared.ctl.lock();
            if let Err(payload) = result {
                ctl.panicked = true;
                caller_panic.get_or_insert(payload);
            }
            ctl.completed += 1;
            if ctl.completed == num_tasks {
                shared.done_cv.notify_all();
            }
        }

        // Wait for completion AND worker check-out (a worker may still be
        // between its last claim attempt and checking out; the next round
        // must not start until it has).
        let mut ctl = shared.ctl.lock();
        while ctl.completed < num_tasks || ctl.active > 0 {
            ctl = ctl.wait(&shared.done_cv);
        }
        ctl.task = None;
        let panicked = ctl.panicked;
        drop(ctl);
        if let Some(payload) = caller_panic {
            resume_unwind(payload);
        }
        if panicked {
            panic!("pool worker task panicked");
        }
    }

    /// [`Pool::run`] collecting each item's result, in item order.
    pub fn map<T, F>(&self, num_tasks: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(num_tasks);
        slots.resize_with(num_tasks, || None);
        {
            let out = SlotWriter(slots.as_mut_ptr());
            self.run(num_tasks, move |worker, i| {
                // Bind the wrapper itself so the closure captures the
                // `Sync` `SlotWriter`, not its raw-pointer field (Rust 2021
                // disjoint capture would otherwise grab `out.0`).
                let out = out;
                let value = task(worker, i);
                // SAFETY: each item index is claimed exactly once, so the
                // writes target disjoint slots; `slots` is not touched
                // until `run` returns.
                unsafe { (*out.0.add(i)) = Some(value) };
            });
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task index executed exactly once"))
            .collect()
    }
}

/// Raw slot pointer made shareable for disjoint-index writes.
struct SlotWriter<T>(*mut Option<T>);

// Manual impls: the derive would add an unwanted `T: Copy` bound.
impl<T> Clone for SlotWriter<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlotWriter<T> {}

// SAFETY: tasks write disjoint indices only (argued at the write site).
unsafe impl<T: Send> Send for SlotWriter<T> {}
unsafe impl<T: Send> Sync for SlotWriter<T> {}

/// Spawns a scoped worker pool of `threads` workers (1 = fully inline, no
/// threads spawned) and runs `f` with a handle to it. Workers persist for
/// the whole call, executing every [`Pool::run`] round `f` issues — this is
/// what lets a phased execution reuse one set of OS threads across all of
/// its phases and cluster batches.
pub fn with_pool<R>(threads: usize, f: impl FnOnce(&Pool<'_>) -> R) -> R {
    let threads = threads.max(1);
    if threads == 1 {
        return f(&Pool {
            shared: None,
            threads: 1,
        });
    }
    let shared = Shared::new();
    std::thread::scope(|scope| {
        let _guard = ShutdownGuard(&shared);
        for worker in 1..threads {
            let shared = &shared;
            scope.spawn(move || worker_loop(shared, worker));
        }
        f(&Pool {
            shared: Some(&shared),
            threads,
        })
    })
}

/// One worker's aggregated probe state.
#[derive(Default)]
struct ProbeSlot {
    first: Option<Instant>,
    busy: Duration,
    items: u64,
}

/// Per-worker busy-time probes for tracing a [`Pool::run`] fan-out as one
/// aggregated span per worker (start = the worker's first claim, duration
/// = its summed busy time) instead of one span per morsel. Disabled probes
/// ([`WorkerProbes::new`] with `enabled = false`) allocate nothing and
/// cost one branch per item, keeping the untraced hot path untouched.
/// Each worker only locks its own slot, so the mutexes are uncontended —
/// the same safe-code pattern as the morsel scheduler's partials.
pub struct WorkerProbes {
    slots: Vec<PLock<ProbeSlot>>,
}

impl WorkerProbes {
    /// Probes for `workers` lanes; `enabled = false` records nothing.
    pub fn new(workers: usize, enabled: bool) -> WorkerProbes {
        WorkerProbes {
            slots: if enabled {
                (0..workers)
                    .map(|_| PLock::new("engine.worker.probe", ProbeSlot::default()))
                    .collect()
            } else {
                Vec::new()
            },
        }
    }

    /// Whether these probes record anything.
    pub fn is_enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Stamps one work item's start; `None` when disabled (so the hot
    /// path pays no clock read).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.is_enabled().then(Instant::now)
    }

    /// Folds one finished work item into `worker`'s slot.
    pub fn record(&self, worker: usize, start: Option<Instant>) {
        let Some(start) = start else { return };
        let Some(slot) = self.slots.get(worker) else {
            return;
        };
        let mut slot = slot.lock();
        slot.first.get_or_insert(start);
        slot.busy += start.elapsed();
        slot.items += 1;
    }

    /// Emits one span per worker that claimed work: lane `1 + worker`,
    /// start = first claim, duration = summed busy time, with the item
    /// count as an argument.
    pub fn emit(&self, trace: &TraceCtx, name: &'static str) {
        for (worker, slot) in self.slots.iter().enumerate() {
            let slot = slot.lock();
            let Some(first) = slot.first else { continue };
            trace.record(
                name,
                (worker + 1) as u32,
                first,
                slot.busy,
                vec![
                    ("worker", worker.to_string()),
                    ("items", slot.items.to_string()),
                ],
            );
        }
    }
}

/// Runs `num_tasks` tasks produced by `task(i)` on at most `threads`
/// worker threads; returns the results in task order.
///
/// `threads == 1` executes inline on the caller's thread (zero overhead,
/// deterministic), which is also the fallback for empty input. For
/// repeated batches, prefer [`with_pool`] + [`Pool::map`], which reuses
/// workers instead of spawning per call.
pub fn run_parallel<T, F>(num_tasks: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(num_tasks.max(1));
    with_pool(threads, |pool| pool.map(num_tasks, |_, i| task(i)))
}

/// The default degree of parallelism: the number of available cores
/// (the paper's empirically optimal setting, Fig 7b).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A counting semaphore over morsel-worker slots, for sharing the
/// machine's worker budget across concurrent recommendation runs.
///
/// One run's pool ([`with_pool`]) sizes itself to ≈ #cores; N concurrent
/// server requests each doing that would oversubscribe the machine N×.
/// A `WorkerBudget` of `total` permits fixes the global degree: each
/// request leases as many worker slots as are available (at least one —
/// a request never deadlocks waiting for full parallelism) and sizes its
/// pool to the lease. Dropping the [`BudgetLease`] returns the permits.
pub struct WorkerBudget {
    permits: PLock<usize>,
    cv: Condvar,
    total: usize,
}

impl WorkerBudget {
    /// A budget of `total` worker slots (clamped to ≥ 1).
    pub fn new(total: usize) -> Self {
        let total = total.max(1);
        WorkerBudget {
            permits: PLock::new("engine.worker.budget", total),
            cv: Condvar::new(),
            total,
        }
    }

    /// The configured total number of slots.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Slots currently unleased (for observability; racy by nature).
    pub fn available(&self) -> usize {
        *self.permits.lock()
    }

    /// Leases between 1 and `desired` slots, blocking only while *no*
    /// slot is free: as soon as at least one permit is available the
    /// lease takes `min(desired, available)` and returns. `desired` is
    /// clamped to ≥ 1.
    pub fn lease(&self, desired: usize) -> BudgetLease<'_> {
        let desired = desired.max(1);
        let mut permits = self.permits.lock();
        while *permits == 0 {
            permits = permits.wait(&self.cv);
        }
        let granted = desired.min(*permits);
        *permits -= granted;
        BudgetLease {
            budget: self,
            granted,
        }
    }

    /// Non-blocking [`WorkerBudget::lease`]: takes `min(desired,
    /// available)` slots if at least one is free, `None` otherwise. The
    /// serving layer's first rung on the degradation ladder — never parks
    /// the request thread.
    pub fn try_lease(&self, desired: usize) -> Option<BudgetLease<'_>> {
        let desired = desired.max(1);
        let mut permits = self.permits.lock();
        if *permits == 0 {
            return None;
        }
        let granted = desired.min(*permits);
        *permits -= granted;
        Some(BudgetLease {
            budget: self,
            granted,
        })
    }

    /// [`WorkerBudget::lease`] with a bounded wait: blocks at most
    /// `timeout` for a slot to free up, then gives up with `None`. A
    /// starved request degrades or sheds — it never blocks forever.
    pub fn lease_timeout(&self, desired: usize, timeout: Duration) -> Option<BudgetLease<'_>> {
        let desired = desired.max(1);
        let deadline = Instant::now() + timeout;
        let mut permits = self.permits.lock();
        while *permits == 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, result) = permits.wait_timeout(&self.cv, left);
            permits = guard;
            if result.timed_out() && *permits == 0 {
                return None;
            }
        }
        let granted = desired.min(*permits);
        *permits -= granted;
        Some(BudgetLease {
            budget: self,
            granted,
        })
    }
}

/// RAII lease of worker slots from a [`WorkerBudget`]; returns them on
/// drop.
pub struct BudgetLease<'a> {
    budget: &'a WorkerBudget,
    granted: usize,
}

impl BudgetLease<'_> {
    /// Number of worker slots this lease holds — the parallelism the
    /// holder should run with.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for BudgetLease<'_> {
    fn drop(&mut self) {
        let mut permits = self.budget.permits.lock();
        *permits += self.granted;
        self.budget.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_preserve_task_order() {
        for threads in [1, 2, 4, 16] {
            let out = run_parallel(20, threads, |i| i * i);
            let expect: Vec<usize> = (0..20).map(|i| i * i).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let out = run_parallel(100, 8, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = run_parallel(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn one_task_is_fine() {
        let out = run_parallel(1, 16, |i| i + 7);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn tasks_can_borrow_environment() {
        let data = [10, 20, 30];
        let out = run_parallel(3, 3, |i| data[i] * 2);
        assert_eq!(out, vec![20, 40, 60]);
    }

    #[test]
    fn oversubscribed_threads_clamp_to_tasks() {
        // More threads than tasks must not deadlock or lose results.
        let out = run_parallel(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
    }

    #[test]
    fn pool_reuses_workers_across_rounds() {
        use std::collections::HashSet;
        let seen: PLock<HashSet<std::thread::ThreadId>> =
            PLock::new("test.pool.seen", HashSet::new());
        with_pool(4, |pool| {
            for round in 0..50 {
                let sums: Vec<usize> = pool.map(8, |_, i| {
                    seen.lock().insert(std::thread::current().id());
                    round * 8 + i
                });
                let expect: Vec<usize> = (0..8).map(|i| round * 8 + i).collect();
                assert_eq!(sums, expect, "round {round}");
            }
        });
        // 50 rounds on a 4-thread pool touch at most 4 distinct threads —
        // workers persisted instead of being respawned per round.
        assert!(seen.lock().len() <= 4);
    }

    #[test]
    fn pool_worker_ids_are_in_range() {
        with_pool(3, |pool| {
            let ids = pool.map(64, |worker, _| worker);
            assert!(ids.iter().all(|&w| w < 3));
        });
    }

    #[test]
    fn pool_tasks_can_borrow_and_mutate_disjoint_state() {
        let data: Vec<AtomicU64> = (0..32).map(|_| AtomicU64::new(0)).collect();
        with_pool(4, |pool| {
            pool.run(32, |_, i| {
                data[i].fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        for (i, slot) in data.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), i as u64);
        }
    }

    #[test]
    fn pool_propagates_task_panics() {
        let result = std::panic::catch_unwind(|| {
            with_pool(4, |pool| {
                pool.run(16, |_, i| {
                    if i == 7 {
                        panic!("task 7 exploded");
                    }
                });
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn worker_budget_grants_up_to_available() {
        let budget = WorkerBudget::new(4);
        assert_eq!(budget.total(), 4);
        let a = budget.lease(3);
        assert_eq!(a.granted(), 3);
        // Only one slot left: a desired-4 lease gets 1 without blocking.
        let b = budget.lease(4);
        assert_eq!(b.granted(), 1);
        assert_eq!(budget.available(), 0);
        drop(a);
        assert_eq!(budget.available(), 3);
        drop(b);
        assert_eq!(budget.available(), 4);
    }

    #[test]
    fn worker_budget_clamps_degenerate_inputs() {
        let budget = WorkerBudget::new(0);
        assert_eq!(budget.total(), 1);
        let lease = budget.lease(0);
        assert_eq!(lease.granted(), 1);
    }

    #[test]
    fn worker_budget_never_oversubscribes_under_contention() {
        use std::sync::atomic::AtomicUsize;
        let budget = WorkerBudget::new(3);
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..20 {
                        let lease = budget.lease(2);
                        let now = in_flight.fetch_add(lease.granted(), Ordering::SeqCst)
                            + lease.granted();
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        in_flight.fetch_sub(lease.granted(), Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 3, "budget exceeded");
        assert_eq!(budget.available(), 3);
    }

    #[test]
    fn try_lease_never_blocks() {
        let budget = WorkerBudget::new(2);
        let a = budget.try_lease(2).expect("slots free");
        assert_eq!(a.granted(), 2);
        assert!(
            budget.try_lease(1).is_none(),
            "exhausted budget must refuse"
        );
        drop(a);
        let b = budget.try_lease(5).expect("slots returned");
        assert_eq!(b.granted(), 2);
    }

    #[test]
    fn lease_timeout_gives_up_when_starved() {
        let budget = WorkerBudget::new(1);
        let held = budget.lease(1);
        let t0 = std::time::Instant::now();
        let got = budget.lease_timeout(1, Duration::from_millis(30));
        assert!(got.is_none(), "starved lease must time out");
        assert!(t0.elapsed() >= Duration::from_millis(25));
        drop(held);
        let got = budget.lease_timeout(1, Duration::from_millis(30));
        assert_eq!(got.expect("slot free").granted(), 1);
    }

    #[test]
    fn lease_timeout_wakes_when_a_slot_frees() {
        let budget = WorkerBudget::new(1);
        std::thread::scope(|scope| {
            let held = budget.lease(1);
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                drop(held);
            });
            let got = budget.lease_timeout(1, Duration::from_secs(5));
            assert_eq!(got.expect("freed before timeout").granted(), 1);
        });
    }

    #[test]
    fn cancel_token_none_never_expires() {
        let t = CancelToken::none();
        assert!(!t.is_expired());
        assert_eq!(t.remaining(), None);
        assert!(!CancelToken::default().is_expired());
    }

    #[test]
    fn cancel_token_expires_after_timeout() {
        let t = CancelToken::after(Duration::from_millis(0));
        assert!(t.is_expired());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        let t = CancelToken::after(Duration::from_secs(3600));
        assert!(!t.is_expired());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
        let t = CancelToken::with_deadline(std::time::Instant::now());
        assert!(t.is_expired());
    }

    #[test]
    fn inline_pool_is_deterministic_and_ordered() {
        with_pool(1, |pool| {
            let order = PLock::new("test.pool.order", Vec::new());
            pool.run(5, |worker, i| {
                assert_eq!(worker, 0);
                order.lock().push(i);
            });
            assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
        });
    }
}
