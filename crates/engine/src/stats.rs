//! Execution statistics.
//!
//! The paper reports *latency*; latency on our in-memory substrate is
//! dominated by the same quantities a disk-backed DBMS pays for — scan
//! passes, rows touched, cells materialized, groups maintained — so the
//! engine counts them explicitly. Tests use these counters to prove that
//! the sharing optimizations actually reduce work (e.g. SHARING issues
//! `#dims` queries instead of `2·a·m`), independent of wall-clock noise.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated during query execution, plus per-run profiling
/// (phase wall-clock timings and the executed plan's summary).
///
/// Equality deliberately compares **only the seven work counters** — the
/// profiling fields are wall-clock/host-dependent, and the bit-identity
/// suites (cached vs uncached, planned vs fixed-knob) must not fail on
/// timing noise or plan-summary differences.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Number of engine queries issued (paper: SQL queries sent to the DBMS).
    pub queries_issued: u64,
    /// Number of scan passes over (a range of) the table.
    pub scan_passes: u64,
    /// Total rows visited across all scans.
    pub rows_scanned: u64,
    /// Total cells materialized (rows × projection width) — the COL-store
    /// cost proxy.
    pub cells_visited: u64,
    /// Maximum number of groups maintained by any single query — the
    /// memory-budget quantity of §4.1.
    pub groups_max: u64,
    /// Storage partitions whose rows were actually scanned.
    pub partitions_scanned: u64,
    /// Storage partitions skipped because zone maps proved no row could
    /// contribute to the query.
    pub partitions_pruned: u64,
    /// Wall-clock microseconds per executed phase (empty for runs the
    /// phased executor never timed, e.g. cache replays).
    pub phase_times_us: Vec<u64>,
    /// One-line summary of the physical plan this run executed under
    /// (empty when no planner was involved).
    pub plan_summary: String,
}

impl ExecStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges counters from a sub-execution (parallel workers each keep
    /// their own and merge at the end). Phase timings concatenate;
    /// `plan_summary` keeps the receiver's value unless it is empty.
    pub fn merge(&mut self, other: &ExecStats) {
        self.queries_issued += other.queries_issued;
        self.scan_passes += other.scan_passes;
        self.rows_scanned += other.rows_scanned;
        self.cells_visited += other.cells_visited;
        self.groups_max = self.groups_max.max(other.groups_max);
        self.partitions_scanned += other.partitions_scanned;
        self.partitions_pruned += other.partitions_pruned;
        self.phase_times_us.extend_from_slice(&other.phase_times_us);
        if self.plan_summary.is_empty() {
            self.plan_summary = other.plan_summary.clone();
        }
    }
}

// Manual: work counters only (see the struct docs for why profiling
// fields are excluded).
impl PartialEq for ExecStats {
    fn eq(&self, other: &Self) -> bool {
        self.queries_issued == other.queries_issued
            && self.scan_passes == other.scan_passes
            && self.rows_scanned == other.rows_scanned
            && self.cells_visited == other.cells_visited
            && self.groups_max == other.groups_max
            && self.partitions_scanned == other.partitions_scanned
            && self.partitions_pruned == other.partitions_pruned
    }
}

impl Eq for ExecStats {}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: ExecStats) {
        self.merge(&rhs);
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queries={} scans={} rows={} cells={} max_groups={} parts_scanned={} parts_pruned={}",
            self.queries_issued,
            self.scan_passes,
            self.rows_scanned,
            self.cells_visited,
            self.groups_max,
            self.partitions_scanned,
            self.partitions_pruned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts_and_maxes_groups() {
        let mut a = ExecStats {
            queries_issued: 1,
            scan_passes: 2,
            rows_scanned: 100,
            cells_visited: 300,
            groups_max: 10,
            partitions_scanned: 3,
            partitions_pruned: 1,
            ..Default::default()
        };
        let b = ExecStats {
            queries_issued: 2,
            scan_passes: 1,
            rows_scanned: 50,
            cells_visited: 100,
            groups_max: 25,
            partitions_scanned: 2,
            partitions_pruned: 6,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.queries_issued, 3);
        assert_eq!(a.scan_passes, 3);
        assert_eq!(a.rows_scanned, 150);
        assert_eq!(a.cells_visited, 400);
        assert_eq!(a.groups_max, 25);
        assert_eq!(a.partitions_scanned, 5);
        assert_eq!(a.partitions_pruned, 7);
    }

    #[test]
    fn add_assign_delegates_to_merge() {
        let mut a = ExecStats::new();
        a += ExecStats {
            queries_issued: 5,
            ..Default::default()
        };
        assert_eq!(a.queries_issued, 5);
    }

    #[test]
    fn equality_ignores_profiling_fields() {
        let mut a = ExecStats {
            queries_issued: 3,
            rows_scanned: 10,
            ..Default::default()
        };
        let mut b = a.clone();
        b.phase_times_us = vec![1, 2, 3];
        b.plan_summary = "workers=1".to_owned();
        assert_eq!(a, b);
        b.rows_scanned = 11;
        assert_ne!(a, b);
        // Merge concatenates timings and keeps the first non-empty summary.
        a.phase_times_us = vec![9];
        a.merge(&ExecStats {
            phase_times_us: vec![1, 2, 3],
            plan_summary: "workers=1".to_owned(),
            ..Default::default()
        });
        assert_eq!(a.phase_times_us, vec![9, 1, 2, 3]);
        assert_eq!(a.plan_summary, "workers=1");
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = ExecStats {
            queries_issued: 1,
            scan_passes: 2,
            rows_scanned: 3,
            cells_visited: 4,
            groups_max: 5,
            partitions_scanned: 6,
            partitions_pruned: 7,
            ..Default::default()
        }
        .to_string();
        for token in [
            "queries=1",
            "scans=2",
            "rows=3",
            "cells=4",
            "max_groups=5",
            "parts_scanned=6",
            "parts_pruned=7",
        ] {
            assert!(s.contains(token), "missing {token} in '{s}'");
        }
    }
}
