//! Compact group keys for hash aggregation.
//!
//! Group-by hashing is the engine's hottest path (the perf guide's advice on
//! fast hashing applies here: we pair these keys with `FxHashMap`). Keys for
//! single-attribute group-bys — the overwhelming majority of SeeDB view
//! queries — are a single inline `u64`; multi-attribute keys (produced by
//! the combine-group-by optimization) spill to a boxed slice.

use std::fmt;

/// A group identifier: one `u64` group code per grouping attribute
/// (see `Cell::group_code`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupKey {
    /// Single-attribute key (inline, no allocation).
    One(u64),
    /// Multi-attribute key.
    Many(Box<[u64]>),
}

impl GroupKey {
    /// Builds a key from per-attribute codes.
    ///
    /// # Panics
    /// Panics on an empty code slice — a GROUP BY always has ≥ 1 attribute.
    pub fn from_codes(codes: &[u64]) -> Self {
        match codes {
            [] => panic!("group key requires at least one attribute"),
            [one] => GroupKey::One(*one),
            many => GroupKey::Many(many.into()),
        }
    }

    /// Number of attributes in the key.
    pub fn arity(&self) -> usize {
        match self {
            GroupKey::One(_) => 1,
            GroupKey::Many(v) => v.len(),
        }
    }

    /// The code of attribute `idx` within the key.
    pub fn code(&self, idx: usize) -> u64 {
        match self {
            GroupKey::One(c) => {
                assert_eq!(idx, 0, "single-attribute key indexed at {idx}");
                *c
            }
            GroupKey::Many(v) => v[idx],
        }
    }

    /// Projects the key onto a subset of its attribute positions (used by
    /// the multi-GROUP-BY rollup).
    pub fn project(&self, positions: &[usize]) -> GroupKey {
        let codes: Vec<u64> = positions.iter().map(|&i| self.code(i)).collect();
        GroupKey::from_codes(&codes)
    }
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupKey::One(c) => write!(f, "{c}"),
            GroupKey::Many(v) => {
                let parts: Vec<String> = v.iter().map(u64::to_string).collect();
                write!(f, "({})", parts.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    #[test]
    fn from_codes_picks_compact_representation() {
        assert_eq!(GroupKey::from_codes(&[5]), GroupKey::One(5));
        assert_eq!(
            GroupKey::from_codes(&[5, 6]),
            GroupKey::Many(vec![5, 6].into_boxed_slice())
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_codes_panic() {
        GroupKey::from_codes(&[]);
    }

    #[test]
    fn arity_and_code_access() {
        let k = GroupKey::from_codes(&[1, 2, 3]);
        assert_eq!(k.arity(), 3);
        assert_eq!(k.code(1), 2);
        let k = GroupKey::from_codes(&[9]);
        assert_eq!(k.arity(), 1);
        assert_eq!(k.code(0), 9);
    }

    #[test]
    fn project_extracts_sub_keys() {
        let k = GroupKey::from_codes(&[10, 20, 30]);
        assert_eq!(k.project(&[1]), GroupKey::One(20));
        assert_eq!(k.project(&[2, 0]), GroupKey::from_codes(&[30, 10]));
    }

    #[test]
    fn ordering_is_lexicographic_within_variant() {
        let a = GroupKey::One(1);
        let b = GroupKey::One(2);
        assert!(a < b);
        let c = GroupKey::from_codes(&[1, 5]);
        let d = GroupKey::from_codes(&[2, 0]);
        assert!(c < d);
    }

    #[test]
    fn equal_keys_hash_equal() {
        fn h(k: &GroupKey) -> u64 {
            let mut s = DefaultHasher::new();
            k.hash(&mut s);
            s.finish()
        }
        let a = GroupKey::from_codes(&[7, 8]);
        let b = GroupKey::from_codes(&[7, 8]);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn display_formats() {
        assert_eq!(GroupKey::One(3).to_string(), "3");
        assert_eq!(GroupKey::from_codes(&[1, 2]).to_string(), "(1,2)");
    }
}
