//! Predicates over table rows.
//!
//! SeeDB's target query `Q` is a selection over the (joined) fact table
//! (§2: "a general class of queries that select a horizontal fragment"),
//! and the reference is the whole table, the complement, or another
//! selection. [`Predicate`] is that selection language; the SQL frontend
//! lowers `WHERE` clauses to it, and the engine evaluates a slot-bound
//! [`BoundPredicate`] per scanned row.

use seedb_storage::{Batch, BatchColumn, BatchData, Bitmap, Cell, ColumnId, Table};

/// Comparison operators for numeric predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to two floats.
    #[inline]
    pub fn apply(&self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A boolean expression over a table's columns.
///
/// NULL handling follows SQL three-valued logic collapsed to two values at
/// the row level: any comparison against NULL is false; `IsNull` tests
/// NULL-ness explicitly.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (selects everything; `D_R = D` uses this).
    True,
    /// Always false (e.g. equality against a label absent from the dictionary).
    False,
    /// Categorical equality by dictionary code.
    CatEq { col: ColumnId, code: u32 },
    /// Categorical membership by dictionary codes.
    CatIn { col: ColumnId, codes: Vec<u32> },
    /// Boolean column equality.
    BoolEq { col: ColumnId, value: bool },
    /// Numeric comparison (Int64/Float64 columns; ints widen to f64).
    NumCmp {
        col: ColumnId,
        op: CmpOp,
        value: f64,
    },
    /// NULL test.
    IsNull { col: ColumnId },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience: `col = 'label'` against a categorical column, resolving
    /// the label through the table's dictionary. Labels not present in the
    /// dictionary yield [`Predicate::False`] (they can match no row).
    pub fn col_eq_str(table: &dyn Table, column: &str, label: &str) -> Predicate {
        let Some(col) = table.schema().column_id(column) else {
            return Predicate::False;
        };
        match table.dictionary(col).and_then(|d| d.code(label)) {
            Some(code) => Predicate::CatEq { col, code },
            None => Predicate::False,
        }
    }

    /// Collects every column the predicate references into `out`
    /// (deduplicated, in first-reference order).
    pub fn collect_columns(&self, out: &mut Vec<ColumnId>) {
        let push = |c: ColumnId, out: &mut Vec<ColumnId>| {
            if !out.contains(&c) {
                out.push(c);
            }
        };
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::CatEq { col, .. }
            | Predicate::CatIn { col, .. }
            | Predicate::BoolEq { col, .. }
            | Predicate::NumCmp { col, .. }
            | Predicate::IsNull { col } => push(*col, out),
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// Binds column references to slots of a scan projection.
    ///
    /// `slot_of` maps a column id to its index within the cell slice the
    /// scan will present. Binding once per query keeps the per-row
    /// evaluation free of hash lookups.
    pub fn bind(&self, slot_of: &dyn Fn(ColumnId) -> usize) -> BoundPredicate {
        match self {
            Predicate::True => BoundPredicate::True,
            Predicate::False => BoundPredicate::False,
            Predicate::CatEq { col, code } => BoundPredicate::CatEq {
                slot: slot_of(*col),
                code: *code,
            },
            Predicate::CatIn { col, codes } => BoundPredicate::CatIn {
                slot: slot_of(*col),
                codes: codes.clone(),
            },
            Predicate::BoolEq { col, value } => BoundPredicate::BoolEq {
                slot: slot_of(*col),
                value: *value,
            },
            Predicate::NumCmp { col, op, value } => BoundPredicate::NumCmp {
                slot: slot_of(*col),
                op: *op,
                value: *value,
            },
            Predicate::IsNull { col } => BoundPredicate::IsNull {
                slot: slot_of(*col),
            },
            Predicate::And(ps) => BoundPredicate::And(ps.iter().map(|p| p.bind(slot_of)).collect()),
            Predicate::Or(ps) => BoundPredicate::Or(ps.iter().map(|p| p.bind(slot_of)).collect()),
            Predicate::Not(p) => BoundPredicate::Not(Box::new(p.bind(slot_of))),
        }
    }

    /// Structural negation helper.
    pub fn negate(self) -> Predicate {
        match self {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            Predicate::Not(inner) => *inner,
            other => Predicate::Not(Box::new(other)),
        }
    }
}

/// A [`Predicate`] with column references resolved to projection slots;
/// evaluated against the cell slice a scan yields per row.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundPredicate {
    /// See [`Predicate::True`].
    True,
    /// See [`Predicate::False`].
    False,
    /// See [`Predicate::CatEq`].
    CatEq { slot: usize, code: u32 },
    /// See [`Predicate::CatIn`].
    CatIn { slot: usize, codes: Vec<u32> },
    /// See [`Predicate::BoolEq`].
    BoolEq { slot: usize, value: bool },
    /// See [`Predicate::NumCmp`].
    NumCmp { slot: usize, op: CmpOp, value: f64 },
    /// See [`Predicate::IsNull`].
    IsNull { slot: usize },
    /// Conjunction.
    And(Vec<BoundPredicate>),
    /// Disjunction.
    Or(Vec<BoundPredicate>),
    /// Negation.
    Not(Box<BoundPredicate>),
}

impl BoundPredicate {
    /// Evaluates the predicate against one row's projected cells.
    #[inline]
    pub fn eval(&self, cells: &[Cell]) -> bool {
        match self {
            BoundPredicate::True => true,
            BoundPredicate::False => false,
            BoundPredicate::CatEq { slot, code } => {
                matches!(cells[*slot], Cell::Cat(c) if c == *code)
            }
            BoundPredicate::CatIn { slot, codes } => {
                matches!(cells[*slot], Cell::Cat(c) if codes.contains(&c))
            }
            BoundPredicate::BoolEq { slot, value } => {
                matches!(cells[*slot], Cell::Bool(b) if b == *value)
            }
            BoundPredicate::NumCmp { slot, op, value } => match cells[*slot].as_f64() {
                Some(x) => op.apply(x, *value),
                None => false,
            },
            BoundPredicate::IsNull { slot } => cells[*slot].is_null(),
            BoundPredicate::And(ps) => ps.iter().all(|p| p.eval(cells)),
            BoundPredicate::Or(ps) => ps.iter().any(|p| p.eval(cells)),
            BoundPredicate::Not(p) => !p.eval(cells),
        }
    }

    /// Vectorized evaluation: overwrites `out` with one selection bit per
    /// batch row. Semantically identical to calling [`BoundPredicate::eval`]
    /// on every row (SQL NULL comparisons are false, `IsNull` tests
    /// validity), but operates on the batch's typed slices directly.
    pub fn eval_batch(&self, batch: &Batch<'_>, out: &mut Bitmap) {
        let n = batch.len();
        match self {
            BoundPredicate::True => out.reset(n, true),
            BoundPredicate::False => out.reset(n, false),
            BoundPredicate::CatEq { slot, code } => {
                leaf_bits(
                    batch.column(*slot),
                    n,
                    out,
                    |data, i| matches!(data, BatchData::Cat(v) if v[i] == *code),
                );
            }
            BoundPredicate::CatIn { slot, codes } => {
                leaf_bits(
                    batch.column(*slot),
                    n,
                    out,
                    |data, i| matches!(data, BatchData::Cat(v) if codes.contains(&v[i])),
                );
            }
            BoundPredicate::BoolEq { slot, value } => {
                leaf_bits(
                    batch.column(*slot),
                    n,
                    out,
                    |data, i| matches!(data, BatchData::Bool(v) if v[i] == *value),
                );
            }
            BoundPredicate::NumCmp { slot, op, value } => {
                let col = batch.column(*slot);
                match (col.data, col.validity) {
                    // Dense numeric fast paths: no per-row validity branch.
                    (BatchData::Float(v), None) => {
                        word_bits(n, out, |i| op.apply(v[i], *value));
                    }
                    (BatchData::Int(v), None) => {
                        word_bits(n, out, |i| op.apply(v[i] as f64, *value));
                    }
                    _ => {
                        word_bits(n, out, |i| {
                            col.value_f64(i).is_some_and(|x| op.apply(x, *value))
                        });
                    }
                }
            }
            BoundPredicate::IsNull { slot } => {
                let col = batch.column(*slot);
                match col.validity {
                    None => out.reset(n, false),
                    Some(valid) => word_bits(n, out, |i| !valid[i]),
                }
            }
            BoundPredicate::And(ps) => {
                out.reset(n, true);
                let mut tmp = Bitmap::new();
                for p in ps {
                    p.eval_batch(batch, &mut tmp);
                    out.and_assign(&tmp);
                }
            }
            BoundPredicate::Or(ps) => {
                out.reset(n, false);
                let mut tmp = Bitmap::new();
                for p in ps {
                    p.eval_batch(batch, &mut tmp);
                    out.or_assign(&tmp);
                }
            }
            BoundPredicate::Not(p) => {
                p.eval_batch(batch, out);
                out.invert();
            }
        }
    }
}

/// Fills `out` (re-initialized to `n` bits) by evaluating `test` per row,
/// building one `u64` word at a time — much cheaper than a `set` call per
/// matching row. The final partial word only receives bits below `n`, so
/// the bitmap's trailing-zero invariant is preserved.
#[inline]
fn word_bits(n: usize, out: &mut Bitmap, test: impl Fn(usize) -> bool) {
    out.reset(n, false);
    let words = out.words_mut();
    let mut i = 0usize;
    for w in words.iter_mut() {
        let hi = (i + 64).min(n);
        let mut bits = 0u64;
        for j in i..hi {
            bits |= (test(j) as u64) << (j - i);
        }
        *w = bits;
        i = hi;
    }
}

/// Evaluates a validity-aware leaf over a batch column: `test` sees only
/// valid rows; NULL rows yield `false`, matching scalar SQL semantics.
#[inline]
fn leaf_bits(
    col: &BatchColumn<'_>,
    n: usize,
    out: &mut Bitmap,
    test: impl Fn(BatchData<'_>, usize) -> bool,
) {
    match col.validity {
        None => word_bits(n, out, |i| test(col.data, i)),
        Some(valid) => word_bits(n, out, |i| valid[i] && test(col.data, i)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedb_storage::{ColumnDef, ColumnRole, ColumnType, StoreKind, TableBuilder, Value};

    fn identity_bind(p: &Predicate) -> BoundPredicate {
        p.bind(&|c: ColumnId| c.index())
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Eq.apply(1.0, 1.0));
        assert!(CmpOp::Ne.apply(1.0, 2.0));
        assert!(CmpOp::Lt.apply(1.0, 2.0));
        assert!(CmpOp::Le.apply(2.0, 2.0));
        assert!(CmpOp::Gt.apply(3.0, 2.0));
        assert!(CmpOp::Ge.apply(2.0, 2.0));
        assert_eq!(CmpOp::Ge.sql(), ">=");
    }

    #[test]
    fn eval_leaf_predicates() {
        let cells = [Cell::Cat(2), Cell::Int(10), Cell::Null, Cell::Bool(true)];
        assert!(identity_bind(&Predicate::CatEq {
            col: ColumnId(0),
            code: 2
        })
        .eval(&cells));
        assert!(!identity_bind(&Predicate::CatEq {
            col: ColumnId(0),
            code: 3
        })
        .eval(&cells));
        assert!(identity_bind(&Predicate::CatIn {
            col: ColumnId(0),
            codes: vec![1, 2]
        })
        .eval(&cells));
        assert!(identity_bind(&Predicate::NumCmp {
            col: ColumnId(1),
            op: CmpOp::Gt,
            value: 5.0
        })
        .eval(&cells));
        assert!(identity_bind(&Predicate::IsNull { col: ColumnId(2) }).eval(&cells));
        assert!(identity_bind(&Predicate::BoolEq {
            col: ColumnId(3),
            value: true
        })
        .eval(&cells));
    }

    #[test]
    fn null_comparisons_are_false() {
        let cells = [Cell::Null];
        let p = Predicate::NumCmp {
            col: ColumnId(0),
            op: CmpOp::Eq,
            value: 0.0,
        };
        assert!(!identity_bind(&p).eval(&cells));
        let p = Predicate::CatEq {
            col: ColumnId(0),
            code: 0,
        };
        assert!(!identity_bind(&p).eval(&cells));
    }

    #[test]
    fn boolean_connectives() {
        let cells = [Cell::Int(5)];
        let gt3 = Predicate::NumCmp {
            col: ColumnId(0),
            op: CmpOp::Gt,
            value: 3.0,
        };
        let lt4 = Predicate::NumCmp {
            col: ColumnId(0),
            op: CmpOp::Lt,
            value: 4.0,
        };
        assert!(!identity_bind(&Predicate::And(vec![gt3.clone(), lt4.clone()])).eval(&cells));
        assert!(identity_bind(&Predicate::Or(vec![gt3.clone(), lt4.clone()])).eval(&cells));
        assert!(identity_bind(&Predicate::Not(Box::new(lt4))).eval(&cells));
        assert!(identity_bind(&Predicate::True).eval(&cells));
        assert!(!identity_bind(&Predicate::False).eval(&cells));
    }

    #[test]
    fn negate_simplifies() {
        assert_eq!(Predicate::True.negate(), Predicate::False);
        assert_eq!(Predicate::False.negate(), Predicate::True);
        let p = Predicate::IsNull { col: ColumnId(0) };
        assert_eq!(p.clone().negate().negate(), p);
    }

    #[test]
    fn collect_columns_dedups_in_order() {
        let p = Predicate::And(vec![
            Predicate::CatEq {
                col: ColumnId(2),
                code: 0,
            },
            Predicate::Or(vec![
                Predicate::NumCmp {
                    col: ColumnId(1),
                    op: CmpOp::Lt,
                    value: 0.0,
                },
                Predicate::CatEq {
                    col: ColumnId(2),
                    code: 1,
                },
            ]),
        ]);
        let mut cols = Vec::new();
        p.collect_columns(&mut cols);
        assert_eq!(cols, vec![ColumnId(2), ColumnId(1)]);
    }

    #[test]
    fn col_eq_str_resolves_through_dictionary() {
        let mut b = TableBuilder::new(vec![ColumnDef::new(
            "marital",
            ColumnType::Categorical,
            ColumnRole::Dimension,
        )]);
        b.push_row(&[Value::str("married")]).unwrap();
        b.push_row(&[Value::str("unmarried")]).unwrap();
        let t = b.build(StoreKind::Column).unwrap();
        let p = Predicate::col_eq_str(t.as_ref(), "marital", "unmarried");
        assert_eq!(
            p,
            Predicate::CatEq {
                col: ColumnId(0),
                code: 1
            }
        );
        // Unknown label and unknown column both collapse to False.
        assert_eq!(
            Predicate::col_eq_str(t.as_ref(), "marital", "widowed"),
            Predicate::False
        );
        assert_eq!(
            Predicate::col_eq_str(t.as_ref(), "ghost", "x"),
            Predicate::False
        );
    }

    #[test]
    fn bind_remaps_slots() {
        let p = Predicate::CatEq {
            col: ColumnId(7),
            code: 3,
        };
        let bound = p.bind(&|c| if c == ColumnId(7) { 0 } else { panic!() });
        assert!(bound.eval(&[Cell::Cat(3)]));
    }
}
