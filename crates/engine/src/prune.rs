//! Zone-map partition pruning: skip whole segments before the morsel scan.
//!
//! A partition may be skipped for a query exactly when **no row in it can
//! contribute to the result**. The hash aggregation paths (scalar and
//! vectorized alike) create group entries only for rows that pass the
//! query's filter *and* land on at least one side of the split, so the
//! *contribution predicate* of a [`CombinedQuery`] is
//!
//! ```text
//! filter AND (target-side OR reference-side)
//! ```
//!
//! with the reference side of `TargetVsAll` / `TargetVsComplement` being
//! every row (`True`). [`zone_match`] evaluates an unbound [`Predicate`]
//! against a partition's [`ColumnZone`]s tri-state
//! ([`ZoneMatch::Never`] / `Maybe` / `Always`); a partition whose
//! contribution predicate is provably `Never` produces zero group entries
//! and zero accumulator updates, so skipping it leaves the aggregation
//! state — and therefore the final result — **bit-identical**.
//!
//! `Maybe` is always sound (the partition is scanned normally), so every
//! rule below only has to be conservative, never complete.

use crate::expr::{CmpOp, Predicate};
use crate::spec::{CombinedQuery, SplitSpec};
use seedb_storage::{morsel_ranges, ColumnId, ColumnType, ColumnZone, Table, ZoneMatch};
use std::ops::Range;

/// The predicate a row must satisfy to contribute to `query`'s result
/// (create or update a group on either side of the split).
pub fn contribution_predicate(query: &CombinedQuery) -> Predicate {
    let split = match &query.split {
        // Reference = all rows: every filtered row contributes.
        SplitSpec::TargetVsAll(_) => Predicate::True,
        // Target ∪ complement = all rows.
        SplitSpec::TargetVsComplement(_) => Predicate::True,
        SplitSpec::TargetVsQuery { target, reference } => {
            Predicate::Or(vec![target.clone(), reference.clone()])
        }
        SplitSpec::TargetOnly(p) => p.clone(),
    };
    match &query.filter {
        Some(f) => Predicate::And(vec![f.clone(), split]),
        None => split,
    }
}

/// Tri-state evaluation of an unbound predicate against one partition's
/// zone maps (`zones[col.index()]`, schema order). Columns without a zone
/// entry yield `Maybe`.
pub fn zone_match(pred: &Predicate, zones: &[ColumnZone]) -> ZoneMatch {
    let zone = |col: &ColumnId| zones.get(col.index());
    match pred {
        Predicate::True => ZoneMatch::Always,
        Predicate::False => ZoneMatch::Never,
        Predicate::CatEq { col, code } => match zone(col) {
            // A categorical equality can only match categorical cells.
            Some(z) if z.ty == ColumnType::Categorical => z.match_eq(*code as f64),
            Some(_) => ZoneMatch::Never,
            None => ZoneMatch::Maybe,
        },
        Predicate::CatIn { col, codes } => match zone(col) {
            Some(z) if z.ty == ColumnType::Categorical => codes
                .iter()
                .map(|c| z.match_eq(*c as f64))
                .fold(ZoneMatch::Never, ZoneMatch::or),
            Some(_) => ZoneMatch::Never,
            None => ZoneMatch::Maybe,
        },
        Predicate::BoolEq { col, value } => match zone(col) {
            Some(z) if z.ty == ColumnType::Bool => z.match_eq(if *value { 1.0 } else { 0.0 }),
            Some(_) => ZoneMatch::Never,
            None => ZoneMatch::Maybe,
        },
        Predicate::NumCmp { col, op, value } => match zone(col) {
            // `Cell::as_f64` yields None for categorical codes, so a
            // numeric comparison can never match a categorical column.
            Some(z) if z.ty == ColumnType::Categorical => ZoneMatch::Never,
            Some(z) => match op {
                CmpOp::Eq => z.match_eq(*value),
                CmpOp::Ne => z.match_ne(*value),
                CmpOp::Lt => z.match_lt(*value),
                CmpOp::Le => z.match_le(*value),
                CmpOp::Gt => z.match_gt(*value),
                CmpOp::Ge => z.match_ge(*value),
            },
            None => ZoneMatch::Maybe,
        },
        Predicate::IsNull { col } => match zone(col) {
            Some(z) => z.match_is_null(),
            None => ZoneMatch::Maybe,
        },
        Predicate::And(ps) => ps
            .iter()
            .map(|p| zone_match(p, zones))
            .fold(ZoneMatch::Always, ZoneMatch::and),
        Predicate::Or(ps) => ps
            .iter()
            .map(|p| zone_match(p, zones))
            .fold(ZoneMatch::Never, ZoneMatch::or),
        Predicate::Not(p) => zone_match(p, zones).negate(),
    }
}

/// A query's pruned scan plan over one row range: the morsels to scan and
/// the partition accounting for [`crate::ExecStats`].
#[derive(Debug)]
pub struct PrunedScan {
    /// Morsel ranges to scan, ascending, partition-aligned.
    pub morsels: Vec<Range<usize>>,
    /// Partitions (or pseudo-segments) that survived pruning.
    pub partitions_scanned: u64,
    /// Partitions skipped because no row in them can contribute.
    pub partitions_pruned: u64,
}

/// Plans `query`'s scan of rows `range`: walks the table's partition
/// directory, drops every partition whose zone maps prove the query's
/// contribution predicate can match no row, and splits the survivors into
/// morsels of at most `morsel_rows` rows. Tables without partition
/// metadata fall back to a single unpruned segment, making this exactly
/// the pre-partitioning plan.
pub fn pruned_scan(
    table: &dyn Table,
    query: &CombinedQuery,
    range: Range<usize>,
    morsel_rows: usize,
) -> PrunedScan {
    let contribution = contribution_predicate(query);
    let partitions = table.partitions();
    let mut plan = PrunedScan {
        morsels: Vec::new(),
        partitions_scanned: 0,
        partitions_pruned: 0,
    };
    for (idx, rows) in table.partition_ranges(range) {
        let prunable = partitions
            .get(idx)
            .is_some_and(|p| zone_match(&contribution, &p.zones) == ZoneMatch::Never);
        if prunable {
            plan.partitions_pruned += 1;
        } else {
            plan.partitions_scanned += 1;
            plan.morsels.extend(morsel_ranges(rows, morsel_rows));
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::spec::AggSpec;
    use seedb_storage::{BoxedTable, ColumnDef, StoreKind, TableBuilder, Value};

    /// 40 rows, partition size 10; `m` is `0..40` sorted so zone intervals
    /// are [0,9], [10,19], [20,29], [30,39]; `d` cycles over two labels.
    fn sorted_table(kind: StoreKind) -> BoxedTable {
        let mut b = TableBuilder::new(vec![ColumnDef::dim("d"), ColumnDef::measure("m")])
            .with_partition_rows(10);
        for i in 0..40 {
            b.push_row(&[
                Value::str(if i < 10 { "lo" } else { "hi" }),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        b.build(kind).unwrap()
    }

    fn query(split: SplitSpec, filter: Option<Predicate>) -> CombinedQuery {
        CombinedQuery {
            group_by: vec![ColumnId(0)],
            aggregates: vec![AggSpec::new(AggFunc::Avg, ColumnId(1))],
            filter,
            split,
        }
    }

    fn lt(value: f64) -> Predicate {
        Predicate::NumCmp {
            col: ColumnId(1),
            op: CmpOp::Lt,
            value,
        }
    }

    #[test]
    fn contribution_covers_both_sides() {
        let p = lt(5.0);
        let q = query(SplitSpec::TargetVsAll(p.clone()), None);
        assert_eq!(contribution_predicate(&q), Predicate::True);
        let q = query(SplitSpec::TargetVsComplement(p.clone()), None);
        assert_eq!(contribution_predicate(&q), Predicate::True);
        let q = query(SplitSpec::TargetOnly(p.clone()), None);
        assert_eq!(contribution_predicate(&q), p);
        let q = query(
            SplitSpec::TargetVsQuery {
                target: p.clone(),
                reference: lt(9.0),
            },
            None,
        );
        assert_eq!(
            contribution_predicate(&q),
            Predicate::Or(vec![p.clone(), lt(9.0)])
        );
        let q = query(SplitSpec::TargetVsAll(p.clone()), Some(p.clone()));
        assert_eq!(
            contribution_predicate(&q),
            Predicate::And(vec![p, Predicate::True])
        );
    }

    #[test]
    fn selective_target_only_prunes_segments() {
        for kind in [StoreKind::Row, StoreKind::Column] {
            let t = sorted_table(kind);
            let q = query(SplitSpec::TargetOnly(lt(10.0)), None);
            let plan = pruned_scan(t.as_ref(), &q, 0..t.num_rows(), usize::MAX);
            assert_eq!(plan.partitions_scanned, 1);
            assert_eq!(plan.partitions_pruned, 3);
            assert_eq!(plan.morsels, vec![0..10]);
        }
    }

    #[test]
    fn unprunable_splits_scan_everything() {
        let t = sorted_table(StoreKind::Column);
        let q = query(SplitSpec::TargetVsAll(lt(10.0)), None);
        let plan = pruned_scan(t.as_ref(), &q, 0..t.num_rows(), usize::MAX);
        assert_eq!(plan.partitions_scanned, 4);
        assert_eq!(plan.partitions_pruned, 0);
    }

    #[test]
    fn filter_composes_with_split() {
        let t = sorted_table(StoreKind::Column);
        // TargetVsAll is unprunable on its own, but the filter restricts
        // contributing rows to the first two partitions.
        let q = query(SplitSpec::TargetVsAll(Predicate::True), Some(lt(20.0)));
        let plan = pruned_scan(t.as_ref(), &q, 0..t.num_rows(), usize::MAX);
        assert_eq!(plan.partitions_scanned, 2);
        assert_eq!(plan.partitions_pruned, 2);
    }

    #[test]
    fn range_clips_partitions_before_pruning() {
        let t = sorted_table(StoreKind::Column);
        let q = query(SplitSpec::TargetOnly(lt(100.0)), None);
        let plan = pruned_scan(t.as_ref(), &q, 5..25, 7);
        // Partitions clipped to 5..10, 10..20, 20..25; morsels split at 7.
        assert_eq!(plan.partitions_scanned, 3);
        let total: usize = plan.morsels.iter().map(|r| r.end - r.start).sum();
        assert_eq!(total, 20);
        assert!(plan.morsels.iter().all(|r| r.end - r.start <= 7));
    }

    #[test]
    fn false_predicate_prunes_all_partitions() {
        let t = sorted_table(StoreKind::Row);
        let q = query(SplitSpec::TargetOnly(Predicate::False), None);
        let plan = pruned_scan(t.as_ref(), &q, 0..t.num_rows(), usize::MAX);
        assert_eq!(plan.partitions_scanned, 0);
        assert_eq!(plan.partitions_pruned, 4);
        assert!(plan.morsels.is_empty());
    }

    #[test]
    fn cat_predicates_prune_by_code_interval() {
        let t = sorted_table(StoreKind::Column);
        // "lo" is interned first (code 0) and only appears in partition 0.
        let p = Predicate::col_eq_str(t.as_ref(), "d", "lo");
        let q = query(SplitSpec::TargetOnly(p), None);
        let plan = pruned_scan(t.as_ref(), &q, 0..t.num_rows(), usize::MAX);
        assert_eq!(plan.partitions_scanned, 1);
        assert_eq!(plan.partitions_pruned, 3);
    }

    #[test]
    fn type_mismatched_leaves_are_never() {
        let t = sorted_table(StoreKind::Column);
        let zones = &t.partitions()[0].zones;
        // Numeric comparison on the categorical column matches no cell.
        let p = Predicate::NumCmp {
            col: ColumnId(0),
            op: CmpOp::Ge,
            value: 0.0,
        };
        assert_eq!(zone_match(&p, zones), ZoneMatch::Never);
        // Bool equality on a float column matches no cell.
        let p = Predicate::BoolEq {
            col: ColumnId(1),
            value: true,
        };
        assert_eq!(zone_match(&p, zones), ZoneMatch::Never);
        // Categorical equality on a float column matches no cell.
        let p = Predicate::CatEq {
            col: ColumnId(1),
            code: 0,
        };
        assert_eq!(zone_match(&p, zones), ZoneMatch::Never);
    }

    #[test]
    fn connectives_follow_tri_state_algebra() {
        let t = sorted_table(StoreKind::Column);
        let zones = &t.partitions()[0].zones; // m in [0, 9]
        let never = lt(0.0);
        let always = lt(100.0);
        let maybe = lt(5.0);
        assert_eq!(zone_match(&never, zones), ZoneMatch::Never);
        assert_eq!(zone_match(&always, zones), ZoneMatch::Always);
        assert_eq!(zone_match(&maybe, zones), ZoneMatch::Maybe);
        assert_eq!(
            zone_match(&Predicate::And(vec![always.clone(), never.clone()]), zones),
            ZoneMatch::Never
        );
        assert_eq!(
            zone_match(&Predicate::Or(vec![maybe.clone(), always.clone()]), zones),
            ZoneMatch::Always
        );
        assert_eq!(
            zone_match(&Predicate::Not(Box::new(always.clone())), zones),
            ZoneMatch::Never
        );
        assert_eq!(
            zone_match(&Predicate::Not(Box::new(maybe)), zones),
            ZoneMatch::Maybe
        );
        // Empty connectives mirror row-level semantics: AND [] = true.
        assert_eq!(
            zone_match(&Predicate::And(vec![]), zones),
            ZoneMatch::Always
        );
        assert_eq!(zone_match(&Predicate::Or(vec![]), zones), ZoneMatch::Never);
    }

    #[test]
    fn is_null_pruning() {
        let mut b = TableBuilder::new(vec![ColumnDef::dim("d"), ColumnDef::measure("m")])
            .with_partition_rows(2);
        b.push_row(&[Value::str("a"), Value::Float(1.0)]).unwrap();
        b.push_row(&[Value::str("a"), Value::Float(2.0)]).unwrap();
        b.push_row(&[Value::str("a"), Value::Null]).unwrap();
        b.push_row(&[Value::str("a"), Value::Null]).unwrap();
        let t = b.build(StoreKind::Column).unwrap();
        let is_null = Predicate::IsNull { col: ColumnId(1) };
        let q = query(SplitSpec::TargetOnly(is_null.clone()), None);
        let plan = pruned_scan(t.as_ref(), &q, 0..4, usize::MAX);
        assert_eq!(plan.morsels, vec![2..4]);
        // NOT IS NULL prunes the all-NULL partition instead.
        let q = query(
            SplitSpec::TargetOnly(Predicate::Not(Box::new(is_null))),
            None,
        );
        let plan = pruned_scan(t.as_ref(), &q, 0..4, usize::MAX);
        assert_eq!(plan.morsels, vec![0..2]);
    }
}
